//! # caem-suite
//!
//! Umbrella crate for the CAEM reproduction: re-exports every workspace crate
//! under one import path so the examples and the workspace-level integration
//! tests can write `caem_suite::wsnsim::…` instead of depending on each crate
//! individually.
//!
//! See `README.md` for the project overview, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the paper-versus-measured record.

pub use caem;
pub use caem_channel as channel;
pub use caem_cluster as cluster;
pub use caem_energy as energy;
pub use caem_mac as mac;
pub use caem_metrics as metrics;
pub use caem_phy as phy;
pub use caem_simcore as simcore;
pub use caem_traffic as traffic;
pub use caem_wsnsim as wsnsim;

/// The version of the reproduction suite.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
