//! Offline stand-in for `proptest`: deterministic random-sampling property
//! tests with the same authoring surface the workspace uses (`proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `any`, `prop::collection::vec`, range
//! strategies).
//!
//! Unlike the real crate there is no shrinking: a failing case panics with
//! the normal assertion message.  Sampling is seeded from the test name, so
//! every run explores the same cases (reproducible CI).

/// Number of random cases each `proptest!` test executes.
pub const CASES: usize = 96;

/// Small deterministic PRNG (SplitMix64) used to drive strategy sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % n
    }
}

/// A value generator (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of the generated values.
    type Value;
    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width u64 range
                }
                (lo as i128 + rng.below(width as u64) as i128) as $t
            }
        }
    )*};
}
impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Full-range generator for a type (stand-in for `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Mirror of `proptest::prop` — collection strategies.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// A size specification for generated collections, mirroring
        /// `proptest::collection::SizeRange` (which is what makes bare `1..200`
        /// literals infer as `usize` ranges).
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty collection size range");
                SizeRange {
                    lo: r.start,
                    hi_exclusive: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_exclusive: r.end() + 1,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_exclusive: n + 1,
                }
            }
        }

        /// Strategy for vectors: element strategy + length range.
        pub struct VecStrategy<S> {
            element: S,
            length: SizeRange,
        }

        /// Generate `Vec`s whose length is drawn from `lengths` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, lengths: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                length: lengths.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let width = (self.length.hi_exclusive - self.length.lo) as u64;
                let len = self.length.lo + rng.below(width) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a `use proptest::prelude::*;` is expected to provide.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declare property tests: each `fn` runs [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..$crate::CASES {
                    let _ = case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in -5i32..=5, f in -1.5f64..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn vectors_respect_length(xs in prop::collection::vec(0usize..4, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            prop_assert!(xs.iter().all(|&x| x < 4));
        }

        #[test]
        fn any_is_usable(seed in any::<u64>()) {
            let _ = seed;
            prop_assert_eq!(1 + 1, 2);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
