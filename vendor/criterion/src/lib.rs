//! Offline stand-in for `criterion`: enough API surface to compile and run
//! the workspace's benches (`bench_function`, `benchmark_group`,
//! `bench_with_input`, `criterion_group!`, `criterion_main!`, `black_box`).
//!
//! Instead of criterion's statistical machinery it runs a short warm-up, then
//! a fixed measurement batch, and prints the mean wall-clock per iteration.
//! When invoked with `--test` (as `cargo test --benches` does) each benchmark
//! body runs exactly once, so benches double as smoke tests.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.test_mode, self.sample_size, &mut body);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks (stand-in for `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the measurement sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Run a parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_one(&label, self.parent.test_mode, samples, &mut |b| {
            body(b, input)
        });
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for one parameterised benchmark case.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Build an id from the parameter's `Display` form.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Build an id from a function name and parameter.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Timing harness handed to each benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Mean wall-clock per iteration measured by the last `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Measure `routine` over the configured number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.last_mean = Some(start.elapsed() / self.sample_size as u32);
    }
}

fn run_one(label: &str, test_mode: bool, sample_size: usize, body: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        test_mode,
        sample_size,
        last_mean: None,
    };
    body(&mut bencher);
    match bencher.last_mean {
        Some(mean) => println!("bench {label:<50} {mean:>12.2?}/iter ({sample_size} samples)"),
        None if test_mode => println!("bench {label:<50} ok (test mode)"),
        None => println!("bench {label:<50} (no iter call)"),
    }
}

/// Declare a group of benchmark functions (stand-in for criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
