//! Offline stand-in for `rayon`, covering the surface this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Work is fanned out over `std::thread::scope` with one chunk per available
//! core.  Results are written back by index, so `collect` preserves input
//! order exactly like rayon's indexed parallel iterators — a property the
//! determinism tests rely on.
//!
//! Set `RAYON_NUM_THREADS=1` to force serial execution (used by the
//! serial-versus-parallel determinism test).

use std::num::NonZeroUsize;

/// The imports users expect from `rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// How many worker threads a parallel call may use.
fn thread_budget() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f` on every item of `items` in parallel, preserving input order in
/// the returned vector.
fn parallel_map<'a, T: Sync, R: Send>(items: &'a [T], f: &(impl Fn(&'a T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = thread_budget().min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        // Pair each output chunk with its input chunk; each worker owns its
        // output slice exclusively, so no locking is needed.
        let mut rest: &mut [Option<R>] = &mut slots;
        let mut start = 0;
        while start < n {
            let len = chunk.min(n - start);
            let (head, tail) = rest.split_at_mut(len);
            rest = tail;
            let inputs = &items[start..start + len];
            scope.spawn(move || {
                for (slot, item) in head.iter_mut().zip(inputs) {
                    *slot = Some(f(item));
                }
            });
            start += len;
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

/// Parallel iterator over `&[T]`, produced by [`IntoParallelRefIterator::par_iter`].
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// A mapped parallel iterator; terminal operation is [`Map::collect`].
pub struct Map<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> Map<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        Map {
            items: self.items,
            f,
        }
    }
}

impl<'a, T: Sync, F> Map<'a, T, F> {
    /// Execute the map in parallel and collect results in input order.
    pub fn collect<C>(self) -> C
    where
        F: Fn(&'a T) -> C::Item + Sync,
        C: FromParallel,
        C::Item: Send,
    {
        C::from_vec(parallel_map(self.items, &self.f))
    }
}

/// Conversion trait mirroring rayon's `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the parallel iterator.
    type Item: Sync + 'a;
    /// Create a parallel iterator borrowing the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Collections `collect` can produce (only `Vec<R>` is needed here).
pub trait FromParallel {
    /// Element type.
    type Item;
    /// Build the collection from an ordered vector.
    fn from_vec(v: Vec<Self::Item>) -> Self;
}

impl<R> FromParallel for Vec<R> {
    type Item = R;
    fn from_vec(v: Vec<R>) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_arrays_and_empty_inputs() {
        let arr = [1u32, 2, 3];
        let out: Vec<u32> = arr.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn nested_parallel_calls_complete() {
        let outer: Vec<usize> = (0..4).collect();
        let sums: Vec<usize> = outer
            .par_iter()
            .map(|&i| {
                let inner: Vec<usize> = (0..8).collect();
                let mapped: Vec<usize> = inner.par_iter().map(|&j| i * 10 + j).collect();
                mapped.into_iter().sum()
            })
            .collect();
        assert_eq!(sums.len(), 4);
        assert_eq!(sums[1], (0..8).map(|j| 10 + j).sum());
    }
}
