//! Offline stand-in for `rayon`, covering the surface this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()`.
//!
//! Work is fanned out over `std::thread::scope`; results are written back by
//! index, so `collect` preserves input order exactly like rayon's indexed
//! parallel iterators — a property the determinism tests rely on.
//!
//! ## Process-wide thread budget
//!
//! Unlike the original stand-in, which sized every `par_iter` call
//! independently (so nested calls multiplied: an outer fan-out of `L` items
//! on a `C`-core machine could put `L × C` live workers on the box), all
//! calls now draw spawned workers from one shared [`ThreadBudget`] capped at
//! the machine's available parallelism.  A call reserves as many workers as
//! are left in the budget, and a nested call that finds the budget exhausted
//! simply runs inline on its caller (which is itself an already-counted
//! worker).  Total live spawned workers therefore never exceed the cap, *by
//! construction*, no matter how call sites nest.
//!
//! Environment knobs:
//!
//! * `RAYON_NUM_THREADS=1` forces serial execution of each call (used by the
//!   serial-versus-parallel determinism test).  Values > 1 cap the workers a
//!   single call may request; the process-wide cap still applies on top.
//! * `RAYON_TOTAL_THREADS=n` overrides the process-wide cap (read once, at
//!   the first parallel call).
//!
//! [`peak_live_workers`] exposes the high-watermark of concurrently live
//! spawned workers so tests can assert the cap was honoured.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The imports users expect from `rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// A shared budget of live spawned worker threads.
///
/// `reserve` hands out up to the remaining capacity (possibly zero) and
/// `release` returns it; the peak of concurrently reserved workers is
/// recorded so the no-oversubscription property is observable.
#[derive(Debug)]
struct ThreadBudget {
    cap: usize,
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl ThreadBudget {
    const fn new(cap: usize) -> Self {
        ThreadBudget {
            cap,
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Reserve up to `want` workers, returning how many were granted
    /// (possibly 0 when the budget is exhausted).
    fn reserve(&self, want: usize) -> usize {
        if want == 0 {
            return 0;
        }
        let mut live = self.live.load(Ordering::Relaxed);
        loop {
            let grant = want.min(self.cap.saturating_sub(live));
            if grant == 0 {
                return 0;
            }
            match self.live.compare_exchange_weak(
                live,
                live + grant,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak.fetch_max(live + grant, Ordering::AcqRel);
                    return grant;
                }
                Err(actual) => live = actual,
            }
        }
    }

    /// Return `n` previously reserved workers to the budget.
    fn release(&self, n: usize) {
        if n > 0 {
            self.live.fetch_sub(n, Ordering::AcqRel);
        }
    }

    fn live(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    fn peak(&self) -> usize {
        self.peak.load(Ordering::Acquire)
    }
}

/// RAII handle for reserved workers: releasing on drop keeps the budget
/// intact even when a worker closure panics (`std::thread::scope` re-raises
/// the panic through the caller, which would otherwise skip the release and
/// permanently shrink the process budget).
struct BudgetReservation<'a> {
    budget: &'a ThreadBudget,
    granted: usize,
}

impl<'a> BudgetReservation<'a> {
    fn take(budget: &'a ThreadBudget, want: usize) -> Self {
        BudgetReservation {
            granted: budget.reserve(want),
            budget,
        }
    }
}

impl Drop for BudgetReservation<'_> {
    fn drop(&mut self) {
        self.budget.release(self.granted);
    }
}

fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

fn global_budget() -> &'static ThreadBudget {
    static GLOBAL: OnceLock<ThreadBudget> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let cap = std::env::var("RAYON_TOTAL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(machine_parallelism);
        ThreadBudget::new(cap)
    })
}

/// The process-wide cap on live spawned workers (all `par_iter` calls
/// combined).
pub fn process_thread_cap() -> usize {
    global_budget().cap
}

/// Number of spawned workers currently live across the whole process.
pub fn live_workers() -> usize {
    global_budget().live()
}

/// High-watermark of concurrently live spawned workers since process start.
/// Never exceeds [`process_thread_cap`] — the regression guard for the
/// nested-fan-out oversubscription bug.
pub fn peak_live_workers() -> usize {
    global_budget().peak()
}

/// An equal share of this process's thread budget for one of `parts`
/// cooperating worker **processes** (at least 1 each): a coordinator that
/// spawns `parts` children and exports `RAYON_TOTAL_THREADS=<share>` to each
/// keeps the whole process *tree* within the budget a single process would
/// use, extending the no-oversubscription guarantee across process
/// boundaries.  Shares floor-divide, so `parts` that do not divide the cap
/// leave slack rather than oversubscribe.
pub fn split_thread_budget(parts: usize) -> usize {
    (process_thread_cap() / parts.max(1)).max(1)
}

/// How many workers a single parallel call may request before the shared
/// budget is consulted.
fn per_call_budget(cap: usize) -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    cap
}

/// Run `f` on every item of `items` in parallel, preserving input order in
/// the returned vector.  Workers are reserved from `budget`; when none are
/// available the call degrades to serial execution on the calling thread.
fn parallel_map_with_budget<'a, T: Sync, R: Send>(
    items: &'a [T],
    f: &(impl Fn(&'a T) -> R + Sync),
    budget: &ThreadBudget,
) -> Vec<R> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let want = per_call_budget(budget.cap).min(n);
    if want <= 1 {
        return items.iter().map(f).collect();
    }
    // Held through the scope below and released on drop, so a panicking
    // worker cannot leak its slots out of the process budget.
    let reservation = BudgetReservation::take(budget, want);
    let granted = reservation.granted;
    if granted <= 1 {
        // Not enough budget to overlap anything: run inline (the caller is
        // either the root thread or an already-counted worker).
        drop(reservation);
        return items.iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let chunk = n.div_ceil(granted);
    std::thread::scope(|scope| {
        // Pair each output chunk with its input chunk; each worker owns its
        // output slice exclusively, so no locking is needed.
        let mut rest: &mut [Option<R>] = &mut slots;
        let mut start = 0;
        while start < n {
            let len = chunk.min(n - start);
            let (head, tail) = rest.split_at_mut(len);
            rest = tail;
            let inputs = &items[start..start + len];
            scope.spawn(move || {
                for (slot, item) in head.iter_mut().zip(inputs) {
                    *slot = Some(f(item));
                }
            });
            start += len;
        }
    });
    drop(reservation);
    slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

fn parallel_map<'a, T: Sync, R: Send>(items: &'a [T], f: &(impl Fn(&'a T) -> R + Sync)) -> Vec<R> {
    parallel_map_with_budget(items, f, global_budget())
}

/// Parallel iterator over `&[T]`, produced by [`IntoParallelRefIterator::par_iter`].
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// A mapped parallel iterator; terminal operation is [`Map::collect`].
pub struct Map<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> Map<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        Map {
            items: self.items,
            f,
        }
    }
}

impl<'a, T: Sync, F> Map<'a, T, F> {
    /// Execute the map in parallel and collect results in input order.
    pub fn collect<C>(self) -> C
    where
        F: Fn(&'a T) -> C::Item + Sync,
        C: FromParallel,
        C::Item: Send,
    {
        C::from_vec(parallel_map(self.items, &self.f))
    }
}

/// Conversion trait mirroring rayon's `IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the parallel iterator.
    type Item: Sync + 'a;
    /// Create a parallel iterator borrowing the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Collections `collect` can produce (only `Vec<R>` is needed here).
pub trait FromParallel {
    /// Element type.
    type Item;
    /// Build the collection from an ordered vector.
    fn from_vec(v: Vec<Self::Item>) -> Self;
}

impl<R> FromParallel for Vec<R> {
    type Item = R;
    fn from_vec(v: Vec<R>) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_arrays_and_empty_inputs() {
        let arr = [1u32, 2, 3];
        let out: Vec<u32> = arr.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn nested_parallel_calls_complete() {
        let outer: Vec<usize> = (0..4).collect();
        let sums: Vec<usize> = outer
            .par_iter()
            .map(|&i| {
                let inner: Vec<usize> = (0..8).collect();
                let mapped: Vec<usize> = inner.par_iter().map(|&j| i * 10 + j).collect();
                mapped.into_iter().sum()
            })
            .collect();
        assert_eq!(sums.len(), 4);
        assert_eq!(sums[1], (0..8).map(|j| 10 + j).sum());
        // Whatever the machine size, the global budget was never blown.
        assert!(peak_live_workers() <= process_thread_cap());
    }

    /// Regression test for the nested-fan-out oversubscription bug: with the
    /// old per-call sizing, an outer fan-out of `L` items would let every
    /// worker spawn a full complement of inner workers (`L × cap` live
    /// threads).  With the shared budget, a nested call observes the cap and
    /// the peak of live spawned workers stays at or below it — checked here
    /// against a private budget so the test is independent of the host's
    /// core count and of other tests sharing the global budget.
    #[test]
    fn nested_calls_observe_the_shared_cap() {
        let budget = ThreadBudget::new(3);
        let outer: Vec<usize> = (0..8).collect();
        let sums: Vec<usize> = parallel_map_with_budget(
            &outer,
            &|&i| {
                let inner: Vec<usize> = (0..16).collect();
                let mapped: Vec<usize> =
                    parallel_map_with_budget(&inner, &|&j| i * 100 + j, &budget);
                mapped.into_iter().sum()
            },
            &budget,
        );
        // Results are correct and ordered...
        for (i, &s) in sums.iter().enumerate() {
            assert_eq!(s, (0..16).map(|j| i * 100 + j).sum::<usize>());
        }
        // ...every reservation was returned...
        assert_eq!(budget.live(), 0);
        // ...and at no instant did live spawned workers exceed the cap.
        assert!(
            budget.peak() <= 3,
            "peak {} exceeded the budget cap",
            budget.peak()
        );
    }

    #[test]
    fn split_thread_budget_floors_and_never_starves() {
        let cap = process_thread_cap();
        assert_eq!(split_thread_budget(1), cap);
        assert_eq!(split_thread_budget(0), cap, "0 parts treated as 1");
        let half = split_thread_budget(2);
        assert!(half >= 1 && half <= cap.div_ceil(2));
        // More parts than threads: every worker still gets one thread.
        assert_eq!(split_thread_budget(cap * 8), 1);
        // Shares never oversubscribe the cap.
        for parts in 1..=8 {
            assert!(split_thread_budget(parts) * parts <= cap.max(parts));
        }
    }

    #[test]
    fn budget_reserve_grants_partially_and_releases() {
        let budget = ThreadBudget::new(4);
        assert_eq!(budget.reserve(3), 3);
        // Only one worker left: a request for two is granted partially.
        assert_eq!(budget.reserve(2), 1);
        // Exhausted: further requests get nothing.
        assert_eq!(budget.reserve(5), 0);
        assert_eq!(budget.peak(), 4);
        budget.release(4);
        assert_eq!(budget.live(), 0);
        // Capacity is reusable after release; the peak remains.
        assert_eq!(budget.reserve(2), 2);
        budget.release(2);
        assert_eq!(budget.peak(), 4);
    }

    #[test]
    fn panicking_worker_does_not_leak_budget() {
        let budget = ThreadBudget::new(4);
        let input: Vec<usize> = (0..8).collect();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map_with_budget(
                &input,
                &|&x| {
                    if x == 5 {
                        panic!("worker dies");
                    }
                    x
                },
                &budget,
            )
        }));
        assert!(outcome.is_err(), "the worker panic must propagate");
        // The RAII reservation released every slot despite the panic...
        assert_eq!(budget.live(), 0);
        // ...so later calls still get full parallelism.
        assert_eq!(budget.reserve(4), 4);
        budget.release(4);
    }

    #[test]
    fn exhausted_budget_degrades_to_serial_with_correct_results() {
        let budget = ThreadBudget::new(2);
        let held = budget.reserve(2);
        assert_eq!(held, 2);
        let input: Vec<u64> = (0..100).collect();
        let out = parallel_map_with_budget(&input, &|&x| x + 1, &budget);
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
        // The serial fallback reserved nothing extra.
        assert_eq!(budget.live(), 2);
        budget.release(held);
    }
}
