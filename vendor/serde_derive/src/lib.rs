//! Derive macros for the vendored serde stand-in.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` using only the
//! built-in `proc_macro` API (no syn/quote, which are unavailable offline).
//! Supports the shapes used in this workspace: non-generic named structs,
//! tuple structs, unit structs, and enums with unit / named / tuple variants.
//! Enum values use serde's externally-tagged representation, so the JSON this
//! produces matches what the real serde + serde_json pair would emit for the
//! same types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // '#'
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Advance past a type (or any token run) until a top-level comma, tracking
/// `<`/`>` nesting so commas inside generics don't terminate early.
fn skip_until_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth: i32 = 0;
    while let Some(t) = tokens.get(i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Count top-level comma-separated items inside a tuple-struct body.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_until_comma(&tokens, i);
        i += 1; // past the comma (or end)
    }
    count
}

/// Extract field names from a named-struct (or struct-variant) body.
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err(format!(
                "expected field name, found {:?}",
                tokens[i].to_string()
            ));
        };
        fields.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field, found {other:?}")),
        }
        i = skip_until_comma(&tokens, i);
        i += 1;
    }
    Ok(fields)
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            if i >= tokens.len() {
                break;
            }
            return Err(format!(
                "expected variant name, found {:?}",
                tokens[i].to_string()
            ));
        };
        let name = name.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g)?;
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g);
                i += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        // Skip anything up to the separating comma (e.g. discriminants).
        i = skip_until_comma(&tokens, i);
        i += 1;
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde derive does not support generic type `{name}`"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(g)?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Enum {
                name,
                variants: parse_variants(g)?,
            }),
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("serde::Value::Seq(vec![{}])", items.join(", "))
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> serde::Value {{ serde::Value::Map(vec![]) }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vname} => serde::Value::Str(String::from({vname:?}))")
                        }
                        VariantKind::Named(fields) => {
                            let binders = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from({f:?}), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => serde::Value::Map(vec![\
                                 (String::from({vname:?}), serde::Value::Map(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                        VariantKind::Tuple(arity) => {
                            let binders: Vec<String> =
                                (0..*arity).map(|i| format!("x{i}")).collect();
                            let inner = if *arity == 1 {
                                "serde::Serialize::to_value(x0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("serde::Value::Seq(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({}) => serde::Value::Map(vec![\
                                 (String::from({vname:?}), {inner})])",
                                binders.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn named_fields_ctor(type_path: &str, fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: serde::Deserialize::from_value({source}.get({f:?}).ok_or_else(|| \
                 serde::DeError::msg(concat!(\"missing field `\", {f:?}, \"`\")))?)?"
            )
        })
        .collect();
    format!("{type_path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let ctor = named_fields_ctor(name, fields, "v");
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         Ok({ctor})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(serde::Deserialize::from_value(v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "match v {{\n\
                         serde::Value::Seq(items) if items.len() == {arity} => \
                             Ok({name}({})),\n\
                         other => Err(serde::DeError::msg(format!(\
                             \"expected {arity}-element sequence for {name}, got {{other:?}}\"))),\n\
                     }}",
                    items.join(", ")
                )
            };
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                 fn from_value(_v: &serde::Value) -> Result<Self, serde::DeError> {{ Ok({name}) }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Named(fields) => {
                            let ctor =
                                named_fields_ctor(&format!("{name}::{vname}"), fields, "inner");
                            Some(format!("{vname:?} => Ok({ctor}),"))
                        }
                        VariantKind::Tuple(arity) => {
                            let body = if *arity == 1 {
                                format!(
                                    "Ok({name}::{vname}(serde::Deserialize::from_value(inner)?))"
                                )
                            } else {
                                let items: Vec<String> = (0..*arity)
                                    .map(|i| {
                                        format!("serde::Deserialize::from_value(&items[{i}])?")
                                    })
                                    .collect();
                                format!(
                                    "match inner {{\n\
                                         serde::Value::Seq(items) if items.len() == {arity} => \
                                             Ok({name}::{vname}({})),\n\
                                         other => Err(serde::DeError::msg(format!(\
                                             \"bad payload for {name}::{vname}: {{other:?}}\"))),\n\
                                     }}",
                                    items.join(", ")
                                )
                            };
                            Some(format!("{vname:?} => {{ {body} }}"))
                        }
                    }
                })
                .collect();
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(serde::DeError::msg(format!(\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => Err(serde::DeError::msg(format!(\
                                         \"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(serde::DeError::msg(format!(\
                                 \"expected {name} variant, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                tagged_arms.join("\n")
            )
        }
    }
}

/// Derive `serde::Serialize` (vendored stand-in).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

/// Derive `serde::Deserialize` (vendored stand-in).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}
