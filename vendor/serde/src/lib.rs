//! Offline stand-in for the `serde` crate.
//!
//! The container this workspace builds in has no network access and no
//! vendored crates.io sources, so the real serde cannot be fetched.  This
//! crate keeps the public surface the workspace relies on — the
//! `Serialize` / `Deserialize` traits, the `#[derive(Serialize, Deserialize)]`
//! macros (via the sibling `serde_derive` crate) and blanket impls for the
//! std types used in configs and reports — but routes everything through a
//! simple self-describing [`Value`] tree instead of serde's visitor machinery.
//! `serde_json` (also vendored) serializes that tree to JSON text and back.
//!
//! The data model is deliberately small: it supports exactly what the CAEM
//! suite round-trips (scenario configs, metric reports).  It is not a general
//! serde replacement.

/// A self-describing serialized value: the intermediate representation every
/// `Serialize`/`Deserialize` impl converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (used when a JSON number is negative and integral).
    Int(i64),
    /// An unsigned integer (non-negative integral numbers).
    UInt(u64),
    /// A floating point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (preserves insertion order).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, accepting any numeric representation.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice if it is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] tree cannot be decoded into the requested
/// type.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Construct an error with a descriptive message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` to the intermediate value representation.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
///
/// The `'de` lifetime parameter mirrors real serde's signature so derived
/// impls and trait bounds written for the real crate keep compiling; this
/// stand-in never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Rebuild `Self` from the intermediate value representation.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Owned-deserialization alias matching serde's `DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| {
                    DeError::msg(format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(u).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| {
                    DeError::msg(format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(i).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| {
                    DeError::msg(format!("expected number, got {v:?}"))
                })
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::msg(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::msg(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::msg(format!("expected sequence, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::msg(format!("expected sequence, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let decoded: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                decoded
                    .try_into()
                    .map_err(|_| DeError::msg("array length mismatch"))
            }
            _ => Err(DeError::msg(format!(
                "expected {N}-element sequence, got {v:?}"
            ))),
        }
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError::msg(format!(
                                "expected {expected}-tuple, got {} elements", items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::msg(format!("expected sequence, got {v:?}"))),
                }
            }
        }
    )+};
}
impl_serialize_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&v.to_value()).unwrap(), None);
    }

    #[test]
    fn collections_round_trip() {
        let xs = vec![(1u64, 2.0f64), (3, 4.0)];
        let back: Vec<(u64, f64)> = Vec::from_value(&xs.to_value()).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn map_lookup() {
        let m = Value::Map(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(m.get("a"), Some(&Value::UInt(1)));
        assert_eq!(m.get("b"), None);
    }
}
