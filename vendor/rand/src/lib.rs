//! Offline stand-in for the parts of `rand` this workspace uses: the
//! `RngCore` / `SeedableRng` traits and the `Error` type.  `caem-simcore`
//! implements these for its own xoshiro-style generator; no sampling
//! machinery from the real crate is required.

/// Error type for fallible RNG operations (never produced by this suite's
/// deterministic generators, but part of the trait signature).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RNG error")
    }
}

impl std::error::Error for Error {}

/// Core random-number-generator interface (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Seedable construction interface (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}
