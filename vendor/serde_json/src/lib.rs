//! Offline stand-in for `serde_json`: serializes the vendored `serde`
//! [`Value`] model to JSON text and parses JSON text back.
//!
//! Supports everything the CAEM suite round-trips — configs, reports, and the
//! `json!` literals in the figure binaries.  Numbers are emitted with Rust's
//! shortest round-trip float formatting so `f64` fields survive a
//! serialize/deserialize cycle bit-exactly.
//!
//! Serialization is writer-side streaming: the core emitter targets any
//! [`std::io::Write`] sink ([`to_writer`] / [`to_writer_pretty`]), so callers
//! like the experiment persistence layer can stream one JSONL record at a
//! time without building intermediate `String`s; [`to_string`] and
//! [`to_string_pretty`] are thin wrappers over an in-memory buffer.

use std::io::{self, Write};

pub use serde::Value;

/// Error raised by JSON parsing or decoding.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = Vec::new();
    write_value(&mut out, &value.to_value(), None, 0).expect("Vec<u8> writes are infallible");
    Ok(String::from_utf8(out).expect("the emitter only writes UTF-8"))
}

/// Serialize a value to human-readable, indented JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = Vec::new();
    write_value(&mut out, &value.to_value(), Some(2), 0).expect("Vec<u8> writes are infallible");
    Ok(String::from_utf8(out).expect("the emitter only writes UTF-8"))
}

/// Stream a value as compact JSON directly into an [`io::Write`] sink,
/// without building the full text in memory first.
pub fn to_writer<W: io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    write_value(&mut writer, &value.to_value(), None, 0)
        .map_err(|e| Error::msg(format!("write failed: {e}")))
}

/// Stream a value as indented JSON directly into an [`io::Write`] sink.
pub fn to_writer_pretty<W: io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    write_value(&mut writer, &value.to_value(), Some(2), 0)
        .map_err(|e| Error::msg(format!("write failed: {e}")))
}

/// Serialize a value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserialize a value from JSON text.
pub fn from_str<T: serde::DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Decode a typed value out of a [`Value`] tree.
pub fn from_value<T: serde::DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

fn write_escaped<W: Write>(out: &mut W, s: &str) -> io::Result<()> {
    out.write_all(b"\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_all(b"\\\"")?,
            '\\' => out.write_all(b"\\\\")?,
            '\n' => out.write_all(b"\\n")?,
            '\r' => out.write_all(b"\\r")?,
            '\t' => out.write_all(b"\\t")?,
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32)?;
            }
            c => {
                let mut buf = [0u8; 4];
                out.write_all(c.encode_utf8(&mut buf).as_bytes())?;
            }
        }
    }
    out.write_all(b"\"")
}

fn write_float<W: Write>(out: &mut W, f: f64) -> io::Result<()> {
    if f.is_finite() {
        // `{:?}` is Rust's shortest round-trip representation.
        write!(out, "{f:?}")
    } else {
        // JSON has no NaN/Infinity; follow serde_json and emit null.
        out.write_all(b"null")
    }
}

fn write_value<W: Write>(
    out: &mut W,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> io::Result<()> {
    match v {
        Value::Null => out.write_all(b"null"),
        Value::Bool(b) => out.write_all(if *b { b"true" } else { b"false" }),
        Value::Int(i) => write!(out, "{i}"),
        Value::UInt(u) => write!(out, "{u}"),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                return out.write_all(b"[]");
            }
            out.write_all(b"[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_all(b",")?;
                }
                newline_indent(out, indent, depth + 1)?;
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth)?;
            out.write_all(b"]")
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                return out.write_all(b"{}");
            }
            out.write_all(b"{")?;
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.write_all(b",")?;
                }
                newline_indent(out, indent, depth + 1)?;
                write_escaped(out, key)?;
                out.write_all(b":")?;
                if indent.is_some() {
                    out.write_all(b" ")?;
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth)?;
            out.write_all(b"}")
        }
    }
}

fn newline_indent<W: Write>(out: &mut W, indent: Option<usize>, depth: usize) -> io::Result<()> {
    if let Some(width) = indent {
        out.write_all(b"\n")?;
        for _ in 0..width * depth {
            out.write_all(b" ")?;
        }
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid UTF-8 in number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => return Err(Error::msg(format!("expected `,` or `]`, got {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => return Err(Error::msg(format!("expected `,` or `}}`, got {other:?}"))),
            }
        }
    }
}

#[doc(hidden)]
pub mod __private {
    pub use serde::Serialize;
}

/// Build a [`Value`] from a JSON-like literal, mirroring `serde_json::json!`.
///
/// Supports object literals with string-literal keys, array literals, and
/// arbitrary Rust expressions implementing `serde::Serialize` in value
/// position.  Nest objects by nesting `json!` calls (a `json!` invocation is
/// itself an expression producing a serializable [`Value`]).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![
            $( $crate::__private::Serialize::to_value(&$item) ),*
        ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $( (String::from($key), $crate::__private::Serialize::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => {
        $crate::__private::Serialize::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_collections() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(7)),
            ("b".into(), Value::Float(1.25)),
            ("c".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("d".into(), Value::Str("x \"quoted\"\n".into())),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1f64, 1e-12, 123456.789012345, -2.5e300] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn negative_and_large_integers() {
        assert_eq!(parse("-42").unwrap(), Value::Int(-42));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
    }

    #[test]
    fn json_macro_builds_nested_structures() {
        let v = json!({
            "name": format!("abc{}", 1),
            "count": 3u64,
            "nested": json!({ "ok": true }),
            "list": [1u64, 2u64],
        });
        assert_eq!(v.get("count"), Some(&Value::UInt(3)));
        assert!(matches!(
            v.get("nested").unwrap().get("ok"),
            Some(Value::Bool(true))
        ));
    }

    #[test]
    fn to_writer_streams_the_same_bytes_as_to_string() {
        let v = json!({
            "label": "uniform \"q\"\n",
            "seed": 42u64,
            "metrics": json!([1.25f64, json!(null), -0.5f64]),
        });
        let mut streamed = Vec::new();
        to_writer(&mut streamed, &v).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), to_string(&v).unwrap());
        let mut pretty = Vec::new();
        to_writer_pretty(&mut pretty, &v).unwrap();
        assert_eq!(
            String::from_utf8(pretty).unwrap(),
            to_string_pretty(&v).unwrap()
        );
    }

    #[test]
    fn to_writer_propagates_io_errors() {
        struct Failing;
        impl std::io::Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert!(to_writer(Failing, &1.5f64).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
    }
}
