//! Criterion micro-benchmarks of the hot substrate components: channel CSI
//! sampling, PHY mode selection / PER evaluation, and the pending-event set.
//! These dominate the per-event cost of the network simulator.

use caem_channel::link::{LinkBudget, LinkChannel};
use caem_channel::pathloss::PathLossModel;
use caem_channel::shadowing::ShadowingConfig;
use caem_mac::tone::{ChannelState, ToneSchedule};
use caem_phy::ber::packet_error_rate;
use caem_phy::frame::FrameSpec;
use caem_phy::mode::TransmissionMode;
use caem_simcore::event::EventQueue;
use caem_simcore::rng::{components, RngStream};
use caem_simcore::time::{Duration, SimTime};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_channel_sampling(c: &mut Criterion) {
    let streams = RngStream::new(1);
    let mut link = LinkChannel::with_distance(
        40.0,
        LinkBudget::paper_default(),
        PathLossModel::paper_default(),
        ShadowingConfig::default(),
        streams.derive(components::SHADOWING, 0),
        streams.derive(components::FADING, 0),
    );
    let mut t = SimTime::ZERO;
    c.bench_function("link_csi_measure", |b| {
        b.iter(|| {
            t += Duration::from_millis(10);
            black_box(link.measure(t))
        })
    });
}

fn bench_phy(c: &mut Criterion) {
    c.bench_function("mode_selection_from_snr", |b| {
        let mut snr = 0.0f64;
        b.iter(|| {
            snr = (snr + 0.37) % 40.0;
            black_box(TransmissionMode::best_for_snr(black_box(snr)))
        })
    });
    c.bench_function("packet_error_rate_2kbit", |b| {
        let frame = FrameSpec::paper_default();
        let mut snr = 0.0f64;
        b.iter(|| {
            snr = (snr + 0.53) % 30.0;
            let mode = TransmissionMode::Kbps450;
            black_box(packet_error_rate(
                mode.modulation(),
                mode.code_rate(),
                black_box(snr),
                frame.payload_bits,
            ))
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1_000u64 {
                q.push(SimTime::from_micros((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.event);
            }
            black_box(sum)
        })
    });
}

fn bench_tone_classification(c: &mut Criterion) {
    let schedule = ToneSchedule::paper_default();
    c.bench_function("tone_interval_classification", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let state = ChannelState::ALL[(i % 4) as usize];
            let interval = schedule.pulse_for(state).interval;
            black_box(schedule.classify_interval(black_box(interval), 0.2))
        })
    });
}

criterion_group!(
    benches,
    bench_channel_sampling,
    bench_phy,
    bench_event_queue,
    bench_tone_classification
);
criterion_main!(benches);
