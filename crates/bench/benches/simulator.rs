//! Criterion benchmarks of the end-to-end simulator: how much wall-clock time
//! one simulated network-second costs under each protocol, and how the cost
//! scales with traffic load.  These are the budgets behind the figure
//! binaries (a full Fig. 10 sweep is ~50 simulated kiloseconds).

use caem::policy::PolicyKind;
use caem_simcore::time::Duration;
use caem_wsnsim::{ScenarioConfig, SimulationRun};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_30s_50nodes");
    group.sample_size(10);
    for policy in [
        PolicyKind::PureLeach,
        PolicyKind::Scheme1Adaptive,
        PolicyKind::Scheme2Fixed,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut cfg = ScenarioConfig::paper_default(policy, 5.0, 7);
                    cfg.node_count = 50;
                    cfg.duration = Duration::from_secs(30);
                    SimulationRun::new(cfg).run()
                });
            },
        );
    }
    group.finish();
}

fn bench_load_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_load_scaling_20nodes_20s");
    group.sample_size(10);
    for load in [5.0f64, 15.0, 30.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(load as u64),
            &load,
            |b, &load| {
                b.iter(|| {
                    let cfg = ScenarioConfig::small(PolicyKind::Scheme1Adaptive, load, 7)
                        .with_duration(Duration::from_secs(20));
                    SimulationRun::new(cfg).run()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_load_scaling);
criterion_main!(benches);
