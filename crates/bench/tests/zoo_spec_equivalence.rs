//! The committed `specs/zoo.json` and the code-defined zoo are the same
//! grid: label-for-label, config-hash-for-config-hash, in both full and
//! quick mode.  Because every store record and the distributed manifest key
//! on the resolved configs, hash equality here is what makes the spec-file
//! runs byte-identical to the code-defined runs (the CI job then diffs the
//! actual report artifacts as the end-to-end check).

use caem_bench::{zoo_replicates, zoo_scenarios, DEFAULT_SEED};
use caem_wsnsim::experiment::ExperimentSpec;
use caem_wsnsim::persist::config_hash;
use caem_wsnsim::spec::{GridSpec, ResolvedSpec};

const ZOO_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/zoo.json");

fn load_zoo() -> GridSpec {
    let text = std::fs::read_to_string(ZOO_PATH).expect("committed specs/zoo.json readable");
    GridSpec::parse(&text).expect("committed zoo spec parses")
}

#[test]
fn spec_file_zoo_matches_the_code_defined_zoo_in_both_modes() {
    let doc = load_zoo();
    for quick in [false, true] {
        let from_file = doc
            .resolve(DEFAULT_SEED, quick)
            .expect("committed zoo spec resolves");
        let from_code = ExperimentSpec::paper_policies(
            zoo_scenarios(DEFAULT_SEED, quick),
            DEFAULT_SEED,
            zoo_replicates(quick),
        );
        assert_eq!(from_file.spec.seeds, from_code.seeds, "quick={quick}");
        assert_eq!(from_file.spec.policies, from_code.policies, "quick={quick}");
        assert_eq!(
            from_file.spec.scenarios.len(),
            from_code.scenarios.len(),
            "quick={quick}"
        );
        for (file_s, code_s) in from_file.spec.scenarios.iter().zip(&from_code.scenarios) {
            assert_eq!(file_s.label, code_s.label, "quick={quick}");
            assert_eq!(
                config_hash(&file_s.base),
                config_hash(&code_s.base),
                "scenario `{}` (quick={quick}) must resolve to the exact \
                 config the code zoo builds — every field, bit for bit",
                file_s.label
            );
        }
        // The canonical resolved dumps (what --print-spec prints) are
        // byte-identical too.
        let a = serde_json::to_string_pretty(&ResolvedSpec::of(&from_file.spec).to_json())
            .expect("serializes");
        let b = serde_json::to_string_pretty(&ResolvedSpec::of(&from_code).to_json())
            .expect("serializes");
        assert_eq!(a, b, "quick={quick}");
    }
}

#[test]
fn zoo_spec_round_trips_canonically() {
    let doc = load_zoo();
    let reserialized = serde_json::to_string_pretty(&doc.to_json()).expect("serializes");
    let back = GridSpec::parse(&reserialized).expect("canonical form re-parses");
    assert_eq!(back, doc, "parse ∘ serialize is the identity on the zoo");
}

#[test]
fn cli_seed_default_matches_the_zoo_spec_base_seed() {
    // The committed spec pins base_seed so a bare `--spec specs/zoo.json`
    // run reproduces the default zoo artifacts; if DEFAULT_SEED ever moves,
    // the spec must move with it.
    let doc = load_zoo();
    assert_eq!(doc.base_seed, Some(DEFAULT_SEED));
}
