//! Structured command-line parsing for the bench binaries.
//!
//! The `experiment` binary used to probe `std::env::args` with ad-hoc
//! `has_flag`/`flag_value` lookups guarded by an O(n²) pairwise conflict
//! table — misspelled flags were silently ignored and every new flag meant
//! auditing every pair.  This module replaces that with a two-layer parser:
//!
//! 1. A **lexer** ([`ParsedArgs::lex`]) that knows the full flag vocabulary
//!    of a binary: unknown flags, missing values, duplicate flags and stray
//!    positionals are typed [`CliError`]s (exit 2 with a usage message at
//!    the binary boundary).  Both `--flag value` and `--flag=value` work.
//! 2. A **mode builder** ([`ExperimentCli::from_args`]) that folds the
//!    lexed flags into one [`ExperimentMode`] value.  Invalid combinations
//!    are unrepresentable by construction — `Reaggregate` simply has no
//!    `workers` field, a distributed run has no `store` field — so the old
//!    conflict table is replaced by the shape of the types, and every
//!    remaining cross-flag rule is a typed error naming both flags.

use std::fmt;

use caem_wsnsim::faults::FaultPlanConfig;

/// A typed command-line error.  `Display` renders the message the binaries
/// print (followed by their usage text) before exiting 2.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// A flag outside the binary's vocabulary (misspelled flags land here
    /// instead of being silently ignored).
    UnknownFlag(String),
    /// A value-taking flag with its value missing.
    MissingValue(&'static str),
    /// A boolean flag given an `=value`.
    UnexpectedValue(&'static str),
    /// The same flag given twice.
    DuplicateFlag(&'static str),
    /// A flag value that does not parse as what the flag takes.
    InvalidValue {
        /// The flag.
        flag: &'static str,
        /// The rejected text.
        value: String,
        /// What the flag takes.
        expected: &'static str,
    },
    /// A positional argument the binary does not accept.
    UnexpectedPositional(String),
    /// Two flags that each select a mode.
    ModeConflict(&'static str, &'static str),
    /// A flag that is meaningless in the selected mode (its effect would be
    /// silently ignored).
    NotInMode {
        /// The rejected flag.
        flag: &'static str,
        /// The mode selected by the rest of the command line.
        mode: &'static str,
    },
    /// A flag missing the companion that gives it meaning.
    Requires {
        /// The given flag.
        flag: &'static str,
        /// The companion it needs.
        requires: &'static str,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            CliError::MissingValue(flag) => write!(f, "{flag} requires a value"),
            CliError::UnexpectedValue(flag) => write!(f, "{flag} takes no value"),
            CliError::DuplicateFlag(flag) => write!(f, "{flag} given more than once"),
            CliError::InvalidValue {
                flag,
                value,
                expected,
            } => write!(f, "{flag} takes {expected} (got `{value}`)"),
            CliError::UnexpectedPositional(arg) => {
                write!(f, "unexpected argument `{arg}`")
            }
            CliError::ModeConflict(a, b) => {
                write!(f, "{a} and {b} select different modes; pass one")
            }
            CliError::NotInMode { flag, mode } => {
                write!(f, "{flag} has no effect in {mode} mode")
            }
            CliError::Requires { flag, requires } => {
                write!(f, "{flag} requires {requires}")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// One flag a binary understands.
#[derive(Debug, Clone, Copy)]
pub struct FlagDef {
    /// The flag, including the leading `--`.
    pub name: &'static str,
    /// Whether the flag consumes a value (`--flag value` / `--flag=value`).
    pub takes_value: bool,
}

/// Declare a boolean flag.
pub const fn flag(name: &'static str) -> FlagDef {
    FlagDef {
        name,
        takes_value: false,
    }
}

/// Declare a value-taking flag.
pub const fn option(name: &'static str) -> FlagDef {
    FlagDef {
        name,
        takes_value: true,
    }
}

/// The lexed command line: every flag resolved against the binary's
/// vocabulary, plus the bare positionals.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    values: Vec<(&'static str, Option<String>)>,
    /// Positional (non-flag) arguments, in order.
    pub positionals: Vec<String>,
}

impl ParsedArgs {
    /// Lex `args` (without the program name) against `vocabulary`.
    ///
    /// `--flag=value` and `--flag value` are equivalent; `--` ends flag
    /// processing (everything after is positional).  Unknown flags,
    /// duplicate flags, missing or unexpected values are typed errors —
    /// nothing is ignored.
    pub fn lex<I>(args: I, vocabulary: &[FlagDef]) -> Result<Self, CliError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut parsed = ParsedArgs::default();
        let mut args = args.into_iter();
        let mut flags_done = false;
        while let Some(arg) = args.next() {
            if flags_done || !arg.starts_with("--") {
                parsed.positionals.push(arg);
                continue;
            }
            if arg == "--" {
                flags_done = true;
                continue;
            }
            let (name, inline_value) = match arg.split_once('=') {
                Some((name, value)) => (name.to_string(), Some(value.to_string())),
                None => (arg, None),
            };
            let def = vocabulary
                .iter()
                .find(|d| d.name == name)
                .ok_or(CliError::UnknownFlag(name.clone()))?;
            if parsed.values.iter().any(|(n, _)| *n == def.name) {
                return Err(CliError::DuplicateFlag(def.name));
            }
            let value = match (def.takes_value, inline_value) {
                (false, None) => None,
                (false, Some(_)) => return Err(CliError::UnexpectedValue(def.name)),
                (true, Some(v)) => Some(v),
                (true, None) => {
                    // The next argument is the value — but another flag is
                    // not a value (catches `--store --resume`).
                    match args.next() {
                        Some(v) if !v.starts_with("--") => Some(v),
                        _ => return Err(CliError::MissingValue(def.name)),
                    }
                }
            };
            parsed.values.push((def.name, value));
        }
        Ok(parsed)
    }

    /// Whether a flag was given.
    pub fn has(&self, name: &str) -> bool {
        self.values.iter().any(|(n, _)| *n == name)
    }

    /// The raw value of a value-taking flag, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Parse a flag's value, mapping a parse failure to
    /// [`CliError::InvalidValue`].
    pub fn parsed<T: std::str::FromStr>(
        &self,
        name: &'static str,
        expected: &'static str,
    ) -> Result<Option<T>, CliError> {
        match self.value(name) {
            None => Ok(None),
            Some(text) => text.parse().map(Some).map_err(|_| CliError::InvalidValue {
                flag: name,
                value: text.to_string(),
                expected,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// The experiment binary's structured command line.
// ---------------------------------------------------------------------------

/// The `experiment` binary's full flag vocabulary.
pub const EXPERIMENT_FLAGS: &[FlagDef] = &[
    flag("--quick"),
    flag("--resume"),
    flag("--reaggregate"),
    flag("--list-scenarios"),
    flag("--print-spec"),
    flag("--strict"),
    flag("--fsync"),
    flag("--profile"),
    option("--chaos"),
    option("--spec"),
    option("--store"),
    option("--workers"),
    option("--distrib-dir"),
    option("--worker-shard"),
    option("--target-ci"),
    option("--ci-metric"),
    option("--max-replicates"),
    option("--lease-ttl"),
    option("--connect"),
    option("--protocol"),
    option("--expect-hash"),
];

/// Where a (non-distributed or distributed) grid run executes and persists.
/// A local run may point at a custom store; a distributed run's records live
/// in per-worker stores under the shard directory — there is **no** `store`
/// field to misuse, so `--workers --store` cannot even be represented.
#[derive(Debug, Clone, PartialEq)]
pub enum RunBackend {
    /// Single process, one JSONL store.
    Local {
        /// Custom store path (`None` = the binary's default store).
        store: Option<String>,
    },
    /// Multi-process via the shard directory.
    Distributed {
        /// Worker processes to spawn (≥ 1).
        workers: usize,
        /// Shard directory (`None` = the binary's default).
        dir: Option<String>,
    },
}

/// CI-driven sequential stopping, selected by `--target-ci`.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialArgs {
    /// Target worst-cell 95 % CI half-width.
    pub target_half_width: f64,
    /// Driving metric (`None` = the spec's, else the binary default).
    pub metric: Option<String>,
    /// Replicate cap (`None` = the spec's, else the binary default).
    pub max_replicates: Option<usize>,
}

/// A grid-executing invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Reuse persisted records instead of starting the default store afresh.
    pub resume: bool,
    /// Where the grid executes.
    pub backend: RunBackend,
    /// Sequential stopping, if `--target-ci` was given.
    pub sequential: Option<SequentialArgs>,
    /// Exit non-zero when the grid completes with quarantined jobs
    /// (`--strict`; the default is a degradation section + exit 0).
    pub strict: bool,
    /// fsync every store append (`--fsync`).
    pub fsync: bool,
    /// Shard-lease TTL override in seconds (`--lease-ttl`); requires a
    /// distributed backend, and takes precedence over the spec's `distrib`
    /// block.
    pub lease_ttl: Option<f64>,
    /// Fault-injection schedule (`--chaos seed:kind+kind`); requires a
    /// distributed backend, since the faults target the lease/store
    /// machinery the workers exercise.
    pub chaos: Option<FaultPlanConfig>,
    /// Enable the `caem_metrics::prof` time-breakdown profiler for the run
    /// (`--profile`); spawned workers inherit it through the environment.
    pub profile: bool,
}

/// The mutually exclusive modes of the `experiment` binary.  One value of
/// this enum is the whole story of an invocation: a mode carries exactly
/// the data meaningful to it, so contradictory flag combinations have no
/// representation and the old pairwise conflict table is gone.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentMode {
    /// Simulate the grid (fresh, resumed, sequential and/or distributed).
    Run(RunArgs),
    /// Rebuild the report offline from a JSONL store; simulates nothing.
    Reaggregate {
        /// Custom store path (`None` = the binary's default store).
        store: Option<String>,
    },
    /// Participate in a distributed grid as a worker process.
    Worker {
        /// The shard directory (must hold a manifest).
        dir: String,
        /// This worker's own JSONL store.
        store: String,
        /// Shard-lease TTL override in seconds (`--lease-ttl`).
        lease_ttl: Option<f64>,
    },
    /// Attach to a `caem-serve` daemon as a socket worker (no shared
    /// filesystem; jobs arrive over the wire).
    SocketWorker {
        /// The daemon address (`host:port`).
        addr: String,
        /// Protocol version override (testing version-skew rejection).
        protocol: Option<u64>,
        /// Refuse to work unless the daemon's active grid has this
        /// manifest hash.
        expect_hash: Option<u64>,
    },
    /// Print the grid's scenario labels and config hashes; simulates nothing.
    ListScenarios,
    /// Dump the canonical resolved spec as JSON; simulates nothing.
    PrintSpec,
}

impl ExperimentMode {
    fn name(&self) -> &'static str {
        match self {
            ExperimentMode::Run(args) => match (&args.backend, &args.sequential) {
                (RunBackend::Distributed { .. }, _) => "distributed",
                (_, Some(_)) => "sequential",
                (_, None) if args.resume => "resume",
                _ => "run",
            },
            ExperimentMode::Reaggregate { .. } => "reaggregate",
            ExperimentMode::Worker { .. } => "worker",
            ExperimentMode::SocketWorker { .. } => "socket-worker",
            ExperimentMode::ListScenarios => "list-scenarios",
            ExperimentMode::PrintSpec => "print-spec",
        }
    }
}

/// The `experiment` binary's parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentCli {
    /// Positional seed override (`None` = the harness default).
    pub seed: Option<u64>,
    /// Reduced smoke grid.
    pub quick: bool,
    /// Grid definition file (`None` = the code-defined zoo).
    pub spec: Option<String>,
    /// What this invocation does.
    pub mode: ExperimentMode,
}

impl ExperimentCli {
    /// Parse the process command line (skipping the program name).
    pub fn from_env() -> Result<Self, CliError> {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse an explicit argument list (testable entry point).
    pub fn from_args<I>(args: I) -> Result<Self, CliError>
    where
        I: IntoIterator<Item = String>,
    {
        let parsed = ParsedArgs::lex(args, EXPERIMENT_FLAGS)?;
        let mut positionals = parsed.positionals.iter();
        let seed = match positionals.next() {
            None => None,
            Some(text) => Some(text.parse().map_err(|_| CliError::InvalidValue {
                flag: "<seed>",
                value: text.clone(),
                expected: "an unsigned integer seed",
            })?),
        };
        if let Some(extra) = positionals.next() {
            return Err(CliError::UnexpectedPositional(extra.clone()));
        }

        // Exactly one mode selector may be present.
        let selectors: [(&'static str, bool); 5] = [
            ("--reaggregate", parsed.has("--reaggregate")),
            ("--worker-shard", parsed.has("--worker-shard")),
            ("--connect", parsed.has("--connect")),
            ("--list-scenarios", parsed.has("--list-scenarios")),
            ("--print-spec", parsed.has("--print-spec")),
        ];
        let mut selected: Option<&'static str> = None;
        for (name, present) in selectors {
            if present {
                if let Some(earlier) = selected {
                    return Err(CliError::ModeConflict(earlier, name));
                }
                selected = Some(name);
            }
        }

        let mode = match selected {
            Some("--worker-shard") => {
                if let Some(extra) = parsed.positionals.first() {
                    // Workers are manifest-driven: a positional seed would
                    // be silently ignored, so reject it like the flags below.
                    return Err(CliError::UnexpectedPositional(extra.clone()));
                }
                let dir = parsed
                    .value("--worker-shard")
                    .expect("lexer enforced the value")
                    .to_string();
                let store = parsed
                    .value("--store")
                    .ok_or(CliError::Requires {
                        flag: "--worker-shard",
                        requires: "--store",
                    })?
                    .to_string();
                // A worker is entirely manifest-driven: any grid- or
                // run-shaping flag would be silently ignored, so reject all.
                reject_all(
                    &parsed,
                    "worker",
                    &[
                        "--resume",
                        "--workers",
                        "--distrib-dir",
                        "--target-ci",
                        "--ci-metric",
                        "--max-replicates",
                        "--quick",
                        "--spec",
                        "--strict",
                        "--fsync",
                        "--chaos",
                        "--profile",
                        "--protocol",
                        "--expect-hash",
                    ],
                )?;
                ExperimentMode::Worker {
                    dir,
                    store,
                    lease_ttl: positive_seconds(&parsed, "--lease-ttl")?,
                }
            }
            Some("--connect") => {
                if let Some(extra) = parsed.positionals.first() {
                    return Err(CliError::UnexpectedPositional(extra.clone()));
                }
                let addr = parsed
                    .value("--connect")
                    .expect("lexer enforced the value")
                    .to_string();
                // A socket worker learns everything else (jobs, lease
                // tuning, heartbeat cadence) from the daemon's handshake
                // and grants; every other flag would be silently ignored.
                reject_all(
                    &parsed,
                    "socket-worker",
                    &[
                        "--resume",
                        "--store",
                        "--workers",
                        "--distrib-dir",
                        "--target-ci",
                        "--ci-metric",
                        "--max-replicates",
                        "--quick",
                        "--spec",
                        "--strict",
                        "--fsync",
                        "--chaos",
                        "--profile",
                        "--lease-ttl",
                    ],
                )?;
                ExperimentMode::SocketWorker {
                    addr,
                    protocol: parsed.parsed("--protocol", "an unsigned integer version")?,
                    expect_hash: parsed.parsed("--expect-hash", "an unsigned integer hash")?,
                }
            }
            Some("--reaggregate") => {
                reject_all(
                    &parsed,
                    "reaggregate",
                    &[
                        "--resume",
                        "--workers",
                        "--distrib-dir",
                        "--target-ci",
                        "--ci-metric",
                        "--max-replicates",
                        "--strict",
                        "--fsync",
                        "--chaos",
                        "--profile",
                        "--lease-ttl",
                        "--protocol",
                        "--expect-hash",
                    ],
                )?;
                ExperimentMode::Reaggregate {
                    store: parsed.value("--store").map(str::to_string),
                }
            }
            Some(introspect @ ("--list-scenarios" | "--print-spec")) => {
                let mode_name = if introspect == "--list-scenarios" {
                    "list-scenarios"
                } else {
                    "print-spec"
                };
                reject_all(
                    &parsed,
                    mode_name,
                    &[
                        "--resume",
                        "--store",
                        "--workers",
                        "--distrib-dir",
                        "--target-ci",
                        "--ci-metric",
                        "--max-replicates",
                        "--strict",
                        "--fsync",
                        "--chaos",
                        "--profile",
                        "--lease-ttl",
                        "--protocol",
                        "--expect-hash",
                    ],
                )?;
                if introspect == "--list-scenarios" {
                    ExperimentMode::ListScenarios
                } else {
                    ExperimentMode::PrintSpec
                }
            }
            _ => {
                // The socket-worker vocabulary means nothing to a run.
                reject_all(&parsed, "run", &["--protocol", "--expect-hash"])?;
                let sequential = match parsed.parsed::<f64>("--target-ci", "a number")? {
                    Some(target_half_width) => Some(SequentialArgs {
                        target_half_width,
                        metric: parsed.value("--ci-metric").map(str::to_string),
                        max_replicates: parsed
                            .parsed("--max-replicates", "an integer >= 1")?
                            .map(require_at_least_one("--max-replicates"))
                            .transpose()?,
                    }),
                    None => {
                        for dependent in ["--ci-metric", "--max-replicates"] {
                            if parsed.has(dependent) {
                                return Err(CliError::Requires {
                                    flag: dependent,
                                    requires: "--target-ci",
                                });
                            }
                        }
                        None
                    }
                };
                let backend = match parsed.parsed::<usize>("--workers", "an integer >= 1")? {
                    Some(workers) => {
                        let workers = require_at_least_one("--workers")(workers)?;
                        if parsed.has("--store") {
                            // Distributed records live in per-worker stores
                            // under the shard directory; a single-process
                            // store path would be silently ignored.
                            return Err(CliError::NotInMode {
                                flag: "--store",
                                mode: "distributed",
                            });
                        }
                        RunBackend::Distributed {
                            workers,
                            dir: parsed.value("--distrib-dir").map(str::to_string),
                        }
                    }
                    None => {
                        if parsed.has("--distrib-dir") {
                            return Err(CliError::Requires {
                                flag: "--distrib-dir",
                                requires: "--workers",
                            });
                        }
                        RunBackend::Local {
                            store: parsed.value("--store").map(str::to_string),
                        }
                    }
                };
                let lease_ttl = positive_seconds(&parsed, "--lease-ttl")?;
                if lease_ttl.is_some() && !matches!(backend, RunBackend::Distributed { .. }) {
                    // Leases only exist on the distributed path; a local
                    // run would silently ignore the TTL.
                    return Err(CliError::Requires {
                        flag: "--lease-ttl",
                        requires: "--workers",
                    });
                }
                let chaos = match parsed.value("--chaos") {
                    None => None,
                    Some(text) => {
                        if !matches!(backend, RunBackend::Distributed { .. }) {
                            // The fault plan targets the lease/steal/worker
                            // machinery; a single-process run would inject
                            // nothing it claims to.
                            return Err(CliError::Requires {
                                flag: "--chaos",
                                requires: "--workers",
                            });
                        }
                        Some(FaultPlanConfig::parse(text).map_err(|_| CliError::InvalidValue {
                            flag: "--chaos",
                            value: text.to_string(),
                            expected: "seed:kind+kind (kinds: kill, torn, skew, transient, delay, poison, all)",
                        })?)
                    }
                };
                ExperimentMode::Run(RunArgs {
                    resume: parsed.has("--resume"),
                    backend,
                    sequential,
                    strict: parsed.has("--strict"),
                    fsync: parsed.has("--fsync"),
                    lease_ttl,
                    chaos,
                    profile: parsed.has("--profile"),
                })
            }
        };
        Ok(ExperimentCli {
            seed,
            quick: parsed.has("--quick"),
            spec: parsed.value("--spec").map(str::to_string),
            mode,
        })
    }

    /// The mode's short name (as printed in usage and error messages).
    pub fn mode_name(&self) -> &'static str {
        self.mode.name()
    }
}

/// Reject every flag of `flags` that is present, naming the selected mode.
fn reject_all(
    parsed: &ParsedArgs,
    mode: &'static str,
    flags: &[&'static str],
) -> Result<(), CliError> {
    for &name in flags {
        if parsed.has(name) {
            return Err(CliError::NotInMode { flag: name, mode });
        }
    }
    Ok(())
}

/// Parse a duration-in-seconds flag that must be positive and finite.
/// Mirrors the spec layer's `distrib.lease_ttl_s` validation
/// (`ConfigError::NonPositive`) at the flag boundary.
fn positive_seconds(parsed: &ParsedArgs, flag: &'static str) -> Result<Option<f64>, CliError> {
    match parsed.parsed::<f64>(flag, "a positive number of seconds")? {
        None => Ok(None),
        Some(v) if v > 0.0 && v.is_finite() => Ok(Some(v)),
        Some(_) => Err(CliError::InvalidValue {
            flag,
            value: parsed.value(flag).unwrap_or_default().to_string(),
            expected: "a positive number of seconds",
        }),
    }
}

/// Validator for count flags that must be ≥ 1.
fn require_at_least_one(flag: &'static str) -> impl Fn(usize) -> Result<usize, CliError> {
    move |n| {
        if n >= 1 {
            Ok(n)
        } else {
            Err(CliError::InvalidValue {
                flag,
                value: "0".to_string(),
                expected: "an integer >= 1",
            })
        }
    }
}

// ---------------------------------------------------------------------------
// caem-serve: daemon and client modes of the experiment service.
// ---------------------------------------------------------------------------

/// The `caem-serve` binary's flag vocabulary.
pub const SERVE_FLAGS: &[FlagDef] = &[
    option("--listen"),
    option("--shards"),
    option("--lease-ttl"),
    option("--heartbeat"),
    option("--submit"),
    option("--addr"),
    flag("--quick"),
    option("--seed"),
    flag("--status"),
    flag("--fetch"),
    option("--out"),
    option("--timeout"),
];

/// The mutually exclusive modes of the `caem-serve` binary.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeMode {
    /// Run the daemon: listen for workers and clients.
    Daemon {
        /// Listen address (`host:port`).
        listen: String,
        /// Shards per submitted grid (default 8, clamped to job count).
        shards: Option<usize>,
        /// Shard-lease TTL override in seconds (wins over spec `distrib`).
        lease_ttl: Option<f64>,
        /// Heartbeat-interval override in seconds.
        heartbeat: Option<f64>,
    },
    /// Submit a grid-spec file to a daemon.
    Submit {
        /// Daemon address.
        addr: String,
        /// Path of the grid-spec JSON document.
        file: String,
        /// Resolve the spec in quick mode.
        quick: bool,
        /// Default seed when the document pins no `base_seed`.
        seed: Option<u64>,
    },
    /// Print a daemon's progress snapshot.
    Status {
        /// Daemon address.
        addr: String,
    },
    /// Fetch the most recent completed report.
    Fetch {
        /// Daemon address.
        addr: String,
        /// Write the report here instead of stdout.
        out: Option<String>,
        /// Give up after this many seconds (default 60).
        timeout: Option<f64>,
    },
}

/// The `caem-serve` binary's parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCli {
    /// What this invocation does.
    pub mode: ServeMode,
}

impl ServeCli {
    /// Parse the process command line (skipping the program name).
    pub fn from_env() -> Result<Self, CliError> {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse an explicit argument list (testable entry point).
    pub fn from_args<I>(args: I) -> Result<Self, CliError>
    where
        I: IntoIterator<Item = String>,
    {
        let parsed = ParsedArgs::lex(args, SERVE_FLAGS)?;
        if let Some(extra) = parsed.positionals.first() {
            return Err(CliError::UnexpectedPositional(extra.clone()));
        }
        let selectors: [(&'static str, bool); 4] = [
            ("--listen", parsed.has("--listen")),
            ("--submit", parsed.has("--submit")),
            ("--status", parsed.has("--status")),
            ("--fetch", parsed.has("--fetch")),
        ];
        let mut selected: Option<&'static str> = None;
        for (name, present) in selectors {
            if present {
                if let Some(earlier) = selected {
                    return Err(CliError::ModeConflict(earlier, name));
                }
                selected = Some(name);
            }
        }
        let addr_for = |mode: &'static str| -> Result<String, CliError> {
            parsed
                .value("--addr")
                .map(str::to_string)
                .ok_or(CliError::Requires {
                    flag: mode,
                    requires: "--addr",
                })
        };
        let mode = match selected {
            Some("--listen") => {
                reject_all(
                    &parsed,
                    "daemon",
                    &["--addr", "--quick", "--seed", "--out", "--timeout"],
                )?;
                ServeMode::Daemon {
                    listen: parsed
                        .value("--listen")
                        .expect("lexer enforced the value")
                        .to_string(),
                    shards: parsed
                        .parsed("--shards", "an integer >= 1")?
                        .map(require_at_least_one("--shards"))
                        .transpose()?,
                    lease_ttl: positive_seconds(&parsed, "--lease-ttl")?,
                    heartbeat: positive_seconds(&parsed, "--heartbeat")?,
                }
            }
            Some("--submit") => {
                reject_all(
                    &parsed,
                    "submit",
                    &[
                        "--shards",
                        "--lease-ttl",
                        "--heartbeat",
                        "--out",
                        "--timeout",
                    ],
                )?;
                ServeMode::Submit {
                    addr: addr_for("--submit")?,
                    file: parsed
                        .value("--submit")
                        .expect("lexer enforced the value")
                        .to_string(),
                    quick: parsed.has("--quick"),
                    seed: parsed.parsed("--seed", "an unsigned integer seed")?,
                }
            }
            Some("--status") => {
                reject_all(
                    &parsed,
                    "status",
                    &[
                        "--shards",
                        "--lease-ttl",
                        "--heartbeat",
                        "--quick",
                        "--seed",
                        "--out",
                        "--timeout",
                    ],
                )?;
                ServeMode::Status {
                    addr: addr_for("--status")?,
                }
            }
            Some("--fetch") => {
                reject_all(
                    &parsed,
                    "fetch",
                    &[
                        "--shards",
                        "--lease-ttl",
                        "--heartbeat",
                        "--quick",
                        "--seed",
                    ],
                )?;
                ServeMode::Fetch {
                    addr: addr_for("--fetch")?,
                    out: parsed.value("--out").map(str::to_string),
                    timeout: positive_seconds(&parsed, "--timeout")?,
                }
            }
            _ => {
                return Err(CliError::Requires {
                    flag: "caem-serve",
                    requires: "one of --listen, --submit, --status, --fetch",
                })
            }
        };
        Ok(ServeCli { mode })
    }
}

// ---------------------------------------------------------------------------
// Figure binaries: positional seed + --quick, nothing else.
// ---------------------------------------------------------------------------

/// The figure/netperf/ablation binaries' command line: an optional
/// positional seed and `--quick`.  Anything else — in particular a
/// misspelled flag — is a typed error instead of being silently ignored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigureArgs {
    /// The seed (defaults to [`crate::DEFAULT_SEED`]).
    pub seed: u64,
    /// Reduced smoke scenario.
    pub quick: bool,
}

impl FigureArgs {
    /// Parse an explicit argument list (testable entry point).
    pub fn from_args<I>(args: I) -> Result<Self, CliError>
    where
        I: IntoIterator<Item = String>,
    {
        let parsed = ParsedArgs::lex(args, &[flag("--quick")])?;
        let mut positionals = parsed.positionals.iter();
        let seed = match positionals.next() {
            None => crate::DEFAULT_SEED,
            Some(text) => text.parse().map_err(|_| CliError::InvalidValue {
                flag: "<seed>",
                value: text.clone(),
                expected: "an unsigned integer seed",
            })?,
        };
        if let Some(extra) = positionals.next() {
            return Err(CliError::UnexpectedPositional(extra.clone()));
        }
        Ok(FigureArgs {
            seed,
            quick: parsed.has("--quick"),
        })
    }

    /// Parse the process command line, printing the error plus a usage line
    /// and exiting 2 on a mistake.
    pub fn from_env_or_exit(binary: &str) -> Self {
        Self::from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!("error: {e}\nusage: {binary} [seed] [--quick]");
            std::process::exit(2);
        })
    }
}

// ---------------------------------------------------------------------------
// netperf: the figure vocabulary plus the sink-saturation mode.
// ---------------------------------------------------------------------------

/// The `netperf` binary's command line: the figure vocabulary
/// (`[seed] [--quick]`) plus `--saturate`, which switches the binary to the
/// record-sink saturation benchmark (mutex baseline vs the lock-free
/// collector, hammered from N threads).  `--threads` caps the sweep's top
/// thread count and is only meaningful there.
///
/// The scenario sweep additionally takes `--repeats N` (rten-bench-style
/// min/mean/median/max/var timing statistics per scenario), `--profile`
/// (per-subsystem time-breakdown tables and the `time_breakdown` JSON
/// section), `--trace-out FILE` (Chrome trace-event export of the first
/// repeat of the first scenario; requires `--profile`) and
/// `--check-budget FILE` (the CI regression gate against a committed
/// per-subsystem budget baseline; requires `--profile`).
#[derive(Debug, Clone, PartialEq)]
pub struct NetperfArgs {
    /// The seed (defaults to [`crate::DEFAULT_SEED`]).
    pub seed: u64,
    /// Reduced smoke scenario.
    pub quick: bool,
    /// Run the sink-saturation benchmark instead of the scenario sweep.
    pub saturate: bool,
    /// Top thread count of the saturation sweep (defaults per mode).
    pub threads: Option<usize>,
    /// Enable the time-breakdown profiler over the scenario sweep.
    pub profile: bool,
    /// Timed repeats per scenario (defaults to 1; the simulation output is
    /// identical across repeats — only the wall clocks differ).
    pub repeats: Option<usize>,
    /// Write a Chrome trace-event JSON of one run here (needs `--profile`).
    pub trace_out: Option<String>,
    /// Fail (exit 1) when a subsystem's mean share regresses past the noise
    /// band of this budget file (needs `--profile`).
    pub check_budget: Option<String>,
}

impl NetperfArgs {
    /// Parse an explicit argument list (testable entry point).
    pub fn from_args<I>(args: I) -> Result<Self, CliError>
    where
        I: IntoIterator<Item = String>,
    {
        let parsed = ParsedArgs::lex(
            args,
            &[
                flag("--quick"),
                flag("--saturate"),
                option("--threads"),
                flag("--profile"),
                option("--repeats"),
                option("--trace-out"),
                option("--check-budget"),
            ],
        )?;
        let mut positionals = parsed.positionals.iter();
        let seed = match positionals.next() {
            None => crate::DEFAULT_SEED,
            Some(text) => text.parse().map_err(|_| CliError::InvalidValue {
                flag: "<seed>",
                value: text.clone(),
                expected: "an unsigned integer seed",
            })?,
        };
        if let Some(extra) = positionals.next() {
            return Err(CliError::UnexpectedPositional(extra.clone()));
        }
        let saturate = parsed.has("--saturate");
        let threads = parsed.parsed::<usize>("--threads", "a positive thread count")?;
        if let Some(n) = threads {
            if n == 0 {
                return Err(CliError::InvalidValue {
                    flag: "--threads",
                    value: "0".into(),
                    expected: "a positive thread count",
                });
            }
            if !saturate {
                return Err(CliError::Requires {
                    flag: "--threads",
                    requires: "--saturate",
                });
            }
        }
        let profile = parsed.has("--profile");
        let repeats = parsed.parsed::<usize>("--repeats", "an integer >= 1")?;
        if repeats == Some(0) {
            return Err(CliError::InvalidValue {
                flag: "--repeats",
                value: "0".into(),
                expected: "an integer >= 1",
            });
        }
        // The profiling vocabulary belongs to the scenario sweep; under
        // --saturate each of these would be silently ignored.
        if saturate {
            for (name, present) in [
                ("--profile", profile),
                ("--repeats", repeats.is_some()),
                ("--trace-out", parsed.has("--trace-out")),
                ("--check-budget", parsed.has("--check-budget")),
            ] {
                if present {
                    return Err(CliError::NotInMode {
                        flag: name,
                        mode: "saturate",
                    });
                }
            }
        }
        for dependent in ["--trace-out", "--check-budget"] {
            if parsed.has(dependent) && !profile {
                return Err(CliError::Requires {
                    flag: dependent,
                    requires: "--profile",
                });
            }
        }
        Ok(NetperfArgs {
            seed,
            quick: parsed.has("--quick"),
            saturate,
            threads,
            profile,
            repeats,
            trace_out: parsed.value("--trace-out").map(str::to_string),
            check_budget: parsed.value("--check-budget").map(str::to_string),
        })
    }

    /// Parse the process command line, printing the error plus a usage line
    /// and exiting 2 on a mistake.
    pub fn from_env_or_exit(binary: &str) -> Self {
        Self::from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!(
                "error: {e}\nusage: {binary} [seed] [--quick] [--repeats N] \
                 [--profile [--trace-out FILE] [--check-budget FILE]] \
                 [--saturate [--threads N]]"
            );
            std::process::exit(2);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn parse(list: &[&str]) -> Result<ExperimentCli, CliError> {
        ExperimentCli::from_args(args(list))
    }

    #[test]
    fn plain_run_parses_to_local_backend() {
        let cli = parse(&["--quick"]).unwrap();
        assert!(cli.quick);
        assert_eq!(cli.seed, None);
        assert_eq!(
            cli.mode,
            ExperimentMode::Run(RunArgs {
                resume: false,
                backend: RunBackend::Local { store: None },
                sequential: None,
                strict: false,
                fsync: false,
                lease_ttl: None,
                chaos: None,
                profile: false,
            })
        );
        assert_eq!(cli.mode_name(), "run");
    }

    #[test]
    fn profile_flag_parses_in_run_mode_only() {
        match parse(&["--quick", "--profile"]).unwrap().mode {
            ExperimentMode::Run(run) => assert!(run.profile),
            other => panic!("expected run mode, got {other:?}"),
        }
        assert_eq!(
            parse(&["--reaggregate", "--profile"]),
            Err(CliError::NotInMode {
                flag: "--profile",
                mode: "reaggregate"
            })
        );
        assert_eq!(
            parse(&[
                "--worker-shard",
                "/tmp/g",
                "--store",
                "w.jsonl",
                "--profile"
            ]),
            Err(CliError::NotInMode {
                flag: "--profile",
                mode: "worker"
            })
        );
        assert_eq!(
            parse(&["--list-scenarios", "--profile"]),
            Err(CliError::NotInMode {
                flag: "--profile",
                mode: "list-scenarios"
            })
        );
    }

    #[test]
    fn equals_and_space_forms_are_equivalent() {
        let a = parse(&["--workers", "3", "--distrib-dir", "/tmp/g"]).unwrap();
        let b = parse(&["--workers=3", "--distrib-dir=/tmp/g"]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.mode_name(), "distributed");
        match a.mode {
            ExperimentMode::Run(run) => assert_eq!(
                run.backend,
                RunBackend::Distributed {
                    workers: 3,
                    dir: Some("/tmp/g".to_string())
                }
            ),
            other => panic!("expected run mode, got {other:?}"),
        }
    }

    #[test]
    fn unknown_and_misspelled_flags_are_rejected() {
        assert_eq!(
            parse(&["--quik"]),
            Err(CliError::UnknownFlag("--quik".to_string()))
        );
        assert_eq!(
            parse(&["--replicats=4"]),
            Err(CliError::UnknownFlag("--replicats".to_string()))
        );
    }

    #[test]
    fn a_following_flag_is_not_a_value() {
        assert_eq!(
            parse(&["--store", "--resume"]),
            Err(CliError::MissingValue("--store"))
        );
    }

    #[test]
    fn contradictory_combinations_are_typed_errors() {
        assert_eq!(
            parse(&["--reaggregate", "--workers", "2"]),
            Err(CliError::NotInMode {
                flag: "--workers",
                mode: "reaggregate"
            })
        );
        assert_eq!(
            parse(&["--workers", "2", "--store", "s.jsonl"]),
            Err(CliError::NotInMode {
                flag: "--store",
                mode: "distributed"
            })
        );
        assert_eq!(
            parse(&["--worker-shard", "/tmp/g"]),
            Err(CliError::Requires {
                flag: "--worker-shard",
                requires: "--store"
            })
        );
        assert_eq!(
            parse(&["--distrib-dir", "/tmp/g"]),
            Err(CliError::Requires {
                flag: "--distrib-dir",
                requires: "--workers"
            })
        );
        assert_eq!(
            parse(&["--ci-metric", "collisions"]),
            Err(CliError::Requires {
                flag: "--ci-metric",
                requires: "--target-ci"
            })
        );
        assert_eq!(
            parse(&["--reaggregate", "--print-spec"]),
            Err(CliError::ModeConflict("--reaggregate", "--print-spec"))
        );
    }

    #[test]
    fn worker_mode_rejects_grid_shaping_flags() {
        let cli = parse(&["--worker-shard", "/tmp/g", "--store", "w.jsonl"]).unwrap();
        assert_eq!(
            cli.mode,
            ExperimentMode::Worker {
                dir: "/tmp/g".to_string(),
                store: "w.jsonl".to_string(),
                lease_ttl: None,
            }
        );
        assert_eq!(
            parse(&["--worker-shard", "/tmp/g", "--store", "w.jsonl", "--quick"]),
            Err(CliError::NotInMode {
                flag: "--quick",
                mode: "worker"
            })
        );
        // A positional seed would be silently ignored by a manifest-driven
        // worker, so it is rejected like the flags.
        assert_eq!(
            parse(&["999", "--worker-shard", "/tmp/g", "--store", "w.jsonl"]),
            Err(CliError::UnexpectedPositional("999".to_string()))
        );
    }

    #[test]
    fn zero_workers_is_an_invalid_value() {
        assert_eq!(
            parse(&["--workers", "0"]),
            Err(CliError::InvalidValue {
                flag: "--workers",
                value: "0".to_string(),
                expected: "an integer >= 1"
            })
        );
    }

    #[test]
    fn sequential_run_collects_its_knobs() {
        let cli = parse(&[
            "--target-ci=0.01",
            "--ci-metric",
            "collisions",
            "--max-replicates=24",
            "--resume",
        ])
        .unwrap();
        match cli.mode {
            ExperimentMode::Run(run) => {
                assert!(run.resume);
                assert_eq!(
                    run.sequential,
                    Some(SequentialArgs {
                        target_half_width: 0.01,
                        metric: Some("collisions".to_string()),
                        max_replicates: Some(24),
                    })
                );
            }
            other => panic!("expected run mode, got {other:?}"),
        }
    }

    #[test]
    fn positional_seed_and_spec_file_parse() {
        let cli = parse(&["12345", "--spec", "specs/zoo.json"]).unwrap();
        assert_eq!(cli.seed, Some(12345));
        assert_eq!(cli.spec.as_deref(), Some("specs/zoo.json"));
        assert_eq!(
            parse(&["12345", "extra"]),
            Err(CliError::UnexpectedPositional("extra".to_string()))
        );
    }

    #[test]
    fn chaos_parses_with_a_distributed_backend_only() {
        let cli = parse(&[
            "--quick",
            "--workers=2",
            "--chaos",
            "7:torn+skew",
            "--strict",
        ])
        .unwrap();
        match cli.mode {
            ExperimentMode::Run(run) => {
                assert!(run.strict);
                assert!(!run.fsync);
                let chaos = run.chaos.expect("chaos plan parsed");
                assert_eq!(chaos.seed, 7);
                assert_eq!(chaos.env_string(), "7:torn+skew");
            }
            other => panic!("expected run mode, got {other:?}"),
        }
        assert_eq!(
            parse(&["--chaos", "7:torn"]),
            Err(CliError::Requires {
                flag: "--chaos",
                requires: "--workers"
            })
        );
        assert!(matches!(
            parse(&["--workers=2", "--chaos", "7:bogus"]),
            Err(CliError::InvalidValue {
                flag: "--chaos",
                ..
            })
        ));
        // Robustness flags are meaningless off the run path.
        assert_eq!(
            parse(&["--reaggregate", "--strict"]),
            Err(CliError::NotInMode {
                flag: "--strict",
                mode: "reaggregate"
            })
        );
        assert_eq!(
            parse(&["--list-scenarios", "--fsync"]),
            Err(CliError::NotInMode {
                flag: "--fsync",
                mode: "list-scenarios"
            })
        );
    }

    #[test]
    fn fsync_applies_to_local_and_distributed_runs() {
        for argv in [&["--fsync"][..], &["--fsync", "--workers=2"][..]] {
            match parse(argv).unwrap().mode {
                ExperimentMode::Run(run) => assert!(run.fsync),
                other => panic!("expected run mode, got {other:?}"),
            }
        }
    }

    #[test]
    fn socket_worker_mode_parses_and_rejects_run_flags() {
        let cli = parse(&["--connect", "127.0.0.1:7171"]).unwrap();
        assert_eq!(
            cli.mode,
            ExperimentMode::SocketWorker {
                addr: "127.0.0.1:7171".to_string(),
                protocol: None,
                expect_hash: None,
            }
        );
        assert_eq!(cli.mode_name(), "socket-worker");
        let cli = parse(&[
            "--connect=127.0.0.1:7171",
            "--protocol=99",
            "--expect-hash=42",
        ])
        .unwrap();
        assert_eq!(
            cli.mode,
            ExperimentMode::SocketWorker {
                addr: "127.0.0.1:7171".to_string(),
                protocol: Some(99),
                expect_hash: Some(42),
            }
        );
        assert_eq!(
            parse(&["--connect", "127.0.0.1:7171", "--quick"]),
            Err(CliError::NotInMode {
                flag: "--quick",
                mode: "socket-worker"
            })
        );
        assert_eq!(
            parse(&["--connect", "127.0.0.1:7171", "--worker-shard", "/tmp/g"]),
            Err(CliError::ModeConflict("--worker-shard", "--connect"))
        );
        // The socket vocabulary is meaningless to the file-based modes.
        assert_eq!(
            parse(&["--protocol", "1"]),
            Err(CliError::NotInMode {
                flag: "--protocol",
                mode: "run"
            })
        );
    }

    #[test]
    fn lease_ttl_parses_on_the_distributed_paths_only() {
        match parse(&["--workers=2", "--lease-ttl=0.5"]).unwrap().mode {
            ExperimentMode::Run(run) => assert_eq!(run.lease_ttl, Some(0.5)),
            other => panic!("expected run mode, got {other:?}"),
        }
        match parse(&[
            "--worker-shard",
            "/tmp/g",
            "--store",
            "w.jsonl",
            "--lease-ttl=2",
        ])
        .unwrap()
        .mode
        {
            ExperimentMode::Worker { lease_ttl, .. } => assert_eq!(lease_ttl, Some(2.0)),
            other => panic!("expected worker mode, got {other:?}"),
        }
        assert_eq!(
            parse(&["--lease-ttl=30"]),
            Err(CliError::Requires {
                flag: "--lease-ttl",
                requires: "--workers"
            })
        );
        // Non-positive TTLs are typed errors, mirroring the spec layer's
        // NonPositive on distrib.lease_ttl_s.
        assert!(matches!(
            parse(&["--workers=2", "--lease-ttl=0"]),
            Err(CliError::InvalidValue {
                flag: "--lease-ttl",
                ..
            })
        ));
        assert!(matches!(
            parse(&["--workers=2", "--lease-ttl=-5"]),
            Err(CliError::InvalidValue {
                flag: "--lease-ttl",
                ..
            })
        ));
    }

    #[test]
    fn serve_cli_parses_its_four_modes() {
        let daemon = ServeCli::from_args(args(&[
            "--listen",
            "127.0.0.1:7171",
            "--shards=4",
            "--lease-ttl=1.5",
        ]))
        .unwrap();
        assert_eq!(
            daemon.mode,
            ServeMode::Daemon {
                listen: "127.0.0.1:7171".to_string(),
                shards: Some(4),
                lease_ttl: Some(1.5),
                heartbeat: None,
            }
        );
        let submit = ServeCli::from_args(args(&[
            "--submit",
            "specs/zoo.json",
            "--addr",
            "127.0.0.1:7171",
            "--quick",
            "--seed=7",
        ]))
        .unwrap();
        assert_eq!(
            submit.mode,
            ServeMode::Submit {
                addr: "127.0.0.1:7171".to_string(),
                file: "specs/zoo.json".to_string(),
                quick: true,
                seed: Some(7),
            }
        );
        let status = ServeCli::from_args(args(&["--status", "--addr=127.0.0.1:7171"])).unwrap();
        assert_eq!(
            status.mode,
            ServeMode::Status {
                addr: "127.0.0.1:7171".to_string()
            }
        );
        let fetch = ServeCli::from_args(args(&[
            "--fetch",
            "--addr=127.0.0.1:7171",
            "--out",
            "/tmp/report.json",
            "--timeout=120",
        ]))
        .unwrap();
        assert_eq!(
            fetch.mode,
            ServeMode::Fetch {
                addr: "127.0.0.1:7171".to_string(),
                out: Some("/tmp/report.json".to_string()),
                timeout: Some(120.0),
            }
        );
    }

    #[test]
    fn serve_cli_rejects_cross_mode_and_missing_flags() {
        assert_eq!(
            ServeCli::from_args(args(&["--status"])),
            Err(CliError::Requires {
                flag: "--status",
                requires: "--addr"
            })
        );
        assert_eq!(
            ServeCli::from_args(args(&["--listen", "x:1", "--fetch"])),
            Err(CliError::ModeConflict("--listen", "--fetch"))
        );
        assert_eq!(
            ServeCli::from_args(args(&["--listen", "x:1", "--quick"])),
            Err(CliError::NotInMode {
                flag: "--quick",
                mode: "daemon"
            })
        );
        assert_eq!(
            ServeCli::from_args(args(&[])),
            Err(CliError::Requires {
                flag: "caem-serve",
                requires: "one of --listen, --submit, --status, --fetch"
            })
        );
        assert!(matches!(
            ServeCli::from_args(args(&["--listen", "x:1", "--heartbeat=0"])),
            Err(CliError::InvalidValue {
                flag: "--heartbeat",
                ..
            })
        ));
    }

    #[test]
    fn duplicate_flags_are_rejected() {
        assert_eq!(
            parse(&["--quick", "--quick"]),
            Err(CliError::DuplicateFlag("--quick"))
        );
    }

    #[test]
    fn figure_args_parse_seed_and_quick_only() {
        let fa = FigureArgs::from_args(args(&["777", "--quick"])).unwrap();
        assert_eq!(fa.seed, 777);
        assert!(fa.quick);
        assert_eq!(
            FigureArgs::from_args(args(&[])).unwrap().seed,
            crate::DEFAULT_SEED
        );
        assert_eq!(
            FigureArgs::from_args(args(&["--resume"])),
            Err(CliError::UnknownFlag("--resume".to_string()))
        );
    }

    #[test]
    fn netperf_args_parse_saturate_and_threads() {
        let na =
            NetperfArgs::from_args(args(&["--quick", "--saturate", "--threads", "16"])).unwrap();
        assert!(na.quick && na.saturate);
        assert_eq!(na.threads, Some(16));
        assert_eq!(na.seed, crate::DEFAULT_SEED);
        // The plain figure form still parses.
        let na = NetperfArgs::from_args(args(&["777"])).unwrap();
        assert_eq!((na.seed, na.saturate, na.threads), (777, false, None));
        // --threads only means something under --saturate.
        assert_eq!(
            NetperfArgs::from_args(args(&["--threads", "4"])),
            Err(CliError::Requires {
                flag: "--threads",
                requires: "--saturate"
            })
        );
        assert!(matches!(
            NetperfArgs::from_args(args(&["--saturate", "--threads", "0"])),
            Err(CliError::InvalidValue {
                flag: "--threads",
                ..
            })
        ));
        // Misspellings stay typed errors.
        assert_eq!(
            NetperfArgs::from_args(args(&["--saturat"])),
            Err(CliError::UnknownFlag("--saturat".to_string()))
        );
    }

    #[test]
    fn netperf_args_parse_profile_vocabulary() {
        let na = NetperfArgs::from_args(args(&[
            "--quick",
            "--profile",
            "--repeats",
            "5",
            "--trace-out",
            "/tmp/trace.json",
            "--check-budget",
            "specs/prof_budget.json",
        ]))
        .unwrap();
        assert!(na.profile);
        assert_eq!(na.repeats, Some(5));
        assert_eq!(na.trace_out.as_deref(), Some("/tmp/trace.json"));
        assert_eq!(na.check_budget.as_deref(), Some("specs/prof_budget.json"));
        // --repeats stands alone (timing stats without the profiler).
        let na = NetperfArgs::from_args(args(&["--repeats=3"])).unwrap();
        assert_eq!(na.repeats, Some(3));
        assert!(!na.profile);
        assert!(matches!(
            NetperfArgs::from_args(args(&["--repeats", "0"])),
            Err(CliError::InvalidValue {
                flag: "--repeats",
                ..
            })
        ));
        // Trace export and the budget gate are meaningless without profiling.
        assert_eq!(
            NetperfArgs::from_args(args(&["--trace-out", "/tmp/t.json"])),
            Err(CliError::Requires {
                flag: "--trace-out",
                requires: "--profile"
            })
        );
        assert_eq!(
            NetperfArgs::from_args(args(&["--check-budget", "b.json"])),
            Err(CliError::Requires {
                flag: "--check-budget",
                requires: "--profile"
            })
        );
        // The whole profiling vocabulary is a scenario-sweep affair.
        for extra in [
            vec!["--profile"],
            vec!["--repeats", "2"],
            vec!["--profile", "--trace-out", "/tmp/t.json"],
            vec!["--profile", "--check-budget", "b.json"],
        ] {
            let mut argv = vec!["--saturate"];
            argv.extend(extra);
            assert!(matches!(
                NetperfArgs::from_args(args(&argv)),
                Err(CliError::NotInMode {
                    mode: "saturate",
                    ..
                })
            ));
        }
    }
}
