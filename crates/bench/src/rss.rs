//! Resident-set-size probes for the soak and scaling harnesses.
//!
//! Reads `/proc/self/status` (Linux): `VmRSS` is the current resident set,
//! `VmHWM` the high-water mark over the process lifetime.  On platforms
//! without procfs both probes return `None` and ceiling assertions are
//! skipped rather than failed.

/// Current resident set size in MiB, if the platform exposes it.
pub fn current_rss_mb() -> Option<f64> {
    proc_status_kb("VmRSS:").map(|kb| kb / 1024.0)
}

/// Peak resident set size (high-water mark) in MiB, if the platform
/// exposes it.
pub fn peak_rss_mb() -> Option<f64> {
    proc_status_kb("VmHWM:").map(|kb| kb / 1024.0)
}

/// Parse one `key:  <n> kB` line out of `/proc/self/status`.
fn proc_status_kb(key: &str) -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let number = rest.trim().trim_end_matches("kB").trim();
            return number.parse::<f64>().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn probes_report_plausible_sizes_on_linux() {
        let current = current_rss_mb().expect("procfs available on linux");
        let peak = peak_rss_mb().expect("procfs available on linux");
        // A test process occupies at least a few hundred KiB and (far) less
        // than a terabyte; the peak can never undercut the present.
        assert!(current > 0.1, "current rss {current} MiB");
        assert!(peak + 1e-9 >= current, "peak {peak} < current {current}");
        assert!(peak < 1_000_000.0, "peak {peak} MiB implausible");
    }
}
