//! # caem-bench
//!
//! The experiment harness: shared helpers used by the `fig8` … `fig12`,
//! `netperf` and `ablation` binaries that regenerate every figure of the
//! paper's evaluation (Section IV), plus the Criterion micro-benchmarks.
//!
//! Run the full figure suite with, e.g.:
//!
//! ```bash
//! cargo run -p caem-bench --release --bin fig8
//! cargo run -p caem-bench --release --bin fig10
//! ```
//!
//! Every binary prints a plain-text table, a CSV block and the markdown table
//! recorded in `EXPERIMENTS.md`.  Seeds are fixed so the output is
//! reproducible; pass a different seed as the first CLI argument to check
//! robustness.

use caem::policy::PolicyKind;
use caem_metrics::report::Table;
use caem_simcore::time::Duration;
use caem_wsnsim::experiment::ScenarioSpec;
use caem_wsnsim::{ScenarioConfig, Topology};

pub mod cli;
pub mod profrpt;
pub mod rss;

pub use cli::{ExperimentCli, ExperimentMode, FigureArgs, NetperfArgs};
pub use profrpt::{repeat_stats, time_breakdown_json, ProfBudget, RepeatStats};

/// The seed used by all figures unless overridden on the command line.
pub const DEFAULT_SEED: u64 = 20050612;

/// Human label used in figure output for each protocol, matching the paper's
/// legend.
pub fn policy_label(policy: PolicyKind) -> &'static str {
    match policy {
        PolicyKind::PureLeach => "pure_LEACH",
        PolicyKind::Scheme1Adaptive => "CAEM_scheme1_adaptive",
        PolicyKind::Scheme2Fixed => "CAEM_scheme2_fixed",
    }
}

/// Shrink a scenario for `--quick` runs.
pub fn apply_quick(mut cfg: ScenarioConfig, quick: bool) -> ScenarioConfig {
    if quick {
        cfg.node_count = 30;
        cfg.duration = caem_simcore::time::Duration::from_secs(120);
    }
    cfg
}

/// The code-defined scenario zoo the `experiment` binary runs when no
/// `--spec` file is given: the diversity grid over deployments,
/// heterogeneous batteries, churn and diurnal traffic.
///
/// The committed `specs/zoo.json` must resolve to exactly these scenarios
/// (`tests/spec_roundtrip.rs` pins config-hash equality in both full and
/// quick mode), so the declarative and the code-built grid are
/// interchangeable byte-for-byte.
pub fn zoo_scenarios(seed: u64, quick: bool) -> Vec<ScenarioSpec> {
    let horizon = Duration::from_secs(if quick { 120 } else { 400 });
    let base = |rate: f64| {
        apply_quick(
            ScenarioConfig::paper_default(PolicyKind::PureLeach, rate, seed),
            quick,
        )
        .with_duration(horizon)
    };
    vec![
        ScenarioSpec::new("uniform_5pps", base(5.0)),
        ScenarioSpec::new(
            "grid_5pps",
            base(5.0).with_topology(Topology::Grid { jitter_m: 3.0 }),
        ),
        ScenarioSpec::new(
            "hotspots_10pps",
            base(10.0).with_topology(Topology::GaussianClusters {
                clusters: 4,
                sigma_m: 12.0,
            }),
        ),
        ScenarioSpec::new(
            "corridor_10pps",
            base(10.0).with_topology(Topology::Corridor {
                width_fraction: 0.25,
            }),
        ),
        ScenarioSpec::new(
            "heterogeneous_churn_5pps",
            base(5.0)
                .with_energy_spread(0.4)
                .with_churn_mttf_s(if quick { 1_200.0 } else { 4_000.0 }),
        ),
        // Time-varying load: two day/night cycles over the horizon, rate
        // swinging between 0.2x and 1.8x the 10 pkt/s mean.
        ScenarioSpec::new(
            "diurnal_10pps",
            base(10.0).with_diurnal_traffic(if quick { 60.0 } else { 200.0 }, 0.8),
        ),
    ]
}

/// The number of replicates the zoo grid runs per cell.
pub fn zoo_replicates(quick: bool) -> usize {
    if quick {
        5
    } else {
        10
    }
}

/// Print a table in all three formats the harness emits.
pub fn emit(table: &Table) {
    println!("{}", table.to_text());
    println!("--- CSV ---\n{}", table.to_csv());
    println!("--- Markdown ---\n{}", table.to_markdown());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels = [
            policy_label(PolicyKind::PureLeach),
            policy_label(PolicyKind::Scheme1Adaptive),
            policy_label(PolicyKind::Scheme2Fixed),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn zoo_scenarios_are_distinctly_labelled_in_both_modes() {
        for quick in [false, true] {
            let zoo = zoo_scenarios(DEFAULT_SEED, quick);
            assert_eq!(zoo.len(), 6);
            let labels: std::collections::HashSet<_> =
                zoo.iter().map(|s| s.label.clone()).collect();
            assert_eq!(labels.len(), zoo.len(), "labels must be unique");
            for s in &zoo {
                s.base.validate().expect("zoo scenarios are valid");
            }
        }
    }

    #[test]
    fn quick_shrinks_scenario() {
        let cfg = ScenarioConfig::paper_default(PolicyKind::PureLeach, 5.0, 1);
        let q = apply_quick(cfg.clone(), true);
        assert!(q.node_count < cfg.node_count);
        let same = apply_quick(cfg.clone(), false);
        assert_eq!(same.node_count, cfg.node_count);
    }
}
