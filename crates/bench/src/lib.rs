//! # caem-bench
//!
//! The experiment harness: shared helpers used by the `fig8` … `fig12`,
//! `netperf` and `ablation` binaries that regenerate every figure of the
//! paper's evaluation (Section IV), plus the Criterion micro-benchmarks.
//!
//! Run the full figure suite with, e.g.:
//!
//! ```bash
//! cargo run -p caem-bench --release --bin fig8
//! cargo run -p caem-bench --release --bin fig10
//! ```
//!
//! Every binary prints a plain-text table, a CSV block and the markdown table
//! recorded in `EXPERIMENTS.md`.  Seeds are fixed so the output is
//! reproducible; pass a different seed as the first CLI argument to check
//! robustness.

use caem::policy::PolicyKind;
use caem_metrics::report::Table;
use caem_wsnsim::ScenarioConfig;

/// The seed used by all figures unless overridden on the command line.
pub const DEFAULT_SEED: u64 = 20050612;

/// Human label used in figure output for each protocol, matching the paper's
/// legend.
pub fn policy_label(policy: PolicyKind) -> &'static str {
    match policy {
        PolicyKind::PureLeach => "pure_LEACH",
        PolicyKind::Scheme1Adaptive => "CAEM_scheme1_adaptive",
        PolicyKind::Scheme2Fixed => "CAEM_scheme2_fixed",
    }
}

/// Parse the optional seed argument given to a figure binary.
pub fn seed_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// True when the given `--flag` is present on the command line, either
/// bare (`--flag`, `--flag value`) or in equals form (`--flag=value`) —
/// both shapes [`flag_value`] accepts must count as "present", otherwise a
/// presence check and a value lookup for the same flag could disagree.
pub fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name || (a.starts_with(name) && a[name.len()..].starts_with('=')))
}

/// The value of a `--flag value` or `--flag=value` command-line option.
///
/// A following `--other` flag is **not** treated as the value (so
/// `--store --resume` reads as `--store` with its value missing, not as a
/// store file literally named `--resume`); callers that require a value
/// should `expect` it so the mistake fails loudly.
pub fn flag_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == name {
            return args.next().filter(|v| !v.starts_with("--"));
        }
        if let Some(rest) = arg.strip_prefix(name) {
            if let Some(value) = rest.strip_prefix('=') {
                return Some(value.to_string());
            }
        }
    }
    None
}

/// The first violated flag rule, as a ready-to-print error message, or
/// `None` when the combination is coherent.
///
/// * `conflicts` — pairs that must not appear together (checked both ways).
/// * `requires` — `(flag, dependency)` pairs: `flag` is rejected unless its
///   `dependency` is also present.
///
/// `present` reports whether a flag was given; pure so binaries can feed it
/// from `has_flag` while tests feed it from a fixture.  Binaries call this
/// **before** acting on any flag, so a contradictory command line fails
/// loudly instead of silently ignoring one of the flags.
pub fn first_flag_violation(
    present: &dyn Fn(&str) -> bool,
    conflicts: &[(&str, &str)],
    requires: &[(&str, &str)],
) -> Option<String> {
    for &(a, b) in conflicts {
        if present(a) && present(b) {
            return Some(format!(
                "{a} and {b} contradict each other; pass one or the other"
            ));
        }
    }
    for &(flag, dependency) in requires {
        if present(flag) && !present(dependency) {
            return Some(format!("{flag} requires {dependency}"));
        }
    }
    None
}

/// Parse an optional `--quick` flag: figure binaries then run a reduced
/// scenario (fewer nodes, shorter horizon) so smoke tests stay fast.
pub fn quick_mode() -> bool {
    has_flag("--quick")
}

/// Shrink a scenario for `--quick` runs.
pub fn apply_quick(mut cfg: ScenarioConfig, quick: bool) -> ScenarioConfig {
    if quick {
        cfg.node_count = 30;
        cfg.duration = caem_simcore::time::Duration::from_secs(120);
    }
    cfg
}

/// Print a table in all three formats the harness emits.
pub fn emit(table: &Table) {
    println!("{}", table.to_text());
    println!("--- CSV ---\n{}", table.to_csv());
    println!("--- Markdown ---\n{}", table.to_markdown());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels = [
            policy_label(PolicyKind::PureLeach),
            policy_label(PolicyKind::Scheme1Adaptive),
            policy_label(PolicyKind::Scheme2Fixed),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn flag_violations_are_detected_in_declaration_order() {
        let conflicts = [
            ("--reaggregate", "--workers"),
            ("--worker-shard", "--workers"),
        ];
        let requires = [
            ("--worker-shard", "--store"),
            ("--distrib-dir", "--workers"),
        ];
        let given = |flags: &'static [&'static str]| move |name: &str| flags.contains(&name);
        assert_eq!(
            first_flag_violation(&given(&["--workers"]), &conflicts, &requires),
            None
        );
        let msg = first_flag_violation(
            &given(&["--reaggregate", "--workers"]),
            &conflicts,
            &requires,
        )
        .expect("conflict detected");
        assert!(msg.contains("--reaggregate") && msg.contains("--workers"));
        let msg = first_flag_violation(&given(&["--worker-shard"]), &conflicts, &requires)
            .expect("missing dependency detected");
        assert!(msg.contains("requires --store"));
        assert_eq!(
            first_flag_violation(
                &given(&["--worker-shard", "--store"]),
                &conflicts,
                &requires
            ),
            None
        );
        let msg = first_flag_violation(&given(&["--distrib-dir"]), &conflicts, &requires)
            .expect("dangling --distrib-dir detected");
        assert!(msg.contains("requires --workers"));
    }

    #[test]
    fn quick_shrinks_scenario() {
        let cfg = ScenarioConfig::paper_default(PolicyKind::PureLeach, 5.0, 1);
        let q = apply_quick(cfg.clone(), true);
        assert!(q.node_count < cfg.node_count);
        let same = apply_quick(cfg.clone(), false);
        assert_eq!(same.node_count, cfg.node_count);
    }
}
