//! Experiment E8: ablations of the design choices DESIGN.md calls out.
//!
//! Each ablation runs CAEM-LEACH Scheme 1 on the Fig. 8 scenario with one
//! knob changed and reports per-packet energy, delivery rate and mean delay,
//! so the sensitivity of the paper's conclusions to its parameter choices is
//! visible:
//!
//! * ΔV sampling period `K` (paper: 5)
//! * queue activation threshold `Q_threshold` (paper: 15)
//! * threshold step size (paper: one class)
//! * maximum burst size (paper: 8)
//! * shadowing standard deviation (how much channel variation CAEM needs)
//! * FEC codec energy accounting (the paper neglects it)
//!
//! ```bash
//! cargo run -p caem-bench --release --bin ablation
//! ```

use caem::policy::PolicyKind;
use caem_bench::{apply_quick, FigureArgs};
use caem_energy::codec::CodecEnergyModel;
use caem_mac::burst::BurstPolicy;
use caem_simcore::time::Duration;
use caem_wsnsim::experiment::run_configs;
use caem_wsnsim::ScenarioConfig;

struct Ablation {
    label: &'static str,
    configure: Box<dyn Fn(ScenarioConfig) -> ScenarioConfig + Sync + Send>,
}

fn base_config(seed: u64, quick: bool) -> ScenarioConfig {
    let horizon = if quick { 120 } else { 400 };
    apply_quick(
        ScenarioConfig::paper_default(PolicyKind::Scheme1Adaptive, 5.0, seed),
        quick,
    )
    .with_duration(Duration::from_secs(horizon))
}

fn main() {
    let FigureArgs { seed, quick } = FigureArgs::from_env_or_exit("ablation");

    let ablations: Vec<Ablation> = vec![
        Ablation {
            label: "baseline (paper parameters)",
            configure: Box::new(|c| c),
        },
        Ablation {
            label: "K = 1 (sample every arrival)",
            configure: Box::new(|mut c| {
                c.caem.sampling_interval_packets = 1;
                c
            }),
        },
        Ablation {
            label: "K = 20 (sluggish predictor)",
            configure: Box::new(|mut c| {
                c.caem.sampling_interval_packets = 20;
                c
            }),
        },
        Ablation {
            label: "Q_threshold = 5 (eager relaxation)",
            configure: Box::new(|mut c| {
                c.caem.queue_threshold = 5;
                c
            }),
        },
        Ablation {
            label: "Q_threshold = 40 (near buffer capacity)",
            configure: Box::new(|mut c| {
                c.caem.queue_threshold = 40;
                c
            }),
        },
        Ablation {
            label: "two-class threshold steps",
            configure: Box::new(|mut c| {
                c.caem.lower_step_classes = 2;
                c
            }),
        },
        Ablation {
            label: "burst cap 16 (less fairness, fewer startups)",
            configure: Box::new(|mut c| {
                c.burst = BurstPolicy::new(3, 16);
                c
            }),
        },
        Ablation {
            label: "burst cap 4 (more startups)",
            configure: Box::new(|mut c| {
                c.burst = BurstPolicy::new(3, 4);
                c
            }),
        },
        Ablation {
            label: "no shadowing (fading only)",
            configure: Box::new(|mut c| {
                c.shadowing = caem_channel::shadowing::ShadowingConfig::disabled();
                c
            }),
        },
        Ablation {
            label: "strong shadowing (sigma 10 dB)",
            configure: Box::new(|mut c| {
                c.shadowing.sigma_db = 10.0;
                c
            }),
        },
        Ablation {
            label: "codec energy modelled (realistic, non-zero)",
            configure: Box::new(|mut c| {
                c.codec = CodecEnergyModel::realistic();
                c
            }),
        },
    ];

    // Enumerate every variant's config up front, then run the flat list
    // through the experiment engine's single parallel layer.
    let configs: Vec<ScenarioConfig> = ablations
        .iter()
        .map(|a| (a.configure)(base_config(seed, quick)))
        .collect();
    let rows: Vec<(String, f64, f64, f64)> = ablations
        .iter()
        .zip(run_configs(&configs))
        .map(|(a, result)| {
            (
                a.label.to_string(),
                result
                    .per_packet_energy()
                    .millijoules_per_packet()
                    .unwrap_or(f64::NAN),
                result.delivery_rate(),
                result.perf.average_delay_ms(),
            )
        })
        .collect();

    println!("== E8 — Scheme 1 ablations (5 pkt/s, seed {seed}) ==");
    println!(
        "{:<48} {:>14} {:>14} {:>14}",
        "variant", "mJ/packet", "delivery rate", "mean delay ms"
    );
    for (label, ppe, delivery, delay) in &rows {
        println!("{label:<48} {ppe:>14.3} {delivery:>14.3} {delay:>14.1}");
    }
}
