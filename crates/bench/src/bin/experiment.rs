//! The replicated experiment grid: every scenario of the diversity zoo ×
//! every protocol × many seed replicates, run through the sharded experiment
//! engine's single parallel layer and reported as mean ± 95 % CI per metric.
//!
//! This is the evaluation the paper could not afford: instead of one
//! single-seed point estimate on one uniform deployment, each (scenario,
//! policy) cell aggregates independent replicates over diverse deployments
//! (uniform / grid / Gaussian hotspots / corridor), heterogeneous initial
//! batteries, random node churn and diurnal traffic cycles.
//!
//! The grid definition comes from one of two equivalent front doors:
//!
//! * the **code-defined zoo** (`caem_bench::zoo_scenarios`), or
//! * a **declarative spec file** (`--spec specs/zoo.json`): a
//!   `caem_wsnsim::spec::GridSpec` document that fully describes scenarios,
//!   policies, seeds and sequential-stopping settings and resolves
//!   deterministically into the same fully resolved configs — the committed
//!   `specs/zoo.json` reproduces the code-defined zoo **byte-identically**
//!   (fresh, resumed and distributed; CI diffs the artifacts).
//!
//! The command line is parsed into one structured
//! [`caem_bench::ExperimentMode`] value — unknown or misspelled flags exit 2
//! with the usage text, `--flag=value` and `--flag value` are equivalent,
//! and contradictory combinations (e.g. `--reaggregate --workers`) are
//! unrepresentable by construction.  Modes:
//!
//! ```bash
//! cargo run -p caem-bench --release --bin experiment                        # run
//! cargo run -p caem-bench --release --bin experiment -- --quick --resume    # resume
//! cargo run -p caem-bench --release --bin experiment -- --quick --reaggregate
//! cargo run -p caem-bench --release --bin experiment -- --target-ci 0.01    # sequential
//! cargo run -p caem-bench --release --bin experiment -- --quick --workers 3 # distributed
//! cargo run -p caem-bench --release --bin experiment -- --spec specs/zoo.json --quick
//! cargo run -p caem-bench --release --bin experiment -- --quick --list-scenarios
//! cargo run -p caem-bench --release --bin experiment -- --quick --print-spec
//! ```
//!
//! The full grid is written as JSON to `BENCH_experiment.json` at the
//! repository root and its JSONL store to `BENCH_experiment_store.jsonl`
//! (`_quick` variants, gitignored, for `--quick` runs).

use std::path::PathBuf;
use std::time::Duration;

use caem_bench::cli::{RunArgs, RunBackend, SequentialArgs};
use caem_bench::{
    policy_label, profrpt, zoo_replicates, zoo_scenarios, ExperimentCli, ExperimentMode,
    DEFAULT_SEED,
};
use caem_metrics::prof;
use caem_wsnsim::distrib::{
    run_sequential_distributed, run_worker, DistribOptions, ProcessSpawner, WorkerConfig,
};
use caem_wsnsim::experiment::{
    ExperimentReport, ExperimentSpec, SequentialOutcome, SequentialStopping, METRIC_NAMES,
};
use caem_wsnsim::faults::{self, FaultRole};
use caem_wsnsim::persist::{config_hash, ExperimentStore, StoreOptions};
use caem_wsnsim::serve::{run_socket_worker, SocketWorkerOptions, TcpLink, WorkerExit};
use caem_wsnsim::spec::{DistribTuning, GridSpec, ResolvedSpec};

const USAGE: &str = "\
usage: experiment [seed] [--quick] [--spec <file>] [mode flags]

grid definition:
  [seed]                 positional base seed (default: the harness seed)
  --quick                reduced smoke grid (fewer nodes, shorter horizon)
  --spec <file>          load the grid from a declarative GridSpec document
                         instead of the code-defined zoo

modes (at most one selector; `run` is the default):
  run                    simulate the grid and write the report
    --resume             reuse records already in the store; only missing jobs run
    --store <file>       custom JSONL store (single-process runs only)
    --target-ci <hw>     sequential stopping: append replicate batches until the
                         worst-cell 95% CI half-width of --ci-metric meets <hw>
      --ci-metric <m>      driving metric (default delivery_rate)
      --max-replicates <n> replicate cap (default 12 quick / 30 full)
    --workers <n>        distributed: spawn n worker processes over a shard dir
      --distrib-dir <dir>  shard directory (default BENCH_experiment_distrib*)
      --lease-ttl <s>      shard-lease TTL in seconds before an unrefreshed
                           claim may be stolen (wins over the spec's distrib
                           block; default 60)
      --chaos <seed:kinds> deterministic fault injection across the run
                           (kinds: kill, torn, skew, transient, delay, poison,
                           all; `+`-separated, e.g. --chaos 11:kill+torn)
    --fsync              fsync every store append (durability over speed)
    --strict             exit nonzero if any job was quarantined
    --profile            per-subsystem time-breakdown report after the run
                         (spawned workers inherit it through the environment;
                         the report artifact stays byte-identical)
  --reaggregate          rebuild the report offline from the JSONL store alone
  --worker-shard <dir>   participate in a distributed grid (requires --store;
                         --lease-ttl overrides the worker's claim TTL)
  --connect <addr>       attach to a caem-serve daemon as a socket worker
                         (no shared filesystem; jobs and records travel over
                         length-prefixed JSON frames)
    --protocol <n>       claim a specific protocol version in the handshake
    --expect-hash <h>    refuse to serve a grid whose manifest hash differs
  --list-scenarios       print scenario labels + config hashes; no simulation
  --print-spec           dump the canonical resolved spec as JSON; no simulation

Both `--flag value` and `--flag=value` work; unknown flags exit 2.";

fn die(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

fn die_usage(message: String) -> ! {
    eprintln!("error: {message}\n\n{USAGE}");
    std::process::exit(2);
}

/// Everything the grid-driven modes share: the runnable spec, the fully
/// resolved sequential-stopping rule the definition (spec file) carried —
/// honoured even without `--target-ci`, so a committed `sequential` block
/// is never silently dropped — and the initial replicate count.
struct Grid {
    spec: ExperimentSpec,
    sequential: Option<SequentialStopping>,
    replicates: usize,
    distrib: DistribTuning,
}

/// Resolve the grid definition: a `--spec` document when given, the
/// code-defined zoo otherwise.  Deterministic in (definition, seed, quick).
fn load_grid(cli: &ExperimentCli) -> Grid {
    let seed = cli.seed.unwrap_or(DEFAULT_SEED);
    match &cli.spec {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(format!("cannot read spec file {path}: {e}")));
            let doc = GridSpec::parse(&text).unwrap_or_else(|e| die(format!("{path}: {e}")));
            let resolved = doc
                .resolve(seed, cli.quick)
                .unwrap_or_else(|e| die(format!("{path}: {e}")));
            let replicates = resolved.spec.seeds.len();
            Grid {
                spec: resolved.spec,
                // Already batch-defaulted and validated by resolve().
                sequential: resolved.sequential,
                replicates,
                distrib: resolved.distrib,
            }
        }
        None => {
            let replicates = zoo_replicates(cli.quick);
            Grid {
                spec: ExperimentSpec::paper_policies(
                    zoo_scenarios(seed, cli.quick),
                    seed,
                    replicates,
                ),
                sequential: None,
                replicates,
                distrib: DistribTuning::default(),
            }
        }
    }
}

/// The sequential-stopping rule of a run: the spec file's resolved rule,
/// with `--target-ci`/`--ci-metric`/`--max-replicates` layered on top when
/// given, or `None` when neither source declares one.
fn resolve_stopping(
    grid: &Grid,
    args: Option<&SequentialArgs>,
    quick: bool,
) -> Option<SequentialStopping> {
    let stop = match (args, &grid.sequential) {
        (None, None) => return None,
        // Spec-declared sequential run, no CLI overrides: use it verbatim.
        (None, Some(stop)) => stop.clone(),
        // CLI overrides layered over the spec rule (or binary defaults).
        (Some(args), base) => {
            let stop = SequentialStopping {
                metric: args
                    .metric
                    .clone()
                    .or_else(|| base.as_ref().map(|s| s.metric.clone()))
                    .unwrap_or_else(|| "delivery_rate".to_string()),
                target_half_width: args.target_half_width,
                batch: base.as_ref().map(|s| s.batch).unwrap_or(grid.replicates),
                max_replicates: args
                    .max_replicates
                    .or_else(|| base.as_ref().map(|s| s.max_replicates))
                    .unwrap_or(if quick { 12 } else { 30 }),
            };
            stop.validate().unwrap_or_else(|e| die(e.to_string()));
            if stop.max_replicates < grid.replicates {
                die(format!(
                    "--max-replicates {} is below the initial batch of {} replicates",
                    stop.max_replicates, grid.replicates
                ));
            }
            stop
        }
    };
    println!(
        "sequential stopping on `{}`: target 95% CI half-width {}, batches of {}, cap {} replicates",
        stop.metric, stop.target_half_width, stop.batch, stop.max_replicates
    );
    Some(stop)
}

fn print_summary(spec: &ExperimentSpec, report: &ExperimentReport) {
    // Human-readable summary: one block per metric, mean +/- CI per cell.
    for (mi, metric) in METRIC_NAMES.iter().enumerate() {
        println!(
            "\n== {metric} (mean +/- 95% CI over {} seeds) ==",
            report.seeds.len()
        );
        let mut header = format!("{:<28}", "scenario");
        for &policy in &spec.policies {
            header.push_str(&format!(" {:>26}", policy_label(policy)));
        }
        println!("{header}");
        for spec_scenario in &spec.scenarios {
            let mut row = format!("{:<28}", spec_scenario.label);
            for &policy in &spec.policies {
                // A partial store (crashed grid inspected via --reaggregate)
                // legitimately misses whole cells; print a gap, don't panic.
                match report.cell(&spec_scenario.label, policy) {
                    Some(cell) => {
                        let s = &cell.metrics[mi];
                        row.push_str(&format!(
                            " {:>14.4} +/- {:>7.4}",
                            s.mean(),
                            s.ci95_half_width()
                        ));
                    }
                    None => row.push_str(&format!(" {:>26}", "(no records)")),
                }
            }
            println!("{row}");
        }
    }
}

fn write_report(report: &ExperimentReport, out_path: &str) {
    let text = serde_json::to_string_pretty(&report.to_json()).expect("report serializes");
    match std::fs::write(out_path, text) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}

/// Per-round trace and convergence verdict of a sequential-stopping run.
fn print_sequential_outcome(outcome: &SequentialOutcome, metric: &str) {
    for (i, round) in outcome.rounds.iter().enumerate() {
        println!(
            "  round {}: {} replicates/cell, worst half-width {:.6}",
            i + 1,
            round.replicates,
            round.worst_half_width
        );
    }
    // The scale-free readout next to the absolute target: how tight the
    // worst cell is relative to its mean.  `None` (a cell with too few
    // usable replicates or a zero mean) must surface as "n/a", not as a
    // fold identity masquerading as perfect precision.
    let worst_relative = outcome
        .report
        .cells
        .iter()
        .map(|cell| {
            cell.metric(metric)
                .and_then(|s| s.ci95_relative_half_width())
        })
        .try_fold(0.0f64, |acc, rel| rel.map(|r| acc.max(r)));
    println!(
        "{} after {} replicates/cell (worst relative precision {})",
        if outcome.converged {
            "converged"
        } else {
            "replicate cap reached"
        },
        outcome
            .rounds
            .last()
            .expect("at least one round")
            .replicates,
        match worst_relative {
            Some(rel) => format!("+/- {:.2}%", rel * 100.0),
            None => "undefined for at least one cell".to_string(),
        }
    );
}

/// `--worker-shard <dir>`: participate in a distributed grid until no shard
/// is claimable, then exit.  Fully manifest-driven: the grid's scenarios,
/// seeds and configs come from the shard directory, not from this process's
/// other flags (the CLI rejects them in this mode).
fn worker_mode(dir: &str, store: &str, lease_ttl: Option<f64>) -> ! {
    // Inherit the coordinator's chaos schedule and fsync setting across
    // `exec`.  A malformed plan is fatal: a chaos run silently downgrading
    // to a clean run would fake test coverage.
    faults::install_plan_from_env(FaultRole::Worker)
        .unwrap_or_else(|e| die(format!("bad {} value: {e}", faults::CHAOS_ENV)));
    let mut cfg = WorkerConfig::new(dir, store, format!("pid_{}", std::process::id()));
    cfg.fsync = std::env::var(faults::FSYNC_ENV).is_ok_and(|v| !v.is_empty());
    if let Some(secs) = lease_ttl {
        cfg.lease_ttl = Duration::from_secs_f64(secs);
    }
    match run_worker(&cfg) {
        Ok(outcome) => {
            println!(
                "worker {}: {} shards completed, {} jobs simulated, {} reused, {} quarantined from {store}",
                std::process::id(),
                outcome.shards_completed,
                outcome.jobs_run,
                outcome.jobs_reused,
                outcome.jobs_quarantined,
            );
            if let Some(summary) = faults::event_summary() {
                println!("worker {}: {summary}", std::process::id());
            }
            if prof::enabled() {
                profrpt::print_profile_totals(
                    &format!("worker {} time breakdown", std::process::id()),
                    &prof::global().snapshot(),
                );
            }
            std::process::exit(0);
        }
        Err(e) => die(format!("worker on {dir} failed: {e}")),
    }
}

/// `--connect <addr>`: attach to a `caem-serve` daemon as a socket worker.
/// No shared filesystem: jobs arrive inline with the shard grant, record
/// lines stream back in coalesced frames.  A handshake rejection (wrong
/// protocol version, manifest-hash mismatch) is a usage-class error and
/// exits 2; a transport failure mid-run exits 1.
fn socket_worker_mode(addr: &str, protocol: Option<u64>, expect_hash: Option<u64>) -> ! {
    faults::install_plan_from_env(FaultRole::Worker)
        .unwrap_or_else(|e| die(format!("bad {} value: {e}", faults::CHAOS_ENV)));
    let stream = std::net::TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("error: cannot connect to daemon at {addr}: {e}");
        std::process::exit(1);
    });
    let mut link = TcpLink::new(stream);
    let mut opts = SocketWorkerOptions::new(format!("pid_{}", std::process::id()));
    if let Some(version) = protocol {
        opts.protocol = version;
    }
    opts.expect_hash = expect_hash;
    match run_socket_worker(&mut link, &opts) {
        Ok(WorkerExit::Finished(outcome)) => {
            println!(
                "worker {}: {} shards completed, {} jobs simulated, {} quarantined via {addr}",
                std::process::id(),
                outcome.shards_completed,
                outcome.jobs_run,
                outcome.jobs_quarantined,
            );
            if let Some(summary) = faults::event_summary() {
                println!("worker {}: {summary}", std::process::id());
            }
            if prof::enabled() {
                profrpt::print_profile_totals(
                    &format!("worker {} time breakdown", std::process::id()),
                    &prof::global().snapshot(),
                );
            }
            std::process::exit(0);
        }
        Ok(WorkerExit::Rejected(reason)) => {
            die(format!("daemon at {addr} rejected this worker: {reason}"))
        }
        Err(e) => {
            eprintln!("error: worker transport to {addr} failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Default artifact paths, anchored at the repository root.
struct Paths {
    store: &'static str,
    distrib_dir: &'static str,
    out: &'static str,
}

fn default_paths(quick: bool) -> Paths {
    if quick {
        Paths {
            store: concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_experiment_store_quick.jsonl"
            ),
            distrib_dir: concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_experiment_distrib_quick"
            ),
            out: concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_experiment_quick.json"
            ),
        }
    } else {
        Paths {
            store: concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_experiment_store.jsonl"
            ),
            distrib_dir: concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_experiment_distrib"
            ),
            out: concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_experiment.json"),
        }
    }
}

fn run_mode(cli: &ExperimentCli, args: &RunArgs, grid: Grid, paths: &Paths) {
    let spec = &grid.spec;
    let sequential = resolve_stopping(&grid, args.sequential.as_ref(), cli.quick);
    if args.profile {
        prof::set_enabled(true);
    }

    let report = match &args.backend {
        RunBackend::Distributed { workers, dir } => {
            let n = *workers;
            let dir_path =
                PathBuf::from(dir.clone().unwrap_or_else(|| paths.distrib_dir.to_string()));
            // Shard-lease TTL precedence: explicit flag > the spec's distrib
            // block > the built-in default (already folded into `grid`).
            let lease_ttl = args
                .lease_ttl
                .map(Duration::from_secs_f64)
                .unwrap_or(grid.distrib.lease_ttl);
            let opts = DistribOptions {
                // Mirror the store semantics: a plain fixed-replicate run
                // starts the *default* shard directory afresh.  Never wiped:
                // --resume, an explicitly passed directory, and
                // sequential-stopping runs (--target-ci exists to grow the
                // persisted replicate pool, so a re-invocation must reuse
                // the completed rounds).
                fresh: !args.resume && dir.is_none() && sequential.is_none(),
                fsync: args.fsync,
                lease_ttl,
                ..DistribOptions::new(n)
            };
            // Forward the *effective* TTL so spawned workers steal on the
            // same clock the coordinator evicts on.
            let base_args = vec![
                "--lease-ttl".to_string(),
                format!("{}", lease_ttl.as_secs_f64()),
            ];
            let mut spawner = ProcessSpawner::current_exe(base_args)
                .unwrap_or_else(|e| die(format!("cannot locate worker binary: {e}")));
            if let Some(chaos) = &args.chaos {
                // The coordinator participates in the schedule (lease and
                // rename faults) but never kills itself; workers inherit the
                // full plan through the environment.
                faults::install_plan(chaos.clone(), FaultRole::Coordinator);
                spawner
                    .envs
                    .push((faults::CHAOS_ENV.to_string(), chaos.env_string()));
                println!("chaos mode: fault plan {}", chaos.env_string());
            }
            if args.fsync {
                spawner
                    .envs
                    .push((faults::FSYNC_ENV.to_string(), "1".to_string()));
            }
            if args.profile {
                spawner
                    .envs
                    .push((prof::PROFILE_ENV.to_string(), "1".to_string()));
            }
            println!(
                "distributed experiment grid: {} scenarios x {} policies x {} seeds = {} jobs across {n} workers ({} rayon threads each), shard dir {}",
                spec.scenarios.len(),
                spec.policies.len(),
                spec.seeds.len(),
                spec.job_count(),
                rayon::split_thread_budget(n),
                dir_path.display(),
            );
            match &sequential {
                Some(stop) => {
                    let outcome =
                        run_sequential_distributed(spec, &dir_path, &opts, &spawner, stop)
                            .unwrap_or_else(|e| {
                                die(format!("distributed sequential run failed: {e}"))
                            });
                    print_sequential_outcome(&outcome, &stop.metric);
                    outcome.report
                }
                None => spec
                    .run_distributed(&dir_path, &opts, &spawner)
                    .unwrap_or_else(|e| die(format!("distributed run failed: {e}"))),
            }
        }
        RunBackend::Local { store } => {
            let store_path = store.clone().unwrap_or_else(|| paths.store.to_string());
            if !args.resume && sequential.is_none() && store.is_none() {
                // A plain fixed-replicate run starts a fresh copy of the
                // binary's *default* store (still streaming every record).
                // Never deleted: an explicitly passed `--store` file (reused
                // instead — wiping a store the user pointed at would destroy
                // their accumulated grid), and sequential-stopping stores
                // (`--target-ci` exists to grow the persisted replicate
                // pool).
                std::fs::remove_file(&store_path).ok();
            }
            let mut store =
                ExperimentStore::open_with(&store_path, StoreOptions { fsync: args.fsync })
                    .expect("open experiment store");
            let preexisting = store.len();
            println!(
                "experiment grid: {} scenarios x {} policies x {} seeds = {} jobs (single parallel layer, {} on disk)",
                spec.scenarios.len(),
                spec.policies.len(),
                spec.seeds.len(),
                spec.job_count(),
                preexisting,
            );
            let report = match &sequential {
                Some(stop) => {
                    let outcome = spec.run_sequential(&mut store, stop);
                    print_sequential_outcome(&outcome, &stop.metric);
                    outcome.report
                }
                None => spec.run_with_store(&mut store),
            };
            println!(
                "store {store_path}: {} jobs persisted ({} simulated this run, including stale re-runs)",
                store.len(),
                store.appended(),
            );
            report
        }
    };

    print_summary(spec, &report);
    if !report.failures.is_empty() {
        // Degradation section: the grid completed, but these cells are
        // missing the listed replicates.
        println!(
            "\n== degraded: {} job(s) quarantined after exhausting retries ==",
            report.failures.len()
        );
        for failure in &report.failures {
            println!(
                "  {} / {:?} / seed {}: {} ({} attempts)",
                failure.scenario, failure.policy, failure.seed, failure.reason, failure.attempts
            );
        }
    }
    if let Some(summary) = faults::event_summary() {
        println!("{summary}");
    }
    if args.profile {
        // The process-wide accumulator: every local job folded its profile
        // in at finish(); deploy and collector spans land here directly.
        // (Spawned workers print their own breakdowns — wall clocks cannot
        // cross process boundaries.)
        println!();
        profrpt::print_profile_totals(
            "time breakdown (this process, all jobs)",
            &prof::global().snapshot(),
        );
        profrpt::print_run_event_counters();
    }
    write_report(&report, paths.out);
    if args.strict && !report.failures.is_empty() {
        eprintln!(
            "error: --strict and {} job(s) quarantined",
            report.failures.len()
        );
        std::process::exit(3);
    }
}

fn main() {
    let cli = ExperimentCli::from_env().unwrap_or_else(|e| die_usage(e.to_string()));
    if let ExperimentMode::Worker {
        dir,
        store,
        lease_ttl,
    } = &cli.mode
    {
        // Workers are manifest-driven; no grid resolution happens here.
        worker_mode(dir, store, *lease_ttl);
    }
    if let ExperimentMode::SocketWorker {
        addr,
        protocol,
        expect_hash,
    } = &cli.mode
    {
        // Socket workers receive their jobs from the daemon; no grid
        // resolution (and no filesystem) on this side either.
        socket_worker_mode(addr, *protocol, *expect_hash);
    }
    let paths = default_paths(cli.quick);
    let grid = load_grid(&cli);

    match &cli.mode {
        ExperimentMode::Worker { .. } | ExperimentMode::SocketWorker { .. } => {
            unreachable!("handled above")
        }
        ExperimentMode::ListScenarios => {
            // Introspection: the resolved grid, no simulation, no stores.
            println!(
                "{} scenarios x {} policies x {} seeds = {} jobs",
                grid.spec.scenarios.len(),
                grid.spec.policies.len(),
                grid.spec.seeds.len(),
                grid.spec.job_count()
            );
            println!("{:<28} {:>16}", "scenario", "config_hash");
            for scenario in &grid.spec.scenarios {
                println!(
                    "{:<28} {:>16x}",
                    scenario.label,
                    config_hash(&scenario.base)
                );
            }
        }
        ExperimentMode::PrintSpec => {
            // The canonical resolved spec: what a remote spawner would ship,
            // and what CI diffs between spec-file and code-defined runs.
            let resolved = ResolvedSpec::of(&grid.spec);
            println!(
                "{}",
                serde_json::to_string_pretty(&resolved.to_json())
                    .expect("resolved spec serializes")
            );
        }
        ExperimentMode::Reaggregate { store } => {
            // Offline path: rebuild the report purely from the JSONL store.
            let store_path = store.clone().unwrap_or_else(|| paths.store.to_string());
            let store = ExperimentStore::load(&store_path).expect("load experiment store");
            let report = store.rebuild_report();
            println!(
                "re-aggregated {} persisted jobs from {store_path} into {} cells (no simulation)",
                store.len(),
                report.cells.len()
            );
            print_summary(&grid.spec, &report);
            write_report(&report, paths.out);
        }
        ExperimentMode::Run(args) => run_mode(&cli, args, grid, &paths),
    }
}
