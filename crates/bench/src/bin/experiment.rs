//! The replicated experiment grid: every scenario of the diversity zoo ×
//! every protocol × many seed replicates, run through the sharded experiment
//! engine's single parallel layer and reported as mean ± 95 % CI per metric.
//!
//! This is the evaluation the paper could not afford: instead of one
//! single-seed point estimate on one uniform deployment, each (scenario,
//! policy) cell aggregates independent replicates over diverse deployments
//! (uniform / grid / Gaussian hotspots / corridor), heterogeneous initial
//! batteries and random node churn.
//!
//! ```bash
//! cargo run -p caem-bench --release --bin experiment
//! cargo run -p caem-bench --release --bin experiment -- --quick  # smoke run
//! ```
//!
//! The full grid is written as JSON to `BENCH_experiment.json` at the
//! repository root (`BENCH_experiment_quick.json`, gitignored, for `--quick`
//! runs).

use caem::policy::PolicyKind;
use caem_bench::{apply_quick, policy_label, quick_mode, seed_from_args};
use caem_simcore::time::Duration;
use caem_wsnsim::experiment::{ExperimentSpec, ScenarioSpec, METRIC_NAMES};
use caem_wsnsim::{ScenarioConfig, Topology};

fn scenarios(seed: u64, quick: bool) -> Vec<ScenarioSpec> {
    let horizon = Duration::from_secs(if quick { 120 } else { 400 });
    let base = |rate: f64| {
        apply_quick(
            ScenarioConfig::paper_default(PolicyKind::PureLeach, rate, seed),
            quick,
        )
        .with_duration(horizon)
    };
    vec![
        ScenarioSpec::new("uniform_5pps", base(5.0)),
        ScenarioSpec::new(
            "grid_5pps",
            base(5.0).with_topology(Topology::Grid { jitter_m: 3.0 }),
        ),
        ScenarioSpec::new(
            "hotspots_10pps",
            base(10.0).with_topology(Topology::GaussianClusters {
                clusters: 4,
                sigma_m: 12.0,
            }),
        ),
        ScenarioSpec::new(
            "corridor_10pps",
            base(10.0).with_topology(Topology::Corridor {
                width_fraction: 0.25,
            }),
        ),
        ScenarioSpec::new(
            "heterogeneous_churn_5pps",
            base(5.0)
                .with_energy_spread(0.4)
                .with_churn_mttf_s(if quick { 1_200.0 } else { 4_000.0 }),
        ),
    ]
}

fn main() {
    let seed = seed_from_args();
    let quick = quick_mode();
    let replicates = if quick { 5 } else { 10 };

    let spec = ExperimentSpec::paper_policies(scenarios(seed, quick), seed, replicates);
    println!(
        "experiment grid: {} scenarios x {} policies x {} seeds = {} jobs (single parallel layer)",
        spec.scenarios.len(),
        spec.policies.len(),
        spec.seeds.len(),
        spec.job_count()
    );
    let report = spec.run();

    // Human-readable summary: one block per metric, mean +/- CI per cell.
    for (mi, metric) in METRIC_NAMES.iter().enumerate() {
        println!("\n== {metric} (mean +/- 95% CI over {replicates} seeds) ==");
        let mut header = format!("{:<28}", "scenario");
        for &policy in &spec.policies {
            header.push_str(&format!(" {:>26}", policy_label(policy)));
        }
        println!("{header}");
        for spec_scenario in &spec.scenarios {
            let mut row = format!("{:<28}", spec_scenario.label);
            for &policy in &spec.policies {
                let cell = report
                    .cell(&spec_scenario.label, policy)
                    .expect("every cell simulated");
                let s = &cell.metrics[mi];
                row.push_str(&format!(
                    " {:>14.4} +/- {:>7.4}",
                    s.mean(),
                    s.ci95_half_width()
                ));
            }
            println!("{row}");
        }
    }

    let out_path = if quick {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_experiment_quick.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_experiment.json")
    };
    let text = serde_json::to_string_pretty(&report.to_json()).expect("report serializes");
    match std::fs::write(out_path, text) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
