//! The replicated experiment grid: every scenario of the diversity zoo ×
//! every protocol × many seed replicates, run through the sharded experiment
//! engine's single parallel layer and reported as mean ± 95 % CI per metric.
//!
//! This is the evaluation the paper could not afford: instead of one
//! single-seed point estimate on one uniform deployment, each (scenario,
//! policy) cell aggregates independent replicates over diverse deployments
//! (uniform / grid / Gaussian hotspots / corridor), heterogeneous initial
//! batteries, random node churn and diurnal traffic cycles.
//!
//! Every completed job streams to a per-grid JSONL store, so grids are
//! durable: `--resume` skips the jobs already on disk (an interrupted run
//! loses only its in-flight jobs), `--reaggregate` rebuilds the report from
//! the store alone without simulating anything, and `--target-ci <hw>`
//! switches to sequential stopping — replicate batches are appended until
//! the worst-cell 95 % CI half-width of `--ci-metric` (default
//! `delivery_rate`) drops under the target or `--max-replicates` is hit.
//!
//! `--workers N` runs the same grid **distributed**: the coordinator writes
//! the job list as claimable shards under `--distrib-dir` (or the default
//! `BENCH_experiment_distrib[_quick]/`), re-invokes this binary `N` times in
//! `--worker-shard` mode with an equal share of the process thread budget
//! each, and merges all per-worker JSONL shards into a report byte-identical
//! to the single-process run — including after killing workers (their shards
//! are stolen) or the coordinator itself (re-run with `--resume --workers N`
//! to pick the grid back up).
//!
//! ```bash
//! cargo run -p caem-bench --release --bin experiment
//! cargo run -p caem-bench --release --bin experiment -- --quick      # smoke run
//! cargo run -p caem-bench --release --bin experiment -- --quick --resume
//! cargo run -p caem-bench --release --bin experiment -- --quick --reaggregate
//! cargo run -p caem-bench --release --bin experiment -- --target-ci 0.01
//! cargo run -p caem-bench --release --bin experiment -- --quick --workers 3
//! ```
//!
//! The full grid is written as JSON to `BENCH_experiment.json` at the
//! repository root and its JSONL store to `BENCH_experiment_store.jsonl`
//! (`_quick` variants, gitignored, for `--quick` runs).

use std::path::PathBuf;

use caem::policy::PolicyKind;
use caem_bench::{
    apply_quick, first_flag_violation, flag_value, has_flag, policy_label, quick_mode,
    seed_from_args,
};
use caem_simcore::time::Duration;
use caem_wsnsim::distrib::{
    run_sequential_distributed, run_worker, DistribOptions, ProcessSpawner, WorkerConfig,
};
use caem_wsnsim::experiment::{
    ExperimentReport, ExperimentSpec, ScenarioSpec, SequentialOutcome, SequentialStopping,
    METRIC_NAMES,
};
use caem_wsnsim::persist::ExperimentStore;
use caem_wsnsim::{ScenarioConfig, Topology};

/// Flag pairs that contradict each other: acting on one would silently
/// ignore the other, so the binary refuses the combination up front.
const FLAG_CONFLICTS: &[(&str, &str)] = &[
    ("--reaggregate", "--workers"),
    ("--reaggregate", "--resume"),
    ("--reaggregate", "--target-ci"),
    ("--worker-shard", "--workers"),
    ("--worker-shard", "--reaggregate"),
    ("--worker-shard", "--resume"),
    ("--worker-shard", "--target-ci"),
    // Distributed records live in the shard directory's per-worker stores,
    // never in the single-process store file.
    ("--workers", "--store"),
];

/// Flags that are meaningless (and previously silently ignored) without
/// their dependency.
const FLAG_REQUIRES: &[(&str, &str)] = &[
    ("--worker-shard", "--store"),
    ("--distrib-dir", "--workers"),
    ("--ci-metric", "--target-ci"),
    ("--max-replicates", "--target-ci"),
];

fn scenarios(seed: u64, quick: bool) -> Vec<ScenarioSpec> {
    let horizon = Duration::from_secs(if quick { 120 } else { 400 });
    let base = |rate: f64| {
        apply_quick(
            ScenarioConfig::paper_default(PolicyKind::PureLeach, rate, seed),
            quick,
        )
        .with_duration(horizon)
    };
    vec![
        ScenarioSpec::new("uniform_5pps", base(5.0)),
        ScenarioSpec::new(
            "grid_5pps",
            base(5.0).with_topology(Topology::Grid { jitter_m: 3.0 }),
        ),
        ScenarioSpec::new(
            "hotspots_10pps",
            base(10.0).with_topology(Topology::GaussianClusters {
                clusters: 4,
                sigma_m: 12.0,
            }),
        ),
        ScenarioSpec::new(
            "corridor_10pps",
            base(10.0).with_topology(Topology::Corridor {
                width_fraction: 0.25,
            }),
        ),
        ScenarioSpec::new(
            "heterogeneous_churn_5pps",
            base(5.0)
                .with_energy_spread(0.4)
                .with_churn_mttf_s(if quick { 1_200.0 } else { 4_000.0 }),
        ),
        // Time-varying load: two day/night cycles over the horizon, rate
        // swinging between 0.2x and 1.8x the 10 pkt/s mean.
        ScenarioSpec::new(
            "diurnal_10pps",
            base(10.0).with_diurnal_traffic(if quick { 60.0 } else { 200.0 }, 0.8),
        ),
    ]
}

fn print_summary(spec: &ExperimentSpec, report: &ExperimentReport) {
    // Human-readable summary: one block per metric, mean +/- CI per cell.
    for (mi, metric) in METRIC_NAMES.iter().enumerate() {
        println!(
            "\n== {metric} (mean +/- 95% CI over {} seeds) ==",
            report.seeds.len()
        );
        let mut header = format!("{:<28}", "scenario");
        for &policy in &spec.policies {
            header.push_str(&format!(" {:>26}", policy_label(policy)));
        }
        println!("{header}");
        for spec_scenario in &spec.scenarios {
            let mut row = format!("{:<28}", spec_scenario.label);
            for &policy in &spec.policies {
                // A partial store (crashed grid inspected via --reaggregate)
                // legitimately misses whole cells; print a gap, don't panic.
                match report.cell(&spec_scenario.label, policy) {
                    Some(cell) => {
                        let s = &cell.metrics[mi];
                        row.push_str(&format!(
                            " {:>14.4} +/- {:>7.4}",
                            s.mean(),
                            s.ci95_half_width()
                        ));
                    }
                    None => row.push_str(&format!(" {:>26}", "(no records)")),
                }
            }
            println!("{row}");
        }
    }
}

fn write_report(report: &ExperimentReport, out_path: &str) {
    let text = serde_json::to_string_pretty(&report.to_json()).expect("report serializes");
    match std::fs::write(out_path, text) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}

/// Per-round trace and convergence verdict of a sequential-stopping run.
fn print_sequential_outcome(outcome: &SequentialOutcome, metric: &str) {
    for (i, round) in outcome.rounds.iter().enumerate() {
        println!(
            "  round {}: {} replicates/cell, worst half-width {:.6}",
            i + 1,
            round.replicates,
            round.worst_half_width
        );
    }
    // The scale-free readout next to the absolute target: how tight the
    // worst cell is relative to its mean.  `None` (a cell with too few
    // usable replicates or a zero mean) must surface as "n/a", not as a
    // fold identity masquerading as perfect precision.
    let worst_relative = outcome
        .report
        .cells
        .iter()
        .map(|cell| {
            cell.metric(metric)
                .and_then(|s| s.ci95_relative_half_width())
        })
        .try_fold(0.0f64, |acc, rel| rel.map(|r| acc.max(r)));
    println!(
        "{} after {} replicates/cell (worst relative precision {})",
        if outcome.converged {
            "converged"
        } else {
            "replicate cap reached"
        },
        outcome
            .rounds
            .last()
            .expect("at least one round")
            .replicates,
        match worst_relative {
            Some(rel) => format!("+/- {:.2}%", rel * 100.0),
            None => "undefined for at least one cell".to_string(),
        }
    );
}

fn die(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// `--worker-shard <dir>`: participate in a distributed grid until no shard
/// is claimable, then exit.  Fully manifest-driven: the grid's scenarios,
/// seeds and configs come from the shard directory, not from this process's
/// other flags.
fn worker_mode(dir: String) -> ! {
    let store = flag_value("--store").expect("--worker-shard requires --store (validated above)");
    let cfg = WorkerConfig::new(&dir, &store, format!("pid_{}", std::process::id()));
    match run_worker(&cfg) {
        Ok(outcome) => {
            println!(
                "worker {}: {} shards completed, {} jobs simulated, {} reused from {store}",
                std::process::id(),
                outcome.shards_completed,
                outcome.jobs_run,
                outcome.jobs_reused,
            );
            std::process::exit(0);
        }
        Err(e) => die(format!("worker on {dir} failed: {e}")),
    }
}

fn main() {
    if let Some(message) = first_flag_violation(&|f| has_flag(f), FLAG_CONFLICTS, FLAG_REQUIRES) {
        die(message);
    }
    for flag in ["--workers", "--worker-shard", "--distrib-dir"] {
        if has_flag(flag) && flag_value(flag).is_none() {
            die(format!("{flag} requires a value"));
        }
    }
    if let Some(dir) = flag_value("--worker-shard") {
        worker_mode(dir);
    }
    let workers: Option<usize> = flag_value("--workers").map(|v| match v.parse() {
        Ok(n) if n >= 1 => n,
        _ => die(format!("--workers takes an integer >= 1 (got {v})")),
    });

    let seed = seed_from_args();
    let quick = quick_mode();
    let replicates = if quick { 5 } else { 10 };

    let (default_store, default_distrib_dir, out_path) = if quick {
        (
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_experiment_store_quick.jsonl"
            ),
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_experiment_distrib_quick"
            ),
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_experiment_quick.json"
            ),
        )
    } else {
        (
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_experiment_store.jsonl"
            ),
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../BENCH_experiment_distrib"
            ),
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_experiment.json"),
        )
    };
    let store_path = flag_value("--store").unwrap_or_else(|| default_store.to_string());

    let spec = ExperimentSpec::paper_policies(scenarios(seed, quick), seed, replicates);

    if has_flag("--reaggregate") {
        // Offline path: rebuild the report purely from the JSONL store.
        let store = ExperimentStore::load(&store_path).expect("load experiment store");
        let report = store.rebuild_report();
        println!(
            "re-aggregated {} persisted jobs from {store_path} into {} cells (no simulation)",
            store.len(),
            report.cells.len()
        );
        print_summary(&spec, &report);
        write_report(&report, out_path);
        return;
    }

    let sequential = has_flag("--target-ci");
    let target_ci = sequential.then(|| {
        // Fail loudly on `--target-ci` with the value forgotten — falling
        // through to a plain run would wipe the store the user was growing.
        flag_value("--target-ci")
            .expect("--target-ci requires a value")
            .parse::<f64>()
            .expect("--target-ci takes a number")
    });
    let stop_for = |target: f64| {
        let metric = flag_value("--ci-metric").unwrap_or_else(|| "delivery_rate".to_string());
        let max_replicates = flag_value("--max-replicates")
            .map(|v| v.parse().expect("--max-replicates takes an integer"))
            .unwrap_or(if quick { 12 } else { 30 });
        let stop = SequentialStopping {
            metric,
            target_half_width: target,
            batch: replicates,
            max_replicates,
        };
        println!(
            "sequential stopping on `{}`: target 95% CI half-width {target}, batches of {}, cap {} replicates",
            stop.metric, stop.batch, stop.max_replicates
        );
        stop
    };

    if let Some(n) = workers {
        // Distributed path: shard the grid on disk, spawn N copies of this
        // binary in --worker-shard mode, merge their JSONL shards.  Records
        // live under the shard directory, not in the single-process store.
        let custom_dir = flag_value("--distrib-dir");
        let dir = PathBuf::from(
            custom_dir
                .clone()
                .unwrap_or_else(|| default_distrib_dir.to_string()),
        );
        let opts = DistribOptions {
            // Mirror the store semantics: a plain fixed-replicate run starts
            // the *default* shard directory afresh.  Never wiped: --resume,
            // an explicitly passed directory, and sequential-stopping runs
            // (--target-ci exists to grow the persisted replicate pool, so a
            // re-invocation must reuse the completed rounds).
            fresh: !has_flag("--resume") && custom_dir.is_none() && !sequential,
            ..DistribOptions::new(n)
        };
        let spawner = ProcessSpawner::current_exe(Vec::new())
            .unwrap_or_else(|e| die(format!("cannot locate worker binary: {e}")));
        println!(
            "distributed experiment grid: {} scenarios x {} policies x {} seeds = {} jobs across {n} workers ({} rayon threads each), shard dir {}",
            spec.scenarios.len(),
            spec.policies.len(),
            spec.seeds.len(),
            spec.job_count(),
            rayon::split_thread_budget(n),
            dir.display(),
        );
        let report = match target_ci {
            Some(target) => {
                let stop = stop_for(target);
                let outcome = run_sequential_distributed(&spec, &dir, &opts, &spawner, &stop)
                    .unwrap_or_else(|e| die(format!("distributed sequential run failed: {e}")));
                print_sequential_outcome(&outcome, &stop.metric);
                outcome.report
            }
            None => spec
                .run_distributed(&dir, &opts, &spawner)
                .unwrap_or_else(|e| die(format!("distributed run failed: {e}"))),
        };
        print_summary(&spec, &report);
        write_report(&report, out_path);
        return;
    }

    let custom_store = flag_value("--store").is_some();
    if !has_flag("--resume") && !sequential && !custom_store {
        // A plain fixed-replicate run starts a fresh copy of the binary's
        // *default* store (still streaming every record).  Never deleted:
        // an explicitly passed `--store` file (reused instead — wiping a
        // store the user pointed at would destroy their accumulated grid),
        // and sequential-stopping stores (`--target-ci` exists to grow the
        // persisted replicate pool).
        std::fs::remove_file(&store_path).ok();
    }
    let mut store = ExperimentStore::open(&store_path).expect("open experiment store");
    let preexisting = store.len();
    println!(
        "experiment grid: {} scenarios x {} policies x {} seeds = {} jobs (single parallel layer, {} on disk)",
        spec.scenarios.len(),
        spec.policies.len(),
        spec.seeds.len(),
        spec.job_count(),
        preexisting,
    );

    let report = if let Some(target) = target_ci {
        let stop = stop_for(target);
        let outcome = spec.run_sequential(&mut store, &stop);
        print_sequential_outcome(&outcome, &stop.metric);
        outcome.report
    } else {
        spec.run_with_store(&mut store)
    };
    println!(
        "store {store_path}: {} jobs persisted ({} simulated this run, including stale re-runs)",
        store.len(),
        store.appended(),
    );

    print_summary(&spec, &report);
    write_report(&report, out_path);
}
