//! Figure 9: number of sensor nodes alive versus elapsed time.
//!
//! Same scenario as Fig. 8 but run until the batteries are exhausted
//! (≈1400 s in the paper).  The LEACH head rotation makes all curves drop
//! abruptly near their exhaustion point; the CAEM schemes shift that point to
//! the right.
//!
//! ```bash
//! cargo run -p caem-bench --release --bin fig9
//! ```

use caem_bench::{apply_quick, emit, policy_label, FigureArgs};
use caem_metrics::report::{Column, Table};
use caem_simcore::time::Duration;
use caem_wsnsim::sweep::{compare_policies, PAPER_POLICIES};
use caem_wsnsim::ScenarioConfig;

fn main() {
    let FigureArgs { seed, quick } = FigureArgs::from_env_or_exit("fig9");
    let horizon_s: u64 = if quick { 300 } else { 2_500 };
    let comparison = compare_policies(|policy| {
        apply_quick(
            ScenarioConfig::paper_default(policy, 5.0, seed)
                .with_duration(Duration::from_secs(horizon_s)),
            quick,
        )
        .with_duration(Duration::from_secs(horizon_s))
    });

    let step = if quick { 20.0 } else { 100.0 };
    let times: Vec<f64> = std::iter::successors(Some(0.0), |t| {
        (*t + step <= horizon_s as f64).then(|| t + step)
    })
    .collect();

    let mut columns = vec![Column::new("elapsed_time_s", times.clone())];
    for &policy in &PAPER_POLICIES {
        let result = comparison.get(policy);
        let values: Vec<f64> = times
            .iter()
            .map(|&t| {
                result
                    .lifetime
                    .alive_at(caem_simcore::time::SimTime::from_secs_f64(t)) as f64
            })
            .collect();
        columns.push(Column::new(
            format!("{}_nodes_alive", policy_label(policy)),
            values,
        ));
    }
    let table = Table::new(
        "Fig. 9 — Number of nodes alive versus time (10 J initial, 5 pkt/s)",
        columns,
    );
    emit(&table);

    for &policy in &PAPER_POLICIES {
        let result = comparison.get(policy);
        let lifetime = result.network_lifetime_secs(0.8);
        let first = result.lifetime.first_death().map(|t| t.as_secs_f64());
        println!(
            "{}: first death {:?} s, network lifetime (80% dead) {:?} s",
            policy_label(policy),
            first,
            lifetime
        );
    }
}
