//! Figure 11: average energy consumed per successfully delivered packet
//! versus traffic load.
//!
//! The paper plots pure LEACH against CAEM-LEACH Scheme 1 (Scheme 2 is noted
//! as trivially the most efficient); we report all three plus the relative
//! saving of Scheme 1 over pure LEACH — the paper's headline 30–40 %.
//!
//! ```bash
//! cargo run -p caem-bench --release --bin fig11
//! ```

use caem::policy::PolicyKind;
use caem_bench::{apply_quick, emit, policy_label, FigureArgs};
use caem_metrics::report::{Column, Table};
use caem_simcore::time::Duration;
use caem_wsnsim::sweep::{load_sweep, PAPER_POLICIES};
use caem_wsnsim::ScenarioConfig;

fn main() {
    let FigureArgs { seed, quick } = FigureArgs::from_env_or_exit("fig11");
    let loads: Vec<f64> = if quick {
        vec![5.0, 15.0]
    } else {
        vec![5.0, 10.0, 15.0, 20.0, 25.0, 30.0]
    };
    let horizon_s: u64 = if quick { 200 } else { 600 };

    let points = load_sweep(&loads, |policy, load| {
        apply_quick(ScenarioConfig::paper_default(policy, load, seed), quick)
            .with_duration(Duration::from_secs(horizon_s))
    });

    let mut columns = vec![Column::new("added_traffic_load_pps", loads.clone())];
    for &policy in &PAPER_POLICIES {
        let values: Vec<f64> = points
            .iter()
            .map(|p| {
                p.comparison
                    .get(policy)
                    .per_packet_energy()
                    .millijoules_per_packet()
                    .unwrap_or(f64::NAN)
            })
            .collect();
        columns.push(Column::new(
            format!("{}_mJ_per_packet", policy_label(policy)),
            values,
        ));
    }
    let savings: Vec<f64> = points
        .iter()
        .map(|p| {
            let s1 = p
                .comparison
                .get(PolicyKind::Scheme1Adaptive)
                .per_packet_energy();
            let leach = p.comparison.get(PolicyKind::PureLeach).per_packet_energy();
            s1.saving_vs(&leach).map(|s| s * 100.0).unwrap_or(f64::NAN)
        })
        .collect();
    columns.push(Column::new("scheme1_saving_vs_leach_percent", savings));

    let table = Table::new(
        "Fig. 11 — Average energy consumed per delivered packet versus traffic load",
        columns,
    );
    emit(&table);
}
