//! Experiment E7 (long-version extension): network performance versus load —
//! average packet delay, aggregate throughput and successful delivery rate
//! for the three protocols.
//!
//! The short paper defines these metrics (Section IV-A) but defers their
//! plots to the technical-report long version; this binary produces them for
//! the reproduction so the energy/performance trade-off the conclusions talk
//! about is visible.
//!
//! ```bash
//! cargo run -p caem-bench --release --bin netperf
//! ```

use caem_bench::{apply_quick, emit, policy_label, quick_mode, seed_from_args};
use caem_metrics::report::{Column, Table};
use caem_simcore::time::Duration;
use caem_wsnsim::sweep::{load_sweep, PAPER_POLICIES};
use caem_wsnsim::ScenarioConfig;

fn main() {
    let seed = seed_from_args();
    let quick = quick_mode();
    let loads: Vec<f64> = if quick {
        vec![5.0, 15.0]
    } else {
        vec![5.0, 10.0, 15.0, 20.0, 25.0, 30.0]
    };
    let horizon_s: u64 = if quick { 200 } else { 600 };

    let points = load_sweep(&loads, |policy, load| {
        apply_quick(ScenarioConfig::paper_default(policy, load, seed), quick)
            .with_duration(Duration::from_secs(horizon_s))
    });

    // One table per metric, matching how the long version would plot them.
    for (metric, extractor) in [
        (
            "average packet delay (ms)",
            Box::new(|r: &caem_wsnsim::SimulationResult| r.perf.average_delay_ms())
                as Box<dyn Fn(&caem_wsnsim::SimulationResult) -> f64>,
        ),
        (
            "aggregate throughput (kbps)",
            Box::new(|r: &caem_wsnsim::SimulationResult| r.perf.throughput_kbps()),
        ),
        (
            "successful delivery rate",
            Box::new(|r: &caem_wsnsim::SimulationResult| r.delivery_rate()),
        ),
    ] {
        let mut columns = vec![Column::new("added_traffic_load_pps", loads.clone())];
        for &policy in &PAPER_POLICIES {
            let values: Vec<f64> = points
                .iter()
                .map(|p| extractor(p.comparison.get(policy)))
                .collect();
            columns.push(Column::new(policy_label(policy), values));
        }
        let table = Table::new(format!("E7 — {metric} versus traffic load"), columns);
        emit(&table);
    }
}
