//! Experiment E7 (long-version extension) **plus** the engine throughput
//! harness.
//!
//! Two jobs in one binary:
//!
//! 1. Network-performance metrics versus load — average packet delay,
//!    aggregate throughput and successful delivery rate for the three
//!    protocols (the Section IV-A metrics whose plots the short paper defers
//!    to its long version).
//! 2. A wall-clock throughput benchmark of the simulator itself: every
//!    scenario is run serially under a timer and reported as *events/sec*,
//!    giving the repository a perf trajectory across PRs.  A node-count
//!    scaling sweep (1k → 1M nodes at constant deployment density) rides
//!    along to track how throughput and resident memory scale with network
//!    size.  Results are written to `BENCH_netperf.json` at the repository
//!    root.
//!
//! A third job rides along behind `--saturate`: the **record-sink
//! saturation benchmark**, which hammers the experiment store's append path
//! from N threads and records the throughput ceiling of the old
//! mutex-serialized sink next to the lock-free collector that replaced it
//! (plus the collector's worker-buffered variant).  The run fails loudly if
//! the lock-free path falls below the mutex baseline it superseded.
//!
//! ```bash
//! cargo run -p caem-bench --release --bin netperf
//! cargo run -p caem-bench --release --bin netperf -- --quick   # smoke variant
//! cargo run -p caem-bench --release --bin netperf -- --saturate
//! cargo run -p caem-bench --release --bin netperf -- --saturate --quick
//! ```

use std::time::Instant;

use caem::policy::PolicyKind;
use caem_bench::profrpt::{self, repeat_stats, time_breakdown_json, ProfBudget, RepeatStats};
use caem_bench::{apply_quick, emit, policy_label, rss, NetperfArgs};
use caem_metrics::prof::{self, Breakdown};
use caem_metrics::report::{Column, Table};
use caem_metrics::Commute;
use caem_simcore::stats::{ConcurrentStats, RunningStats};
use caem_simcore::time::Duration;
use caem_wsnsim::experiment::{ExperimentSpec, ScenarioSpec, METRIC_NAMES};
use caem_wsnsim::sweep::{LoadSweepPoint, PolicyComparison, PAPER_POLICIES};
use caem_wsnsim::{ExperimentStore, JobRecord, ScenarioConfig, SimulationRun};

/// Timing record for one point of the node-count scaling sweep.
struct ScalePoint {
    nodes: usize,
    sim_seconds: f64,
    wall_clock_s: f64,
    events: u64,
    events_per_sec: f64,
    rss_mb: Option<f64>,
    peak_rss_mb: Option<f64>,
}

/// Run the node-count scaling sweep: the same paper-density deployment
/// (0.01 nodes/m², see [`ScenarioConfig::scaled`]) grown from 1k toward a
/// million nodes, each point timed over a shrinking sim horizon so the
/// sweep stays affordable.  `peak_rss_mb` is the process high-water mark,
/// which only grows — running the points in ascending node order keeps the
/// figure attributable to the point that recorded it.
fn node_scaling_sweep(seed: u64, quick: bool) -> Vec<ScalePoint> {
    let grid: &[(usize, u64)] = if quick {
        &[(1_000, 10), (10_000, 5)]
    } else {
        &[(1_000, 60), (10_000, 30), (100_000, 10), (1_000_000, 3)]
    };
    let mut points = Vec::with_capacity(grid.len());
    for &(nodes, horizon_s) in grid {
        let cfg = ScenarioConfig::scaled(nodes, PolicyKind::Scheme1Adaptive, 1.0, seed)
            .with_duration(Duration::from_secs(horizon_s));
        let started = Instant::now();
        let result = SimulationRun::new(cfg).run();
        let wall_clock_s = started.elapsed().as_secs_f64();
        points.push(ScalePoint {
            nodes,
            sim_seconds: horizon_s as f64,
            wall_clock_s,
            events: result.events_processed,
            events_per_sec: result.events_processed as f64 / wall_clock_s.max(1e-9),
            rss_mb: rss::current_rss_mb(),
            peak_rss_mb: rss::peak_rss_mb(),
        });
    }
    points
}

/// Timing record for one simulated scenario, summarized over `repeats`
/// timed runs (the simulation output is deterministic across repeats —
/// only the wall clocks differ).
struct ScenarioTiming {
    policy: &'static str,
    load_pps: f64,
    /// Mean wall time over the repeats.
    wall_clock_s: f64,
    events: u64,
    /// rten-bench-shape statistics of events/sec over the repeats.
    eps: RepeatStats,
    sim_seconds: f64,
}

fn main() {
    let args = NetperfArgs::from_env_or_exit("netperf");
    if args.saturate {
        run_saturation(&args);
        return;
    }
    let NetperfArgs { seed, quick, .. } = args;
    let repeats = args.repeats.unwrap_or(1);
    if args.profile {
        prof::set_enabled(true);
    }
    if args.trace_out.is_some() {
        // Trace only the first repeat of the first scenario: one run's
        // span structure is the story; six scenarios x repeats would be
        // an unreadable wall of slices.
        prof::start_trace(2_000_000);
    }
    let loads: Vec<f64> = if quick {
        vec![5.0, 15.0]
    } else {
        vec![5.0, 10.0, 15.0, 20.0, 25.0, 30.0]
    };
    let horizon_s: u64 = if quick { 200 } else { 600 };

    // The experiment engine enumerates the (load × policy) grid into its
    // flat job list (loads as scenarios, one seed); the jobs are then run
    // *serially* under individual timers — serial execution keeps the
    // wall-clock attribution per scenario clean even on many-core hosts (a
    // parallel fan-out would overlap the intervals).
    let spec = ExperimentSpec::paper_policies(
        loads
            .iter()
            .map(|&load| {
                ScenarioSpec::new(
                    format!("load_{load}pps"),
                    apply_quick(
                        ScenarioConfig::paper_default(PAPER_POLICIES[0], load, seed),
                        quick,
                    )
                    .with_duration(Duration::from_secs(horizon_s)),
                )
            })
            .collect(),
        seed,
        1,
    );
    let mut timings: Vec<ScenarioTiming> = Vec::new();
    let mut points: Vec<LoadSweepPoint> = Vec::new();
    let mut breakdown = Breakdown::new();
    let mut trace_pending = args.trace_out.is_some();
    let bench_started = Instant::now();
    for job in spec.enumerate_jobs() {
        let load = loads[job.scenario];
        let sim_seconds = job.config.duration.as_secs_f64();
        let scenario = format!("{}@{load}pps", policy_label(job.policy));
        let mut walls: Vec<f64> = Vec::with_capacity(repeats);
        let mut eps_samples: Vec<f64> = Vec::with_capacity(repeats);
        let mut result = None;
        for _ in 0..repeats {
            let started = Instant::now();
            let run_result = SimulationRun::new(job.config.clone()).run();
            let wall_clock_s = started.elapsed().as_secs_f64();
            if trace_pending {
                trace_pending = false;
                write_trace(args.trace_out.as_deref().expect("trace path"), &scenario);
            }
            walls.push(wall_clock_s);
            eps_samples.push(run_result.events_processed as f64 / wall_clock_s.max(1e-9));
            if args.profile {
                breakdown.observe(&scenario, &run_result.profile);
            }
            result = Some(run_result);
        }
        let result = result.expect("at least one repeat");
        timings.push(ScenarioTiming {
            policy: policy_label(job.policy),
            load_pps: load,
            wall_clock_s: repeat_stats(&walls).expect("repeats >= 1").mean,
            events: result.events_processed,
            eps: repeat_stats(&eps_samples).expect("repeats >= 1"),
            sim_seconds,
        });
        match points.last_mut() {
            Some(point) if point.load_pps == load => point.comparison.results.push(result),
            _ => points.push(LoadSweepPoint {
                load_pps: load,
                comparison: PolicyComparison {
                    results: vec![result],
                },
            }),
        }
    }
    let total_wall_s = bench_started.elapsed().as_secs_f64();

    // One table per metric, matching how the long version would plot them.
    for (metric, extractor) in [
        (
            "average packet delay (ms)",
            Box::new(|r: &caem_wsnsim::SimulationResult| r.perf.average_delay_ms())
                as Box<dyn Fn(&caem_wsnsim::SimulationResult) -> f64>,
        ),
        (
            "aggregate throughput (kbps)",
            Box::new(|r: &caem_wsnsim::SimulationResult| r.perf.throughput_kbps()),
        ),
        (
            "successful delivery rate",
            Box::new(|r: &caem_wsnsim::SimulationResult| r.delivery_rate()),
        ),
    ] {
        let mut columns = vec![Column::new("added_traffic_load_pps", loads.clone())];
        for &policy in &PAPER_POLICIES {
            let values: Vec<f64> = points
                .iter()
                .map(|p| extractor(p.comparison.get(policy)))
                .collect();
            columns.push(Column::new(policy_label(policy), values));
        }
        let table = Table::new(format!("E7 — {metric} versus traffic load"), columns);
        emit(&table);
    }

    // Engine throughput report.
    let total_events: u64 = timings.iter().map(|t| t.events).sum();
    let sum_scenario_wall: f64 = timings.iter().map(|t| t.wall_clock_s).sum();
    let aggregate_eps = total_events as f64 / sum_scenario_wall.max(1e-9);
    if repeats > 1 {
        println!("== engine throughput (events/sec over {repeats} repeats per scenario) ==");
        println!(
            "{:<24} {:>10} {:>12} {:>14} {:>12} {:>12} {:>12} {:>12}",
            "scenario",
            "load_pps",
            "wall_s",
            "events",
            "eps_min",
            "eps_mean",
            "eps_median",
            "eps_max"
        );
        for t in &timings {
            println!(
                "{:<24} {:>10.1} {:>12.4} {:>14} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
                t.policy,
                t.load_pps,
                t.wall_clock_s,
                t.events,
                t.eps.min,
                t.eps.mean,
                t.eps.median,
                t.eps.max
            );
        }
    } else {
        println!("== engine throughput (events/sec, wall-clock per scenario) ==");
        println!(
            "{:<24} {:>10} {:>12} {:>14} {:>12}",
            "scenario", "load_pps", "wall_s", "events", "events/sec"
        );
        for t in &timings {
            println!(
                "{:<24} {:>10.1} {:>12.4} {:>14} {:>12.0}",
                t.policy, t.load_pps, t.wall_clock_s, t.events, t.eps.mean
            );
        }
    }
    println!(
        "aggregate: {total_events} events in {sum_scenario_wall:.3} s = {aggregate_eps:.0} events/sec"
    );

    // Node-count scaling: how far the structure-of-arrays engine stretches.
    let scaling = node_scaling_sweep(seed, quick);
    println!("== node-count scaling (constant density, scheme 1, 1 pkt/s/node) ==");
    println!(
        "{:>10} {:>8} {:>10} {:>14} {:>12} {:>10}",
        "nodes", "sim_s", "wall_s", "events", "events/sec", "rss_mb"
    );
    for p in &scaling {
        println!(
            "{:>10} {:>8.0} {:>10.3} {:>14} {:>12.0} {:>10.0}",
            p.nodes,
            p.sim_seconds,
            p.wall_clock_s,
            p.events,
            p.events_per_sec,
            p.rss_mb.unwrap_or(f64::NAN)
        );
    }

    let scenarios: Vec<serde_json::Value> = timings
        .iter()
        .map(|t| {
            serde_json::json!({
                "policy": t.policy,
                "load_pps": t.load_pps,
                "wall_clock_s": t.wall_clock_s,
                "events": t.events,
                "events_per_sec": t.eps.mean,
                "repeats": repeats,
                "events_per_sec_stats": t.eps.to_json(),
                "sim_seconds": t.sim_seconds,
            })
        })
        .collect();
    let mut report = serde_json::json!({
        "benchmark": "netperf",
        "seed": seed,
        "quick": quick,
        "repeats": repeats,
        "scenario_count": timings.len(),
        "wall_clock_s": sum_scenario_wall,
        "harness_wall_clock_s": total_wall_s,
        "total_events": total_events,
        "events_per_sec": aggregate_eps,
        "scenarios": scenarios,
        "node_scaling": scaling
            .iter()
            .map(|p| {
                serde_json::json!({
                    "nodes": p.nodes,
                    "sim_seconds": p.sim_seconds,
                    "wall_clock_s": p.wall_clock_s,
                    "events": p.events,
                    "events_per_sec": p.events_per_sec,
                    "rss_mb": p.rss_mb,
                    "peak_rss_mb": p.peak_rss_mb,
                })
            })
            .collect::<Vec<serde_json::Value>>(),
    });
    // Quick smoke runs measure a reduced scenario; route them to a separate
    // (gitignored) file so they can never clobber the committed perf
    // trajectory recorded from full runs.
    let out_path = bench_json_path(quick);
    // The scenario sweep and the `--saturate` mode share the report file;
    // each rewrite carries the other mode's section forward.  The profile
    // breakdown is carried the same way when this run did not profile.
    let previous = load_json(out_path);
    if let Some(saturation) = previous
        .as_ref()
        .and_then(|v| v.get("sink_saturation").cloned())
    {
        set_key(&mut report, "sink_saturation", saturation);
    }
    if args.profile {
        print!("{}", breakdown.render("netperf scenario sweep"));
        profrpt::print_run_event_counters();
        set_key(
            &mut report,
            "time_breakdown",
            time_breakdown_json(&breakdown),
        );
    } else if let Some(previous_breakdown) = previous
        .as_ref()
        .and_then(|v| v.get("time_breakdown").cloned())
    {
        set_key(&mut report, "time_breakdown", previous_breakdown);
    }
    write_json(out_path, &report);

    // The CI regression gate: fail loudly when any subsystem's mean share
    // regressed past its committed budget plus noise band.
    if let Some(budget_path) = args.check_budget.as_deref() {
        let budget = ProfBudget::load(budget_path).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        let violations = budget.check(&breakdown);
        if violations.is_empty() {
            println!(
                "budget gate: all {} subsystems within budget",
                budget.entries.len()
            );
        } else {
            for v in &violations {
                eprintln!("FAIL: {v}");
            }
            std::process::exit(1);
        }
    }
}

/// Stop the Chrome trace started in `main` and write it to `path`.
fn write_trace(path: &str, scenario: &str) {
    let Some((json, events, dropped)) = prof::stop_trace_json() else {
        eprintln!("trace capture produced no events");
        return;
    };
    match std::fs::write(path, json) {
        Ok(()) => {
            println!("wrote {path} ({events} trace events, first run of {scenario})");
            if dropped > 0 {
                println!("note: {dropped} trace events dropped at the capacity bound");
            }
        }
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// The committed perf-trajectory file (full runs) or its gitignored quick
/// sibling, at the repository root.
fn bench_json_path(quick: bool) -> &'static str {
    if quick {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_netperf_quick.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netperf.json")
    }
}

fn load_json(path: &str) -> Option<serde_json::Value> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::parse(&text).ok()
}

/// Set `key` in a JSON object value, replacing an existing entry in place.
fn set_key(report: &mut serde_json::Value, key: &str, value: serde_json::Value) {
    if let serde_json::Value::Map(entries) = report {
        if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
    }
}

fn write_json(path: &str, report: &serde_json::Value) {
    let text = serde_json::to_string_pretty(report).expect("report serializes");
    match std::fs::write(path, text) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

// ---------------------------------------------------------------------------
// --saturate: the record-sink saturation benchmark.
// ---------------------------------------------------------------------------

/// One thread count's worth of sink measurements.
struct SaturationPoint {
    threads: usize,
    records: usize,
    mutex_rps: f64,
    lockfree_rps: f64,
    buffered_rps: f64,
    /// Per-append latency of the mutex path (µs), merged across threads
    /// with the [`Commute`] law.
    mutex_append_us: RunningStats,
    /// Per-append latency of the lock-free path (µs), accumulated through
    /// a shared [`ConcurrentStats`] while the threads hammer the sink.
    lockfree_append_us: RunningStats,
}

/// A synthetic record shaped like a real job result (same field count and
/// rough line length), so the benchmark stresses the serialization and IO
/// path the grid actually uses.
fn synth_record(seed: u64) -> JobRecord {
    JobRecord {
        scenario_index: 0,
        scenario: "saturation".into(),
        policy_index: 1,
        policy: PolicyKind::Scheme1Adaptive,
        seed,
        config_hash: 0x5a7e_5a7e,
        metrics: vec![Some(0.123_456_789); METRIC_NAMES.len()],
        generated: 1_000,
        delivered: 900,
        events_processed: 123_456,
        end_time_nanos: 600_000_000_000,
        delay_p50_ms: Some(12.5),
        delay_p95_ms: Some(80.0),
        delay_p99_ms: None,
    }
}

fn saturation_store_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "caem_netperf_saturate_{}_{tag}.jsonl",
        std::process::id()
    ))
}

/// Drive the mutex-serialized baseline sink from `threads` threads and
/// return (records/sec, merged per-append latency in µs).
fn time_mutex_sink(threads: usize, per_thread: usize) -> (f64, RunningStats) {
    let path = saturation_store_path("mutex");
    std::fs::remove_file(&path).ok();
    let total = threads * per_thread;
    let (wall, latencies) = {
        let mut store = ExperimentStore::open(&path).expect("open saturation store");
        let sink = store.mutex_sink();
        let started = Instant::now();
        let latencies: Vec<RunningStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let sink = &sink;
                    scope.spawn(move || {
                        let mut lat = RunningStats::new();
                        let mut record = synth_record(0);
                        for i in 0..per_thread {
                            record.seed = (t * per_thread + i) as u64;
                            let t0 = Instant::now();
                            sink.append(&record).expect("mutex sink append failed");
                            lat.push(t0.elapsed().as_nanos() as f64 / 1_000.0);
                        }
                        lat
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        (started.elapsed().as_secs_f64(), latencies)
    };
    let written = ExperimentStore::load(&path).expect("reload saturation store");
    assert_eq!(written.len(), total, "mutex sink dropped records");
    std::fs::remove_file(&path).ok();
    let merged = Commute::merge_all(latencies).unwrap_or_default();
    (total as f64 / wall.max(1e-9), merged)
}

/// Drive the lock-free collector sink from `threads` threads (worker-side
/// buffering at `flush_bytes`; 0 = ship immediately, the engine default)
/// and return (records/sec, per-append latency in µs).  The wall clock
/// includes collector shutdown, i.e. every record fully written.
fn time_collector_sink(
    threads: usize,
    per_thread: usize,
    flush_bytes: usize,
) -> (f64, RunningStats) {
    let path = saturation_store_path("lockfree");
    std::fs::remove_file(&path).ok();
    let total = threads * per_thread;
    let latency = ConcurrentStats::new();
    let wall = {
        let mut store = ExperimentStore::open(&path).expect("open saturation store");
        let started = Instant::now();
        store
            .with_buffered_sink(flush_bytes, |sink| {
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let latency = &latency;
                        scope.spawn(move || {
                            let mut record = synth_record(0);
                            for i in 0..per_thread {
                                record.seed = (t * per_thread + i) as u64;
                                let t0 = Instant::now();
                                sink.append(&record);
                                latency.record(t0.elapsed().as_nanos() as f64 / 1_000.0);
                            }
                        });
                    }
                });
            })
            .expect("collector sink run failed");
        started.elapsed().as_secs_f64()
    };
    let written = ExperimentStore::load(&path).expect("reload saturation store");
    assert_eq!(written.len(), total, "collector sink dropped records");
    std::fs::remove_file(&path).ok();
    (total as f64 / wall.max(1e-9), latency.snapshot())
}

/// The `--saturate` mode: sweep thread counts over the mutex baseline, the
/// lock-free collector and its buffered variant; print the ceilings; merge
/// a `sink_saturation` section into the netperf JSON; exit nonzero if the
/// lock-free path regresses below the mutex baseline at the top thread
/// count.
fn run_saturation(args: &NetperfArgs) {
    let quick = args.quick;
    let top = args.threads.unwrap_or(if quick { 8 } else { 32 });
    let mut thread_counts: Vec<usize> = Vec::new();
    let mut n = 1;
    while n < top {
        thread_counts.push(n);
        n *= 2;
    }
    thread_counts.push(top);
    let per_thread = if quick { 5_000 } else { 20_000 };

    println!("== record-sink saturation (mutex baseline vs lock-free collector) ==");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>14} {:>10} {:>12} {:>12}",
        "threads",
        "records",
        "mutex_rec/s",
        "lockfree_rec/s",
        "buffered_rec/s",
        "speedup",
        "mutex_us",
        "lockfree_us"
    );
    let mut points: Vec<SaturationPoint> = Vec::new();
    for &threads in &thread_counts {
        let records = threads * per_thread;
        let (mutex_rps, mutex_append_us) = time_mutex_sink(threads, per_thread);
        let (lockfree_rps, lockfree_append_us) = time_collector_sink(threads, per_thread, 0);
        let (buffered_rps, _) = time_collector_sink(threads, per_thread, 8 * 1024);
        println!(
            "{:>8} {:>10} {:>14.0} {:>14.0} {:>14.0} {:>9.2}x {:>12.2} {:>12.2}",
            threads,
            records,
            mutex_rps,
            lockfree_rps,
            buffered_rps,
            lockfree_rps / mutex_rps.max(1e-9),
            mutex_append_us.mean(),
            lockfree_append_us.mean()
        );
        points.push(SaturationPoint {
            threads,
            records,
            mutex_rps,
            lockfree_rps,
            buffered_rps,
            mutex_append_us,
            lockfree_append_us,
        });
    }

    let top_point = points.last().expect("at least one thread count");
    let speedup_at_top = top_point.lockfree_rps / top_point.mutex_rps.max(1e-9);
    // Quick mode runs on noisy shared CI runners: allow 10 % of jitter.
    // Full runs hold the hard line — the lock-free path must win outright.
    let threshold = if quick { 0.9 } else { 1.0 };
    let passed = top_point.lockfree_rps >= threshold * top_point.mutex_rps;
    println!(
        "ceiling at {} threads: mutex {:.0} rec/s, lock-free {:.0} rec/s ({speedup_at_top:.2}x)",
        top_point.threads, top_point.mutex_rps, top_point.lockfree_rps
    );

    let section = serde_json::json!({
        "seed": args.seed,
        "quick": quick,
        "per_thread_records": per_thread,
        "points": points.iter().map(|p| serde_json::json!({
            "threads": p.threads,
            "records": p.records,
            "mutex_recs_per_sec": p.mutex_rps,
            "lockfree_recs_per_sec": p.lockfree_rps,
            "buffered_recs_per_sec": p.buffered_rps,
            "speedup": p.lockfree_rps / p.mutex_rps.max(1e-9),
            "mutex_append_mean_us": p.mutex_append_us.mean(),
            "mutex_append_max_us": p.mutex_append_us.max(),
            "lockfree_append_mean_us": p.lockfree_append_us.mean(),
            "lockfree_append_max_us": p.lockfree_append_us.max(),
        })).collect::<Vec<serde_json::Value>>(),
        "gate": serde_json::json!({
            "threads": top_point.threads,
            "mutex_recs_per_sec": top_point.mutex_rps,
            "lockfree_recs_per_sec": top_point.lockfree_rps,
            "speedup": speedup_at_top,
            "threshold": threshold,
            "passed": passed,
        }),
    });
    let out_path = bench_json_path(quick);
    let mut report = load_json(out_path)
        .unwrap_or_else(|| serde_json::json!({ "benchmark": "netperf", "quick": quick }));
    set_key(&mut report, "sink_saturation", section);
    write_json(out_path, &report);

    if !passed {
        eprintln!(
            "FAIL: lock-free sink ({:.0} rec/s) fell below {threshold:.0e}x the mutex baseline \
             ({:.0} rec/s) at {} threads",
            top_point.lockfree_rps, top_point.mutex_rps, top_point.threads
        );
        std::process::exit(1);
    }
}
