//! Experiment E7 (long-version extension) **plus** the engine throughput
//! harness.
//!
//! Two jobs in one binary:
//!
//! 1. Network-performance metrics versus load — average packet delay,
//!    aggregate throughput and successful delivery rate for the three
//!    protocols (the Section IV-A metrics whose plots the short paper defers
//!    to its long version).
//! 2. A wall-clock throughput benchmark of the simulator itself: every
//!    scenario is run serially under a timer and reported as *events/sec*,
//!    giving the repository a perf trajectory across PRs.  A node-count
//!    scaling sweep (1k → 1M nodes at constant deployment density) rides
//!    along to track how throughput and resident memory scale with network
//!    size.  Results are written to `BENCH_netperf.json` at the repository
//!    root.
//!
//! ```bash
//! cargo run -p caem-bench --release --bin netperf
//! cargo run -p caem-bench --release --bin netperf -- --quick   # smoke variant
//! ```

use std::time::Instant;

use caem::policy::PolicyKind;
use caem_bench::{apply_quick, emit, policy_label, rss, FigureArgs};
use caem_metrics::report::{Column, Table};
use caem_simcore::time::Duration;
use caem_wsnsim::experiment::{ExperimentSpec, ScenarioSpec};
use caem_wsnsim::sweep::{LoadSweepPoint, PolicyComparison, PAPER_POLICIES};
use caem_wsnsim::{ScenarioConfig, SimulationRun};

/// Timing record for one point of the node-count scaling sweep.
struct ScalePoint {
    nodes: usize,
    sim_seconds: f64,
    wall_clock_s: f64,
    events: u64,
    events_per_sec: f64,
    rss_mb: Option<f64>,
    peak_rss_mb: Option<f64>,
}

/// Run the node-count scaling sweep: the same paper-density deployment
/// (0.01 nodes/m², see [`ScenarioConfig::scaled`]) grown from 1k toward a
/// million nodes, each point timed over a shrinking sim horizon so the
/// sweep stays affordable.  `peak_rss_mb` is the process high-water mark,
/// which only grows — running the points in ascending node order keeps the
/// figure attributable to the point that recorded it.
fn node_scaling_sweep(seed: u64, quick: bool) -> Vec<ScalePoint> {
    let grid: &[(usize, u64)] = if quick {
        &[(1_000, 10), (10_000, 5)]
    } else {
        &[(1_000, 60), (10_000, 30), (100_000, 10), (1_000_000, 3)]
    };
    let mut points = Vec::with_capacity(grid.len());
    for &(nodes, horizon_s) in grid {
        let cfg = ScenarioConfig::scaled(nodes, PolicyKind::Scheme1Adaptive, 1.0, seed)
            .with_duration(Duration::from_secs(horizon_s));
        let started = Instant::now();
        let result = SimulationRun::new(cfg).run();
        let wall_clock_s = started.elapsed().as_secs_f64();
        points.push(ScalePoint {
            nodes,
            sim_seconds: horizon_s as f64,
            wall_clock_s,
            events: result.events_processed,
            events_per_sec: result.events_processed as f64 / wall_clock_s.max(1e-9),
            rss_mb: rss::current_rss_mb(),
            peak_rss_mb: rss::peak_rss_mb(),
        });
    }
    points
}

/// Timing record for one simulated scenario.
struct ScenarioTiming {
    policy: &'static str,
    load_pps: f64,
    wall_clock_s: f64,
    events: u64,
    events_per_sec: f64,
    sim_seconds: f64,
}

fn main() {
    let FigureArgs { seed, quick } = FigureArgs::from_env_or_exit("netperf");
    let loads: Vec<f64> = if quick {
        vec![5.0, 15.0]
    } else {
        vec![5.0, 10.0, 15.0, 20.0, 25.0, 30.0]
    };
    let horizon_s: u64 = if quick { 200 } else { 600 };

    // The experiment engine enumerates the (load × policy) grid into its
    // flat job list (loads as scenarios, one seed); the jobs are then run
    // *serially* under individual timers — serial execution keeps the
    // wall-clock attribution per scenario clean even on many-core hosts (a
    // parallel fan-out would overlap the intervals).
    let spec = ExperimentSpec::paper_policies(
        loads
            .iter()
            .map(|&load| {
                ScenarioSpec::new(
                    format!("load_{load}pps"),
                    apply_quick(
                        ScenarioConfig::paper_default(PAPER_POLICIES[0], load, seed),
                        quick,
                    )
                    .with_duration(Duration::from_secs(horizon_s)),
                )
            })
            .collect(),
        seed,
        1,
    );
    let mut timings: Vec<ScenarioTiming> = Vec::new();
    let mut points: Vec<LoadSweepPoint> = Vec::new();
    let bench_started = Instant::now();
    for job in spec.enumerate_jobs() {
        let load = loads[job.scenario];
        let sim_seconds = job.config.duration.as_secs_f64();
        let started = Instant::now();
        let result = SimulationRun::new(job.config).run();
        let wall_clock_s = started.elapsed().as_secs_f64();
        timings.push(ScenarioTiming {
            policy: policy_label(job.policy),
            load_pps: load,
            wall_clock_s,
            events: result.events_processed,
            events_per_sec: result.events_processed as f64 / wall_clock_s.max(1e-9),
            sim_seconds,
        });
        match points.last_mut() {
            Some(point) if point.load_pps == load => point.comparison.results.push(result),
            _ => points.push(LoadSweepPoint {
                load_pps: load,
                comparison: PolicyComparison {
                    results: vec![result],
                },
            }),
        }
    }
    let total_wall_s = bench_started.elapsed().as_secs_f64();

    // One table per metric, matching how the long version would plot them.
    for (metric, extractor) in [
        (
            "average packet delay (ms)",
            Box::new(|r: &caem_wsnsim::SimulationResult| r.perf.average_delay_ms())
                as Box<dyn Fn(&caem_wsnsim::SimulationResult) -> f64>,
        ),
        (
            "aggregate throughput (kbps)",
            Box::new(|r: &caem_wsnsim::SimulationResult| r.perf.throughput_kbps()),
        ),
        (
            "successful delivery rate",
            Box::new(|r: &caem_wsnsim::SimulationResult| r.delivery_rate()),
        ),
    ] {
        let mut columns = vec![Column::new("added_traffic_load_pps", loads.clone())];
        for &policy in &PAPER_POLICIES {
            let values: Vec<f64> = points
                .iter()
                .map(|p| extractor(p.comparison.get(policy)))
                .collect();
            columns.push(Column::new(policy_label(policy), values));
        }
        let table = Table::new(format!("E7 — {metric} versus traffic load"), columns);
        emit(&table);
    }

    // Engine throughput report.
    let total_events: u64 = timings.iter().map(|t| t.events).sum();
    let sum_scenario_wall: f64 = timings.iter().map(|t| t.wall_clock_s).sum();
    let aggregate_eps = total_events as f64 / sum_scenario_wall.max(1e-9);
    println!("== engine throughput (events/sec, wall-clock per scenario) ==");
    println!(
        "{:<24} {:>10} {:>12} {:>14} {:>12}",
        "scenario", "load_pps", "wall_s", "events", "events/sec"
    );
    for t in &timings {
        println!(
            "{:<24} {:>10.1} {:>12.4} {:>14} {:>12.0}",
            t.policy, t.load_pps, t.wall_clock_s, t.events, t.events_per_sec
        );
    }
    println!(
        "aggregate: {total_events} events in {sum_scenario_wall:.3} s = {aggregate_eps:.0} events/sec"
    );

    // Node-count scaling: how far the structure-of-arrays engine stretches.
    let scaling = node_scaling_sweep(seed, quick);
    println!("== node-count scaling (constant density, scheme 1, 1 pkt/s/node) ==");
    println!(
        "{:>10} {:>8} {:>10} {:>14} {:>12} {:>10}",
        "nodes", "sim_s", "wall_s", "events", "events/sec", "rss_mb"
    );
    for p in &scaling {
        println!(
            "{:>10} {:>8.0} {:>10.3} {:>14} {:>12.0} {:>10.0}",
            p.nodes,
            p.sim_seconds,
            p.wall_clock_s,
            p.events,
            p.events_per_sec,
            p.rss_mb.unwrap_or(f64::NAN)
        );
    }

    let scenarios: Vec<serde_json::Value> = timings
        .iter()
        .map(|t| {
            serde_json::json!({
                "policy": t.policy,
                "load_pps": t.load_pps,
                "wall_clock_s": t.wall_clock_s,
                "events": t.events,
                "events_per_sec": t.events_per_sec,
                "sim_seconds": t.sim_seconds,
            })
        })
        .collect();
    let report = serde_json::json!({
        "benchmark": "netperf",
        "seed": seed,
        "quick": quick,
        "scenario_count": timings.len(),
        "wall_clock_s": sum_scenario_wall,
        "harness_wall_clock_s": total_wall_s,
        "total_events": total_events,
        "events_per_sec": aggregate_eps,
        "scenarios": scenarios,
        "node_scaling": scaling
            .iter()
            .map(|p| {
                serde_json::json!({
                    "nodes": p.nodes,
                    "sim_seconds": p.sim_seconds,
                    "wall_clock_s": p.wall_clock_s,
                    "events": p.events,
                    "events_per_sec": p.events_per_sec,
                    "rss_mb": p.rss_mb,
                    "peak_rss_mb": p.peak_rss_mb,
                })
            })
            .collect::<Vec<serde_json::Value>>(),
    });
    // Quick smoke runs measure a reduced scenario; route them to a separate
    // (gitignored) file so they can never clobber the committed perf
    // trajectory recorded from full runs.
    let out_path = if quick {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_netperf_quick.json"
        )
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netperf.json")
    };
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    match std::fs::write(out_path, text) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }
}
