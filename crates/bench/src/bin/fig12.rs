//! Figure 12: standard deviation of queue length versus traffic load
//! (short-term fairness).
//!
//! As in the paper, buffers are made "substantially large" (unbounded here)
//! so the queue-length spread is measured without drops; the metric is the
//! snapshot standard deviation averaged over the run.  Scheme 1's adaptive
//! threshold keeps the spread lowest; Scheme 2's fixed threshold starves
//! bad-channel nodes and shows the largest spread.
//!
//! ```bash
//! cargo run -p caem-bench --release --bin fig12
//! ```

use caem_bench::{apply_quick, emit, policy_label, FigureArgs};
use caem_metrics::report::{Column, Table};
use caem_simcore::time::Duration;
use caem_wsnsim::sweep::{load_sweep, PAPER_POLICIES};
use caem_wsnsim::ScenarioConfig;

fn main() {
    let FigureArgs { seed, quick } = FigureArgs::from_env_or_exit("fig12");
    let loads: Vec<f64> = if quick {
        vec![5.0, 15.0]
    } else {
        vec![5.0, 10.0, 15.0, 20.0, 25.0]
    };
    let horizon_s: u64 = if quick { 200 } else { 600 };

    let points = load_sweep(&loads, |policy, load| {
        apply_quick(ScenarioConfig::paper_default(policy, load, seed), quick)
            .with_unbounded_buffers()
            .with_duration(Duration::from_secs(horizon_s))
    });

    let mut columns = vec![Column::new("added_traffic_load_pps", loads.clone())];
    for &policy in &PAPER_POLICIES {
        let values: Vec<f64> = points
            .iter()
            .map(|p| p.comparison.get(policy).fairness.mean_std_dev())
            .collect();
        columns.push(Column::new(
            format!("{}_queue_stddev", policy_label(policy)),
            values,
        ));
    }
    let table = Table::new(
        "Fig. 12 — Standard deviation of queue length versus traffic load (unbounded buffers)",
        columns,
    );
    emit(&table);
}
