//! Figure 10: network lifetime versus added traffic load.
//!
//! The per-node Poisson rate is swept from 5 to 30 packets/s; network
//! lifetime is the time until 80 % of the nodes have exhausted their
//! batteries.  All curves fall with load; Scheme 2 lives longest, Scheme 1's
//! advantage over pure LEACH shrinks as saturation forces its threshold down
//! to the lowest class.
//!
//! ```bash
//! cargo run -p caem-bench --release --bin fig10
//! ```

use caem_bench::{apply_quick, emit, policy_label, FigureArgs};
use caem_metrics::report::{Column, Table};
use caem_simcore::time::Duration;
use caem_wsnsim::sweep::{load_sweep, PAPER_POLICIES};
use caem_wsnsim::ScenarioConfig;

fn main() {
    let FigureArgs { seed, quick } = FigureArgs::from_env_or_exit("fig10");
    let loads: Vec<f64> = if quick {
        vec![5.0, 15.0]
    } else {
        vec![5.0, 10.0, 15.0, 20.0, 25.0, 30.0]
    };
    let horizon_s: u64 = if quick { 300 } else { 2_500 };

    let points = load_sweep(&loads, |policy, load| {
        apply_quick(ScenarioConfig::paper_default(policy, load, seed), quick)
            .with_duration(Duration::from_secs(horizon_s))
    });

    let mut columns = vec![Column::new("added_traffic_load_pps", loads.clone())];
    for &policy in &PAPER_POLICIES {
        let values: Vec<f64> = points
            .iter()
            .map(|p| {
                p.comparison
                    .get(policy)
                    .network_lifetime_secs(0.8)
                    .unwrap_or(horizon_s as f64)
            })
            .collect();
        columns.push(Column::new(
            format!("{}_lifetime_s", policy_label(policy)),
            values,
        ));
    }
    let table = Table::new(
        "Fig. 10 — Network lifetime versus traffic load (lifetime = 80% of nodes dead; \
         values clamped to the simulated horizon when the network outlived it)",
        columns,
    );
    emit(&table);
}
