//! `caem-serve`: the experiment service daemon and its client commands.
//!
//! One binary, four modes.  `--listen` runs the long-lived daemon: it
//! accepts grid-spec submissions, splits each accepted grid into shards and
//! multiplexes them across every socket worker that connects (workers
//! attach with `experiment --connect <addr>`; no shared filesystem).  The
//! other three modes are thin clients against a running daemon:
//!
//! ```bash
//! caem-serve --listen 127.0.0.1:7171 &                 # daemon
//! caem-serve --submit specs/zoo.json --addr 127.0.0.1:7171 --quick
//! caem-serve --status --addr 127.0.0.1:7171
//! caem-serve --fetch  --addr 127.0.0.1:7171 --out report.json
//! ```
//!
//! A fetched report is written **verbatim** — the daemon renders it once
//! through the canonical aggregation pipeline, so the bytes are identical
//! to a single-process run of the same spec.

use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use caem_bench::cli::{ServeCli, ServeMode};
use caem_bench::DEFAULT_SEED;
use caem_wsnsim::serve::{
    serve_connection, ProtoError, ServiceClient, ServiceConfig, ServiceState, TcpLink,
};

const USAGE: &str = "\
usage: caem-serve <mode> [flags]

modes (exactly one selector):
  --listen <host:port>   run the daemon
    --shards <n>           shards per submitted grid (default 8, clamped to
                           the grid's job count)
    --lease-ttl <s>        shard-lease TTL override in seconds (wins over
                           each spec's distrib block)
    --heartbeat <s>        worker heartbeat-interval override in seconds
  --submit <file>        submit a grid-spec document to a daemon
    --addr <host:port>     daemon address (required)
    --quick                resolve the spec in quick mode
    --seed <n>             default seed when the document pins none
  --status               print a daemon's progress snapshot
    --addr <host:port>     daemon address (required)
  --fetch                fetch the most recent completed report
    --addr <host:port>     daemon address (required)
    --out <file>           write the report here instead of stdout
    --timeout <s>          give up after this many seconds (default 60)

Both `--flag value` and `--flag=value` work; unknown flags exit 2.";

fn die(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

fn die_usage(message: String) -> ! {
    eprintln!("error: {message}\n\n{USAGE}");
    std::process::exit(2);
}

/// Connection and transport failures are environmental, not usage errors:
/// exit 1, reserving exit 2 for the CLI/validation class.
fn fail(message: String) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

fn connect(addr: &str) -> TcpLink {
    match TcpStream::connect(addr) {
        Ok(stream) => TcpLink::new(stream),
        Err(e) => fail(format!("cannot connect to daemon at {addr}: {e}")),
    }
}

fn daemon(
    listen: &str,
    shards: Option<usize>,
    lease_ttl: Option<f64>,
    heartbeat: Option<f64>,
) -> ! {
    let mut cfg = ServiceConfig::default();
    if let Some(n) = shards {
        cfg.shards_per_grid = n;
    }
    cfg.lease_ttl = lease_ttl.map(Duration::from_secs_f64);
    cfg.heartbeat = heartbeat.map(Duration::from_secs_f64);
    let state = ServiceState::shared(cfg);
    let listener = TcpListener::bind(listen)
        .unwrap_or_else(|e| fail(format!("cannot listen on {listen}: {e}")));
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| listen.to_string());
    println!("caem-serve: listening on {bound}");
    for incoming in listener.incoming() {
        match incoming {
            Ok(stream) => {
                let state = state.clone();
                std::thread::spawn(move || {
                    let mut link = TcpLink::new(stream);
                    serve_connection(&mut link, &state);
                });
            }
            Err(e) => eprintln!("caem-serve: accept failed: {e}"),
        }
    }
    // `incoming()` never returns None; reaching here means the listener died.
    fail("listener closed unexpectedly".to_string());
}

fn submit(addr: &str, file: &str, quick: bool, seed: Option<u64>) {
    let text = std::fs::read_to_string(file)
        .unwrap_or_else(|e| die(format!("cannot read spec file {file}: {e}")));
    let mut link = connect(addr);
    let mut client = ServiceClient::new(&mut link);
    match client.submit(&text, quick, seed.unwrap_or(DEFAULT_SEED)) {
        Ok(sub) => println!(
            "submitted `{}` ({} jobs) as grid {:016x}",
            sub.name, sub.jobs, sub.grid_hash
        ),
        // The daemon's validation verdict (a rendered ConfigError or a
        // rejected shape): the same exit-2 class as local spec parsing.
        Err(ProtoError::Rejected(reason)) => die(format!("daemon rejected {file}: {reason}")),
        Err(e) => fail(format!("submit to {addr} failed: {e}")),
    }
}

fn status(addr: &str) {
    let mut link = connect(addr);
    let mut client = ServiceClient::new(&mut link);
    let snap = client
        .status()
        .unwrap_or_else(|e| fail(format!("status from {addr} failed: {e}")));
    match &snap.active {
        Some(p) => println!(
            "active grid `{}`: {}/{} jobs settled ({} quarantined), {}/{} shards done",
            p.name, p.settled, p.jobs, p.quarantined, p.shards_done, p.shard_count
        ),
        None => println!("no active grid"),
    }
    println!(
        "{} grid(s) queued behind it, {} completed, {} worker(s) connected",
        snap.queued, snap.completed, snap.workers
    );
    if let Some(events) = &snap.events {
        println!("{events}");
    }
}

fn fetch(addr: &str, out: Option<&str>, timeout: Option<f64>) {
    let mut link = connect(addr);
    let mut client = ServiceClient::new(&mut link);
    let budget = Duration::from_secs_f64(timeout.unwrap_or(60.0));
    let report = client
        .fetch_report(budget)
        .unwrap_or_else(|e| fail(format!("fetch from {addr} failed: {e}")));
    match out {
        // Verbatim bytes: this is what CI diffs against the single-process
        // artifact.
        Some(path) => match std::fs::write(path, &report) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => fail(format!("could not write {path}: {e}")),
        },
        None => print!("{report}"),
    }
}

fn main() {
    let cli = ServeCli::from_env().unwrap_or_else(|e| die_usage(e.to_string()));
    match &cli.mode {
        ServeMode::Daemon {
            listen,
            shards,
            lease_ttl,
            heartbeat,
        } => daemon(listen, *shards, *lease_ttl, *heartbeat),
        ServeMode::Submit {
            addr,
            file,
            quick,
            seed,
        } => submit(addr, file, *quick, *seed),
        ServeMode::Status { addr } => status(addr),
        ServeMode::Fetch { addr, out, timeout } => fetch(addr, out.as_deref(), *timeout),
    }
}
