//! Stress/soak harness for large-scale runs.
//!
//! Steps one big simulation tick by tick through `SimulationRun::run_until`,
//! printing per-tick progress (events, events/sec, live nodes, pending
//! events, resident memory) and asserting the soak's health envelope at the
//! end: a peak-RSS ceiling and an events/sec floor.  Scenario shape (node
//! count, duration, churn, traffic) comes from a JSON spec file and/or
//! flags; flags override the spec.
//!
//! ```bash
//! cargo run -p caem-bench --release --bin stress -- --spec specs/stress_soak.json
//! cargo run -p caem-bench --release --bin stress -- --nodes 100000 --duration-s 10
//! ```
//!
//! Exit codes: `0` healthy, `2` bad command line or spec, `3` envelope
//! violated (RSS ceiling or events/sec floor).

use std::time::Instant;

use caem::policy::PolicyKind;
use caem_bench::cli::{option, ParsedArgs};
use caem_bench::{profrpt, rss, DEFAULT_SEED};
use caem_metrics::prof::{self, ProfKey, Profile};
use caem_simcore::time::{Duration, SimTime};
use caem_wsnsim::{ScenarioConfig, SimulationRun};

const USAGE: &str = "usage: stress [--spec FILE] [--nodes N] [--duration-s S] \
[--traffic-pps R] [--churn-mttf-s S] [--tick-s S] [--max-rss-mb MB] \
[--min-events-per-sec N] [--policy leach|scheme1|scheme2] [--seed N]";

/// The soak envelope: what to run and what to assert about it.
struct StressSpec {
    nodes: usize,
    duration_s: f64,
    traffic_pps: f64,
    churn_mttf_s: Option<f64>,
    tick_s: f64,
    max_rss_mb: Option<f64>,
    min_events_per_sec: Option<f64>,
    policy: PolicyKind,
    seed: u64,
}

impl Default for StressSpec {
    fn default() -> Self {
        StressSpec {
            nodes: 50_000,
            duration_s: 10.0,
            traffic_pps: 1.0,
            churn_mttf_s: None,
            tick_s: 2.0,
            max_rss_mb: None,
            min_events_per_sec: None,
            policy: PolicyKind::Scheme1Adaptive,
            seed: DEFAULT_SEED,
        }
    }
}

fn exit2(message: String) -> ! {
    eprintln!("error: {message}\n{USAGE}");
    std::process::exit(2);
}

fn parse_policy(text: &str) -> Result<PolicyKind, String> {
    match text {
        "leach" | "pure_leach" => Ok(PolicyKind::PureLeach),
        "scheme1" | "adaptive" => Ok(PolicyKind::Scheme1Adaptive),
        "scheme2" | "fixed" => Ok(PolicyKind::Scheme2Fixed),
        other => Err(format!(
            "unknown policy `{other}` (takes leach, scheme1 or scheme2)"
        )),
    }
}

/// Fold a JSON spec document into the defaults.  Unknown keys are errors —
/// a misspelled envelope key must not silently weaken the soak.
fn apply_spec_file(spec: &mut StressSpec, path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = serde_json::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))?;
    let serde_json::Value::Map(entries) = doc else {
        return Err(format!("{path}: spec must be a JSON object"));
    };
    for (key, value) in &entries {
        let field = format!("{path}: `{key}`");
        let number = |what: &str| {
            value
                .as_f64()
                .ok_or_else(|| format!("{field} takes {what}"))
        };
        match key.as_str() {
            "nodes" => spec.nodes = number("a node count")? as usize,
            "duration_s" => spec.duration_s = number("seconds")?,
            "traffic_pps" => spec.traffic_pps = number("packets/sec")?,
            "churn_mttf_s" => {
                spec.churn_mttf_s = if matches!(value, serde_json::Value::Null) {
                    None
                } else {
                    Some(number("seconds or null")?)
                }
            }
            "tick_s" => spec.tick_s = number("seconds")?,
            "max_rss_mb" => spec.max_rss_mb = Some(number("MiB")?),
            "min_events_per_sec" => spec.min_events_per_sec = Some(number("events/sec")?),
            "policy" => {
                let serde_json::Value::Str(text) = value else {
                    return Err(format!("{field} takes a policy name"));
                };
                spec.policy = parse_policy(text).map_err(|e| format!("{path}: {e}"))?;
            }
            "seed" => {
                spec.seed = value
                    .as_u64()
                    .ok_or_else(|| format!("{field} takes an unsigned integer"))?
            }
            other => return Err(format!("{path}: unknown spec key `{other}`")),
        }
    }
    Ok(())
}

fn flags_spec() -> Result<StressSpec, String> {
    let vocabulary = [
        option("--spec"),
        option("--nodes"),
        option("--duration-s"),
        option("--traffic-pps"),
        option("--churn-mttf-s"),
        option("--tick-s"),
        option("--max-rss-mb"),
        option("--min-events-per-sec"),
        option("--policy"),
        option("--seed"),
    ];
    let parsed =
        ParsedArgs::lex(std::env::args().skip(1), &vocabulary).map_err(|e| e.to_string())?;
    if let Some(extra) = parsed.positionals.first() {
        return Err(format!("unexpected argument `{extra}`"));
    }
    let mut spec = StressSpec::default();
    if let Some(path) = parsed.value("--spec") {
        apply_spec_file(&mut spec, path)?;
    }
    let number = |name: &'static str| -> Result<Option<f64>, String> {
        parsed
            .parsed::<f64>(name, "a number")
            .map_err(|e| e.to_string())
    };
    if let Some(n) = parsed
        .parsed::<usize>("--nodes", "a node count")
        .map_err(|e| e.to_string())?
    {
        spec.nodes = n;
    }
    if let Some(v) = number("--duration-s")? {
        spec.duration_s = v;
    }
    if let Some(v) = number("--traffic-pps")? {
        spec.traffic_pps = v;
    }
    if let Some(v) = number("--churn-mttf-s")? {
        spec.churn_mttf_s = Some(v);
    }
    if let Some(v) = number("--tick-s")? {
        spec.tick_s = v;
    }
    if let Some(v) = number("--max-rss-mb")? {
        spec.max_rss_mb = Some(v);
    }
    if let Some(v) = number("--min-events-per-sec")? {
        spec.min_events_per_sec = Some(v);
    }
    if let Some(text) = parsed.value("--policy") {
        spec.policy = parse_policy(text)?;
    }
    if let Some(seed) = parsed
        .parsed::<u64>("--seed", "an unsigned integer")
        .map_err(|e| e.to_string())?
    {
        spec.seed = seed;
    }
    if spec.nodes == 0 {
        return Err("nodes must be positive".to_string());
    }
    if !spec.duration_s.is_finite() || spec.duration_s <= 0.0 {
        return Err("duration_s must be positive".to_string());
    }
    if !spec.tick_s.is_finite() || spec.tick_s <= 0.0 {
        return Err("tick_s must be positive".to_string());
    }
    Ok(spec)
}

fn main() {
    let spec = flags_spec().unwrap_or_else(|e| exit2(e));
    // The soak always profiles: the per-tick time-share columns are how a
    // degrading subsystem is spotted mid-run, and when the envelope check
    // fails at the end the dominant subsystem is named in the violation.
    prof::set_enabled(true);

    let mut cfg = ScenarioConfig::scaled(spec.nodes, spec.policy, spec.traffic_pps, spec.seed)
        .with_duration(Duration::from_millis((spec.duration_s * 1000.0) as u64));
    if let Some(mttf) = spec.churn_mttf_s {
        cfg = cfg.with_churn_mttf_s(mttf);
    }

    println!(
        "== stress: {} nodes, {:.1} sim-s horizon, {:.2} pkt/s/node, churn mttf {} ==",
        spec.nodes,
        spec.duration_s,
        spec.traffic_pps,
        spec.churn_mttf_s
            .map(|s| format!("{s:.0} s"))
            .unwrap_or_else(|| "off".to_string()),
    );
    let deploy_started = Instant::now();
    let mut run = match SimulationRun::try_new(cfg) {
        Ok(run) => run,
        Err(e) => exit2(format!("invalid scenario: {e}")),
    };
    println!(
        "deployed in {:.2} s, rss {:.0} MiB, {} pending events",
        deploy_started.elapsed().as_secs_f64(),
        rss::current_rss_mb().unwrap_or(f64::NAN),
        run.pending_events(),
    );

    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10} {:>10} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "sim_s",
        "events",
        "events/s",
        "alive",
        "pending",
        "rss_mb",
        "mac%",
        "chan%",
        "phy%",
        "round%",
        "stat%"
    );
    let soak_started = Instant::now();
    let mut sim_s = 0.0f64;
    let mut prev_profile = Profile::new();
    while sim_s < spec.duration_s {
        sim_s = (sim_s + spec.tick_s).min(spec.duration_s);
        let tick_started = Instant::now();
        let events = run.run_until(SimTime::from_millis((sim_s * 1000.0) as u64));
        let tick_wall = tick_started.elapsed().as_secs_f64();
        // This tick's subsystem time shares: the delta of the run's
        // accumulated profile since the previous tick.
        let snapshot = run.profile().clone();
        let tick = snapshot.delta_since(&prev_profile);
        prev_profile = snapshot;
        let pct = |share: f64| share * 100.0;
        println!(
            "{:>8.1} {:>12} {:>12.0} {:>10} {:>10} {:>10.0} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
            sim_s,
            events,
            events as f64 / tick_wall.max(1e-9),
            run.alive_count(),
            run.pending_events(),
            rss::current_rss_mb().unwrap_or(f64::NAN),
            pct(tick.share(ProfKey::Mac)),
            pct(tick.share(ProfKey::Channel)),
            pct(tick.share(ProfKey::Phy)),
            pct(tick.share(ProfKey::ClusterElection) + tick.share(ProfKey::ClusterFormation)),
            pct(tick.share(ProfKey::StatsSnapshot)),
        );
    }
    let soak_wall = soak_started.elapsed().as_secs_f64();
    let total_events = run.events_processed();
    let events_per_sec = total_events as f64 / soak_wall.max(1e-9);
    let peak_rss = rss::peak_rss_mb();

    let result = run.finish();
    println!(
        "== done: {total_events} events in {soak_wall:.2} s = {events_per_sec:.0} events/sec =="
    );
    println!(
        "delivered {} / generated {} ({:.1} %), collisions {}, node failures {}, peak rss {:.0} MiB",
        result.perf.delivered(),
        result.perf.generated(),
        100.0 * result.delivery_rate(),
        result.collisions,
        result.node_failures,
        peak_rss.unwrap_or(f64::NAN),
    );

    let mut violations = Vec::new();
    if let (Some(ceiling), Some(peak)) = (spec.max_rss_mb, peak_rss) {
        if peak > ceiling {
            violations.push(format!(
                "peak rss {peak:.0} MiB exceeds the {ceiling:.0} MiB ceiling"
            ));
        }
    }
    if let Some(floor) = spec.min_events_per_sec {
        if events_per_sec < floor {
            violations.push(format!(
                "throughput {events_per_sec:.0} events/sec below the {floor:.0} floor"
            ));
        }
    }
    if !violations.is_empty() {
        // Name the subsystem that ate the most attributed time — the first
        // place to look when the envelope breaks.
        let dominant = profrpt::dominant_subsystem(&result.profile)
            .map(|(key, share)| {
                format!("{} ({:.1}% of attributed time)", key.label(), share * 100.0)
            })
            .unwrap_or_else(|| "unknown (no profile samples)".to_string());
        for v in &violations {
            eprintln!("SOAK VIOLATION: {v} — dominant subsystem: {dominant}");
        }
        std::process::exit(3);
    }
    println!("soak envelope satisfied");
}
