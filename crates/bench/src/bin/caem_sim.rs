//! General-purpose scenario runner: simulate any `ScenarioConfig` described
//! by a JSON file and print (or save) the resulting metrics as JSON.
//!
//! This is the "downstream user" entry point: write a config, run it, feed
//! the JSON into your own plots.
//!
//! ```bash
//! # dump the paper's default scenario as a starting point
//! cargo run -p caem-bench --release --bin caem_sim -- --dump-default > scenario.json
//! # edit scenario.json, then run it
//! cargo run -p caem-bench --release --bin caem_sim -- scenario.json
//! ```

use caem::policy::PolicyKind;
use caem_wsnsim::{ScenarioConfig, SimulationRun};

fn usage() -> ! {
    eprintln!(
        "usage: caem_sim [--dump-default] [scenario.json]\n\
         \n\
         --dump-default   print the paper's Table II scenario (Scheme 1, 5 pkt/s) as JSON\n\
         scenario.json    run the scenario described by the file and print a JSON report"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "--dump-default" {
        let cfg = ScenarioConfig::paper_default(PolicyKind::Scheme1Adaptive, 5.0, 1);
        println!(
            "{}",
            serde_json::to_string_pretty(&cfg).expect("config serializes")
        );
        return;
    }
    let path = &args[0];
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let cfg: ScenarioConfig = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });
    if let Err(e) = cfg.validate() {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    }
    eprintln!(
        "running {:?} with {} nodes at {:.1} pkt/s for {} (seed {})",
        cfg.policy,
        cfg.node_count,
        cfg.traffic.mean_rate_pps(),
        cfg.duration,
        cfg.seed
    );
    let result = SimulationRun::new(cfg).run();

    // A flat JSON report: easy to consume from any plotting tool.
    let report = serde_json::json!({
        "policy": format!("{:?}", result.policy),
        "traffic_rate_pps": result.traffic_rate_pps,
        "seed": result.seed,
        "end_time_s": result.end_time.as_secs_f64(),
        "packets_generated": result.perf.generated(),
        "packets_delivered": result.perf.delivered(),
        "delivery_rate": result.delivery_rate(),
        "average_delay_ms": result.perf.average_delay_ms(),
        "p95_delay_ms": result.perf.delay_quantile_ms(0.95),
        "throughput_kbps": result.perf.throughput_kbps(),
        "bursts": result.bursts,
        "collisions": result.collisions,
        "nodes_alive": result.nodes_alive(),
        "network_lifetime_80pct_s": result.network_lifetime_secs(0.8),
        "first_death_s": result.lifetime.first_death().map(|t| t.as_secs_f64()),
        "energy_total_j": result.ledger.total(),
        "energy_per_packet_mj": result.per_packet_energy().millijoules_per_packet(),
        "queue_stddev_mean": result.fairness.mean_std_dev(),
        "avg_remaining_energy_series": result.energy.series().samples(),
        "nodes_alive_series": result.lifetime.alive_series().samples(),
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
}
