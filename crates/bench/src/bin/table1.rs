//! Table I: tone-channel pulse parameters and their decodability.
//!
//! Regenerates the paper's Table I (pulse durations and intervals per data-
//! channel state) from the implementation, and verifies that a sensor
//! classifying noisy observed intervals recovers the right state.
//!
//! ```bash
//! cargo run -p caem-bench --release --bin table1
//! ```

use caem_mac::tone::{ChannelState, ToneSchedule};
use caem_simcore::rng::StreamRng;
use caem_simcore::time::Duration;

fn main() {
    let schedule = ToneSchedule::paper_default();
    println!("== Table I — tone-channel pulse parameters ==");
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12}",
        "state", "pulse (ms)", "interval (ms)", "repeating", "duty cycle"
    );
    for state in ChannelState::ALL {
        let p = schedule.pulse_for(state);
        println!(
            "{:<12} {:>14.2} {:>14.2} {:>12} {:>11.1}%",
            format!("{state:?}"),
            p.duration.as_millis_f64(),
            p.interval.as_millis_f64(),
            p.repeating,
            schedule.duty_cycle(state) * 100.0
        );
    }

    // Decoding robustness: classify intervals observed with ±15 % jitter.
    let mut rng = StreamRng::from_seed_u64(caem_bench::DEFAULT_SEED);
    let trials = 10_000;
    let mut correct = 0u64;
    for _ in 0..trials {
        let state = ChannelState::ALL[rng.uniform_u64(4) as usize];
        let nominal = schedule.pulse_for(state).interval.as_secs_f64();
        let observed = nominal * rng.uniform(0.85, 1.15);
        if schedule.classify_interval(Duration::from_secs_f64(observed), 0.25) == Some(state) {
            correct += 1;
        }
    }
    println!(
        "\ninterval classification under ±15% timing jitter: {:.2}% correct ({trials} trials)",
        correct as f64 / trials as f64 * 100.0
    );
}
