//! Figure 8: average remaining energy per sensor versus elapsed time.
//!
//! Scenario (paper): 100 nodes, 10 J initial energy, Poisson traffic at
//! 5 packets/s per node, 0–600 s, three protocols (pure LEACH, CAEM-LEACH
//! Scheme 1, CAEM-LEACH Scheme 2).
//!
//! ```bash
//! cargo run -p caem-bench --release --bin fig8
//! ```

use caem_bench::{apply_quick, emit, policy_label, FigureArgs};
use caem_metrics::report::{Column, Table};
use caem_wsnsim::sweep::{compare_policies, PAPER_POLICIES};
use caem_wsnsim::ScenarioConfig;

fn main() {
    let FigureArgs { seed, quick } = FigureArgs::from_env_or_exit("fig8");
    let comparison = compare_policies(|policy| {
        apply_quick(ScenarioConfig::paper_default(policy, 5.0, seed), quick)
    });

    let horizon = if quick { 120.0 } else { 600.0 };
    let step = if quick { 10.0 } else { 50.0 };
    let times: Vec<f64> =
        std::iter::successors(Some(0.0), |t| (*t + step <= horizon).then(|| t + step)).collect();

    let mut columns = vec![Column::new("elapsed_time_s", times.clone())];
    for &policy in &PAPER_POLICIES {
        let result = comparison.get(policy);
        let values: Vec<f64> = times
            .iter()
            .map(|&t| result.energy.average_at(t).unwrap_or(0.0))
            .collect();
        columns.push(Column::new(
            format!("{}_avg_remaining_J", policy_label(policy)),
            values,
        ));
    }
    let table = Table::new(
        "Fig. 8 — Average remaining power versus time (10 J initial, 5 pkt/s)",
        columns,
    );
    emit(&table);

    // Headline check: at the end of the horizon the CAEM schemes must retain
    // more energy than pure LEACH, Scheme 2 the most.
    let final_remaining: Vec<f64> = PAPER_POLICIES
        .iter()
        .map(|&p| comparison.get(p).energy.average_at(horizon).unwrap_or(0.0))
        .collect();
    println!(
        "final average remaining energy: pure LEACH {:.2} J, Scheme 1 {:.2} J, Scheme 2 {:.2} J",
        final_remaining[0], final_remaining[1], final_remaining[2]
    );
}
