//! Profiling-report helpers shared by the `netperf`, `experiment` and
//! `stress` binaries: rten-bench-style repeat timing statistics, the
//! `time_breakdown` JSON section, the per-subsystem budget regression gate
//! and the process-wide run-event counter table.

use caem_metrics::prof::{Breakdown, ProfKey, Profile, PROF_KEYS};

/// min/mean/median/max/var over a set of timed repeats (the rten-bench
/// reporting shape).  The median is the middle element of the sorted
/// samples (lower-of-two for even counts), so it is always an observed
/// value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeatStats {
    /// Fastest repeat.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Middle sorted sample (lower-of-two for even counts).
    pub median: f64,
    /// Slowest repeat.
    pub max: f64,
    /// Population variance.
    pub var: f64,
}

/// Summarize timed repeats.  Returns `None` for an empty slice.
pub fn repeat_stats(samples: &[f64]) -> Option<RepeatStats> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timing samples"));
    let n = sorted.len() as f64;
    let mean = sorted.iter().sum::<f64>() / n;
    let var = sorted.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    Some(RepeatStats {
        min: sorted[0],
        mean,
        median: sorted[(sorted.len() - 1) / 2],
        max: *sorted.last().expect("non-empty"),
        var,
    })
}

impl RepeatStats {
    /// The JSON object recorded per scenario under `events_per_sec_stats`.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "min": self.min,
            "mean": self.mean,
            "median": self.median,
            "max": self.max,
            "var": self.var,
        })
    }
}

/// Render one accumulated [`Breakdown`] as the `time_breakdown` JSON
/// section: per-key mean/σ share, min/max share with the offending
/// scenario label, total milliseconds and event counts, split into
/// `subsystems` and `event_kinds` groups.
pub fn time_breakdown_json(breakdown: &Breakdown) -> serde_json::Value {
    let group = |subsystems: bool| -> serde_json::Value {
        let mut entries: Vec<(String, serde_json::Value)> = Vec::new();
        for key in PROF_KEYS {
            if key.is_subsystem() != subsystems {
                continue;
            }
            let stats = breakdown.key_stats(key);
            if stats.total_count() == 0 && stats.total_nanos() == 0 {
                continue;
            }
            entries.push((
                key.label().to_string(),
                serde_json::json!({
                    "mean_share": stats.mean_share(),
                    "stddev_share": stats.stddev_share(),
                    "min_share": stats.min_share(),
                    "min_scenario": stats.min_label().unwrap_or(""),
                    "max_share": stats.max_share(),
                    "max_scenario": stats.max_label().unwrap_or(""),
                    "total_ms": stats.total_nanos() as f64 / 1e6,
                    "events": stats.total_count(),
                }),
            ));
        }
        serde_json::Value::Map(entries)
    };
    serde_json::json!({
        "observations": breakdown.observations(),
        "subsystems": group(true),
        "event_kinds": group(false),
    })
}

/// One subsystem's committed budget: the baseline mean share plus the
/// noise band measured from repeat-run variance.  A run regresses when its
/// observed mean share exceeds `baseline_share + noise_band`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetEntry {
    /// The committed baseline mean share (0..=1).
    pub baseline_share: f64,
    /// Allowed slack above the baseline before the gate trips.
    pub noise_band: f64,
}

/// The committed per-subsystem budget baseline (`specs/prof_budget.json`):
/// the CI regression gate's reference point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfBudget {
    /// `(subsystem key, budget)` pairs, in file order.
    pub entries: Vec<(ProfKey, BudgetEntry)>,
}

impl ProfBudget {
    /// Strictly parse a budget file: a JSON object mapping subsystem labels
    /// (as printed by [`ProfKey::label`]) to
    /// `{"baseline_share": .., "noise_band": ..}`.  Unknown labels,
    /// event-kind labels, missing fields and out-of-range values are all
    /// hard errors — a misspelled subsystem must not silently weaken the
    /// gate.
    pub fn load(path: &str) -> Result<ProfBudget, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let value = serde_json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
        let serde_json::Value::Map(entries) = value else {
            return Err(format!("{path}: top level must be an object"));
        };
        let mut budget = ProfBudget::default();
        for (label, spec) in entries {
            let key = ProfKey::from_label(&label)
                .ok_or_else(|| format!("{path}: unknown subsystem {label:?}"))?;
            if !key.is_subsystem() {
                return Err(format!(
                    "{path}: {label:?} is an event kind, not a subsystem"
                ));
            }
            let field = |name: &str| -> Result<f64, String> {
                let v = spec
                    .get(name)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("{path}: {label}: missing numeric {name:?}"))?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("{path}: {label}: {name} must be in 0..=1, got {v}"));
                }
                Ok(v)
            };
            let entry = BudgetEntry {
                baseline_share: field("baseline_share")?,
                noise_band: field("noise_band")?,
            };
            if budget.entries.iter().any(|(k, _)| *k == key) {
                return Err(format!("{path}: duplicate subsystem {label:?}"));
            }
            budget.entries.push((key, entry));
        }
        if budget.entries.is_empty() {
            return Err(format!("{path}: budget has no subsystems"));
        }
        Ok(budget)
    }

    /// Check an observed breakdown against the budget.  Returns the list of
    /// violation messages (empty = gate passes).  Each violation names the
    /// subsystem, the observed mean share and the allowed ceiling.
    pub fn check(&self, breakdown: &Breakdown) -> Vec<String> {
        let mut violations = Vec::new();
        for &(key, entry) in &self.entries {
            let observed = breakdown.key_stats(key).mean_share();
            let ceiling = entry.baseline_share + entry.noise_band;
            if observed > ceiling {
                violations.push(format!(
                    "{}: mean share {:.2}% exceeds budget {:.2}% (+{:.2}% noise band) by {:.2}%",
                    key.label(),
                    observed * 100.0,
                    entry.baseline_share * 100.0,
                    entry.noise_band * 100.0,
                    (observed - ceiling) * 100.0,
                ));
            }
        }
        violations
    }
}

/// The subsystem with the most attributed time in a profile, with its
/// share — used by the `stress` harness to name the dominant subsystem
/// when a floor/ceiling violation fires.
pub fn dominant_subsystem(profile: &Profile) -> Option<(ProfKey, f64)> {
    PROF_KEYS
        .into_iter()
        .filter(|k| k.is_subsystem())
        .max_by_key(|&k| profile.nanos(k))
        .filter(|&k| profile.nanos(k) > 0)
        .map(|k| (k, profile.share(k)))
}

/// Print one accumulated [`Profile`]'s totals (nanoseconds and counts per
/// key) as a compact table — the `experiment` binary's end-of-run summary
/// of the process-wide global accumulator.
pub fn print_profile_totals(title: &str, profile: &Profile) {
    if profile.is_empty() {
        println!("== {title} == (no samples)");
        return;
    }
    println!("== {title} ==");
    println!(
        "{:<24} {:>12} {:>14} {:>8}",
        "key", "events", "total_ms", "share"
    );
    for group in [true, false] {
        for key in PROF_KEYS {
            if key.is_subsystem() != group {
                continue;
            }
            let (count, nanos) = (profile.count(key), profile.nanos(key));
            if count == 0 && nanos == 0 {
                continue;
            }
            println!(
                "{:<24} {:>12} {:>14.3} {:>7.1}%",
                key.label(),
                count,
                nanos as f64 / 1e6,
                profile.share(key) * 100.0
            );
        }
    }
}

/// Print the process-wide [`RunEvent`](caem_wsnsim::faults::RunEvent)
/// counters (retries, quarantines, lease handoffs, …) next to the profile
/// report, so one report answers both "where did the time go" and "what
/// did the run survive".
pub fn print_run_event_counters() {
    let counters = caem_wsnsim::faults::event_counters();
    println!("== run events (process-wide) ==");
    if counters.is_empty() {
        println!("(none recorded)");
        return;
    }
    for (event, count) in counters {
        println!("{:<28} {:>10}", event.label(), count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_stats_match_hand_computation() {
        assert_eq!(repeat_stats(&[]), None);
        let s = repeat_stats(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        // Lower-of-two median over [1,2,3,4].
        assert_eq!(s.median, 2.0);
        assert!((s.var - 1.25).abs() < 1e-12);
        let single = repeat_stats(&[7.5]).unwrap();
        assert_eq!((single.min, single.median, single.max), (7.5, 7.5, 7.5));
        assert_eq!(single.var, 0.0);
    }

    #[test]
    fn time_breakdown_json_groups_keys() {
        let mut profile = Profile::new();
        profile.add(ProfKey::Mac, 10, 3_000_000);
        profile.add(ProfKey::EvSenseChannel, 10, 2_000_000);
        let mut breakdown = Breakdown::new();
        breakdown.observe("scenario_a", &profile);
        let json = time_breakdown_json(&breakdown);
        assert_eq!(json.get("observations").and_then(|v| v.as_u64()), Some(1));
        let subsystems = json.get("subsystems").expect("subsystems group");
        let mac = subsystems.get("mac").expect("mac entry");
        assert_eq!(mac.get("events").and_then(|v| v.as_u64()), Some(10));
        assert_eq!(mac.get("total_ms").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(
            mac.get("max_scenario").and_then(|v| v.as_str()),
            Some("scenario_a")
        );
        // Event kinds land in their own group, not under subsystems.
        assert!(subsystems.get("sense_channel").is_none());
        let kinds = json.get("event_kinds").expect("event_kinds group");
        assert!(kinds.get("sense_channel").is_some());
        // Untouched keys are omitted entirely.
        assert!(subsystems.get("phy").is_none());
    }

    fn write_tmp(name: &str, text: &str) -> String {
        let path = std::env::temp_dir().join(format!("caem_profrpt_{}_{name}", std::process::id()));
        std::fs::write(&path, text).expect("write temp budget");
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn budget_load_is_strict() {
        let ok = write_tmp(
            "ok.json",
            r#"{"mac": {"baseline_share": 0.4, "noise_band": 0.1}}"#,
        );
        let budget = ProfBudget::load(&ok).unwrap();
        assert_eq!(budget.entries.len(), 1);
        assert_eq!(budget.entries[0].0, ProfKey::Mac);
        std::fs::remove_file(&ok).ok();

        for (name, text, needle) in [
            (
                "unknown.json",
                r#"{"mack": {"baseline_share": 0.4, "noise_band": 0.1}}"#,
                "unknown subsystem",
            ),
            (
                "event.json",
                r#"{"sense_channel": {"baseline_share": 0.4, "noise_band": 0.1}}"#,
                "event kind",
            ),
            (
                "missing.json",
                r#"{"mac": {"baseline_share": 0.4}}"#,
                "missing numeric",
            ),
            (
                "range.json",
                r#"{"mac": {"baseline_share": 1.4, "noise_band": 0.1}}"#,
                "must be in 0..=1",
            ),
            ("empty.json", r#"{}"#, "no subsystems"),
        ] {
            let path = write_tmp(name, text);
            let err = ProfBudget::load(&path).unwrap_err();
            assert!(err.contains(needle), "{name}: {err}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn budget_check_flags_regressions_past_the_noise_band() {
        let budget = ProfBudget {
            entries: vec![(
                ProfKey::Mac,
                BudgetEntry {
                    baseline_share: 0.10,
                    noise_band: 0.05,
                },
            )],
        };
        // Mac at ~50% of attributed time: far past 15%.
        let mut hot = Profile::new();
        hot.add(ProfKey::Mac, 1, 500);
        hot.add(ProfKey::EvRoundStart, 1, 500);
        let mut breakdown = Breakdown::new();
        breakdown.observe("hot", &hot);
        let violations = budget.check(&breakdown);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("mac"), "{}", violations[0]);

        // Mac at ~10%: inside the band.
        let mut fine = Profile::new();
        fine.add(ProfKey::Mac, 1, 100);
        fine.add(ProfKey::EvRoundStart, 1, 900);
        let mut breakdown = Breakdown::new();
        breakdown.observe("fine", &fine);
        assert!(budget.check(&breakdown).is_empty());
    }

    #[test]
    fn dominant_subsystem_picks_the_largest_and_ignores_event_kinds() {
        let mut profile = Profile::new();
        assert_eq!(dominant_subsystem(&profile), None);
        profile.add(ProfKey::Channel, 5, 300);
        profile.add(ProfKey::Mac, 5, 700);
        profile.add(ProfKey::EvSenseChannel, 10, 10_000);
        let (key, share) = dominant_subsystem(&profile).unwrap();
        assert_eq!(key, ProfKey::Mac);
        assert!(share > 0.0);
    }
}
