//! The ΔV queue-variation traffic predictor (Section III-C).
//!
//! Monitoring the queue on every packet would cost computation, so the paper
//! samples the queue length only every `K` packet arrivals (`K = 5`), giving
//! a sequence `V(t_1), V(t_2), …`.  The variation
//!
//! ```text
//! ΔV_i = V(t_i) − V(t_{i−1})
//! ```
//!
//! is used as the traffic-load predictor: ΔV ≥ 0 means the queue is growing
//! (offered load exceeds service), ΔV < 0 means it is draining.

use serde::{Deserialize, Serialize};

/// The direction the queue is trending, as seen by the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trend {
    /// ΔV ≥ 0: queue growing (or static) — offered load at least matches the
    /// service rate.
    Growing,
    /// ΔV < 0: queue draining.
    Draining,
}

/// Samples the queue length every `K` packet arrivals and reports ΔV.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueuePredictor {
    sampling_interval: u32,
    arrivals_since_sample: u32,
    last_sample: Option<usize>,
    last_delta: Option<i64>,
    samples_taken: u64,
}

impl QueuePredictor {
    /// Create a predictor sampling every `sampling_interval` arrivals.
    pub fn new(sampling_interval: u32) -> Self {
        assert!(sampling_interval > 0, "sampling interval must be positive");
        QueuePredictor {
            sampling_interval,
            arrivals_since_sample: 0,
            last_sample: None,
            last_delta: None,
            samples_taken: 0,
        }
    }

    /// The sampling interval K.
    pub fn sampling_interval(&self) -> u32 {
        self.sampling_interval
    }

    /// Number of samples V(t_i) taken so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// The most recent ΔV, if at least two samples exist.
    pub fn last_delta(&self) -> Option<i64> {
        self.last_delta
    }

    /// The most recent queue-length sample V(t_i), if any.
    pub fn last_sample(&self) -> Option<usize> {
        self.last_sample
    }

    /// The current trend, if a ΔV is available.
    pub fn trend(&self) -> Option<Trend> {
        self.last_delta.map(|d| {
            if d >= 0 {
                Trend::Growing
            } else {
                Trend::Draining
            }
        })
    }

    /// Record one packet arrival with the queue length *after* the enqueue.
    ///
    /// Returns `Some(ΔV)` when this arrival completes a sampling interval and
    /// a previous sample exists to difference against; `None` otherwise.
    pub fn on_arrival(&mut self, queue_len: usize) -> Option<i64> {
        self.arrivals_since_sample += 1;
        if self.arrivals_since_sample < self.sampling_interval {
            return None;
        }
        self.arrivals_since_sample = 0;
        self.samples_taken += 1;
        let delta = self.last_sample.map(|prev| queue_len as i64 - prev as i64);
        self.last_sample = Some(queue_len);
        if delta.is_some() {
            self.last_delta = delta;
        }
        delta
    }

    /// Forget all history (e.g. after a LEACH round change re-homes the node
    /// to a different cluster head).
    pub fn reset(&mut self) {
        self.arrivals_since_sample = 0;
        self.last_sample = None;
        self.last_delta = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_every_k_arrivals() {
        let mut p = QueuePredictor::new(5);
        // First 4 arrivals: no sample.
        for q in 1..=4 {
            assert_eq!(p.on_arrival(q), None);
        }
        // 5th arrival takes the first sample; no delta yet.
        assert_eq!(p.on_arrival(5), None);
        assert_eq!(p.last_sample(), Some(5));
        assert_eq!(p.samples_taken(), 1);
        // Next 5 arrivals, queue grew to 9: ΔV = +4.
        for q in [6, 7, 8, 9] {
            assert_eq!(p.on_arrival(q), None);
        }
        assert_eq!(p.on_arrival(9), Some(4));
        assert_eq!(p.trend(), Some(Trend::Growing));
    }

    #[test]
    fn draining_queue_gives_negative_delta() {
        let mut p = QueuePredictor::new(2);
        p.on_arrival(10);
        assert_eq!(p.on_arrival(10), None); // first sample V=10
        p.on_arrival(6);
        assert_eq!(p.on_arrival(4), Some(-6));
        assert_eq!(p.trend(), Some(Trend::Draining));
        assert_eq!(p.last_delta(), Some(-6));
    }

    #[test]
    fn zero_delta_counts_as_growing() {
        // The paper's rule is "if ΔV >= 0 … lower the threshold", so a flat
        // queue is treated as growth (load matches service, stay cautious).
        let mut p = QueuePredictor::new(1);
        p.on_arrival(7);
        assert_eq!(p.on_arrival(7), Some(0));
        assert_eq!(p.trend(), Some(Trend::Growing));
    }

    #[test]
    fn k_equals_one_samples_every_arrival() {
        let mut p = QueuePredictor::new(1);
        assert_eq!(p.on_arrival(1), None);
        assert_eq!(p.on_arrival(2), Some(1));
        assert_eq!(p.on_arrival(2), Some(0));
        assert_eq!(p.on_arrival(1), Some(-1));
        assert_eq!(p.samples_taken(), 4);
    }

    #[test]
    fn reset_clears_history() {
        let mut p = QueuePredictor::new(2);
        p.on_arrival(3);
        p.on_arrival(3);
        p.on_arrival(5);
        p.on_arrival(5);
        assert!(p.last_delta().is_some());
        p.reset();
        assert_eq!(p.last_delta(), None);
        assert_eq!(p.last_sample(), None);
        assert_eq!(p.trend(), None);
        // After a reset the first completed interval again yields no delta.
        p.on_arrival(4);
        assert_eq!(p.on_arrival(4), None);
    }

    #[test]
    fn no_trend_before_two_samples() {
        let mut p = QueuePredictor::new(3);
        assert_eq!(p.trend(), None);
        p.on_arrival(1);
        p.on_arrival(2);
        p.on_arrival(3);
        assert_eq!(p.trend(), None, "one sample is not enough for a delta");
    }

    #[test]
    #[should_panic]
    fn zero_interval_rejected() {
        QueuePredictor::new(0);
    }
}
