//! The transmission-threshold policies compared in the paper.
//!
//! A policy answers one question for the MAC at every decision point: *what
//! is the minimum ABICM mode (equivalently, CSI level) this node currently
//! demands before it will spend energy transmitting?*  Plus a secondary one:
//! *is the buffer under enough pressure that the minimum-burst rule should be
//! waived?*
//!
//! * **Scheme 1** ([`AdaptiveThreshold`]) — the full CAEM proposal: the
//!   threshold starts at 2 Mbps; once the queue length reaches
//!   `Q_threshold = 15` the ΔV predictor (sampled every K = 5 arrivals)
//!   lowers the threshold one class while the queue grows and snaps it back
//!   to the highest class once the queue drains.
//! * **Scheme 2** ([`FixedThreshold`]) — threshold fixed at 2 Mbps; maximal
//!   energy efficiency, no fairness protection.
//! * **Pure LEACH** ([`NoAdaptation`]) — the non-channel-adaptive baseline:
//!   no CSI requirement beyond "the link can carry *some* mode".

use caem_phy::TransmissionMode;
use serde::{Deserialize, Serialize};

use crate::config::CaemConfig;
use crate::predictor::{QueuePredictor, Trend};

/// Which protocol variant a policy instance implements (for reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Pure LEACH without channel adaptation.
    PureLeach,
    /// CAEM-LEACH Scheme 1 (adaptive threshold adjustment).
    Scheme1Adaptive,
    /// CAEM-LEACH Scheme 2 (fixed highest threshold).
    Scheme2Fixed,
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PolicyKind::PureLeach => "pure-LEACH",
            PolicyKind::Scheme1Adaptive => "CAEM-LEACH Scheme 1 (adaptive threshold)",
            PolicyKind::Scheme2Fixed => "CAEM-LEACH Scheme 2 (fixed threshold)",
        };
        f.write_str(s)
    }
}

/// The decision interface consumed by the MAC / simulator.
pub trait ThresholdPolicy {
    /// Which scheme this is.
    fn kind(&self) -> PolicyKind;

    /// Notify the policy of a packet arrival; `queue_len` is the buffer
    /// occupancy *after* the enqueue (or after the drop, if the buffer was
    /// full — the pressure signal is the same).
    fn on_packet_arrival(&mut self, queue_len: usize);

    /// Notify the policy that a burst completed; `queue_len` is the occupancy
    /// after the dequeue.
    fn on_packets_sent(&mut self, queue_len: usize);

    /// Notify the policy that the node was re-homed to a new cluster head
    /// (LEACH round change): history about the old link/queue dynamics no
    /// longer predicts the new one.
    fn on_round_change(&mut self);

    /// The transmission threshold currently in force.
    ///
    /// `Some(mode)` demands the data-channel CSI support at least `mode`;
    /// `None` means no channel-quality requirement (pure LEACH) — the MAC
    /// only needs the link to support the lowest mode so the packet can be
    /// modulated at all.
    fn current_threshold(&self) -> Option<TransmissionMode>;

    /// The minimum data-channel SNR (dB) the MAC should demand right now.
    fn required_snr_db(&self) -> f64 {
        self.current_threshold()
            .unwrap_or_else(TransmissionMode::lowest)
            .required_snr_db()
    }

    /// Should the MAC waive the minimum-burst rule because the buffer is
    /// under overflow pressure?
    fn is_urgent(&self, queue_len: usize) -> bool;
}

/// Pure LEACH: no channel adaptation at all.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoAdaptation {
    queue_threshold: usize,
}

impl NoAdaptation {
    /// Create the baseline policy.  `queue_threshold` only controls the
    /// urgency signal (waiving the burst minimum near overflow).
    pub fn new(queue_threshold: usize) -> Self {
        NoAdaptation { queue_threshold }
    }
}

impl Default for NoAdaptation {
    fn default() -> Self {
        NoAdaptation::new(CaemConfig::paper_default().queue_threshold)
    }
}

impl ThresholdPolicy for NoAdaptation {
    fn kind(&self) -> PolicyKind {
        PolicyKind::PureLeach
    }
    fn on_packet_arrival(&mut self, _queue_len: usize) {}
    fn on_packets_sent(&mut self, _queue_len: usize) {}
    fn on_round_change(&mut self) {}
    fn current_threshold(&self) -> Option<TransmissionMode> {
        None
    }
    fn is_urgent(&self, queue_len: usize) -> bool {
        queue_len >= self.queue_threshold
    }
}

/// Scheme 2: the threshold is pinned at the highest class (2 Mbps).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FixedThreshold {
    threshold: TransmissionMode,
    queue_threshold: usize,
}

impl FixedThreshold {
    /// Create a fixed-threshold policy at the paper's 2 Mbps.
    pub fn paper_default() -> Self {
        FixedThreshold::new(
            TransmissionMode::Mbps2,
            CaemConfig::paper_default().queue_threshold,
        )
    }

    /// Create a fixed-threshold policy at an arbitrary mode (ablations).
    pub fn new(threshold: TransmissionMode, queue_threshold: usize) -> Self {
        FixedThreshold {
            threshold,
            queue_threshold,
        }
    }
}

impl Default for FixedThreshold {
    fn default() -> Self {
        FixedThreshold::paper_default()
    }
}

impl ThresholdPolicy for FixedThreshold {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Scheme2Fixed
    }
    fn on_packet_arrival(&mut self, _queue_len: usize) {}
    fn on_packets_sent(&mut self, _queue_len: usize) {}
    fn on_round_change(&mut self) {}
    fn current_threshold(&self) -> Option<TransmissionMode> {
        Some(self.threshold)
    }
    fn is_urgent(&self, queue_len: usize) -> bool {
        // Scheme 2 never relaxes its CSI demand, but it still waives the
        // minimum-burst rule under pressure (that rule exists only to
        // amortise start-up energy).
        queue_len >= self.queue_threshold
    }
}

/// Scheme 1: CAEM with adaptive threshold adjustment (Fig. 6 pseudo-code).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveThreshold {
    config: CaemConfig,
    predictor: QueuePredictor,
    current: TransmissionMode,
    adjustments_down: u64,
    adjustments_up: u64,
}

impl AdaptiveThreshold {
    /// Create a Scheme 1 policy with the given configuration.
    pub fn new(config: CaemConfig) -> Self {
        AdaptiveThreshold {
            predictor: QueuePredictor::new(config.sampling_interval_packets),
            current: config.initial_threshold,
            config,
            adjustments_down: 0,
            adjustments_up: 0,
        }
    }

    /// Create a Scheme 1 policy with the paper's parameters.
    pub fn paper_default() -> Self {
        AdaptiveThreshold::new(CaemConfig::paper_default())
    }

    /// The configuration in use.
    pub fn config(&self) -> CaemConfig {
        self.config
    }

    /// Number of one-class-down / snap-to-top adjustments performed.
    pub fn adjustment_counts(&self) -> (u64, u64) {
        (self.adjustments_down, self.adjustments_up)
    }

    fn lower_threshold(&mut self) {
        let mut mode = self.current;
        for _ in 0..self.config.lower_step_classes {
            mode = mode.one_class_lower();
        }
        if mode != self.current {
            self.current = mode;
            self.adjustments_down += 1;
        }
    }

    fn raise_to_top(&mut self) {
        if self.current != TransmissionMode::highest() {
            self.current = TransmissionMode::highest();
            self.adjustments_up += 1;
        }
    }
}

impl Default for AdaptiveThreshold {
    fn default() -> Self {
        AdaptiveThreshold::paper_default()
    }
}

impl ThresholdPolicy for AdaptiveThreshold {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Scheme1Adaptive
    }

    fn on_packet_arrival(&mut self, queue_len: usize) {
        // The predictor samples on every arrival regardless; the *adjustment*
        // only engages once the queue is past the activation threshold.
        let delta = self.predictor.on_arrival(queue_len);
        if queue_len < self.config.queue_threshold {
            return;
        }
        if delta.is_some() {
            match self.predictor.trend() {
                Some(Trend::Growing) => self.lower_threshold(),
                Some(Trend::Draining) => self.raise_to_top(),
                None => {}
            }
        }
    }

    fn on_packets_sent(&mut self, queue_len: usize) {
        // Once the pressure is relieved the node reverts to the
        // energy-optimal threshold; this implements the "increase
        // transmission threshold to the highest value to save energy" branch
        // without waiting for the next sampled arrival.
        if queue_len < self.config.queue_threshold {
            self.raise_to_top();
        }
    }

    fn on_round_change(&mut self) {
        self.predictor.reset();
        self.current = self.config.initial_threshold;
    }

    fn current_threshold(&self) -> Option<TransmissionMode> {
        Some(self.current)
    }

    fn is_urgent(&self, queue_len: usize) -> bool {
        queue_len >= self.config.queue_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_leach_has_no_channel_requirement() {
        let p = NoAdaptation::default();
        assert_eq!(p.kind(), PolicyKind::PureLeach);
        assert_eq!(p.current_threshold(), None);
        // Required SNR falls back to the lowest mode's requirement.
        assert_eq!(
            p.required_snr_db(),
            TransmissionMode::Kbps250.required_snr_db()
        );
        assert!(!p.is_urgent(5));
        assert!(p.is_urgent(15));
    }

    #[test]
    fn scheme2_threshold_never_moves() {
        let mut p = FixedThreshold::paper_default();
        assert_eq!(p.kind(), PolicyKind::Scheme2Fixed);
        for q in [1usize, 10, 20, 45, 50] {
            p.on_packet_arrival(q);
            assert_eq!(p.current_threshold(), Some(TransmissionMode::Mbps2));
        }
        p.on_packets_sent(0);
        p.on_round_change();
        assert_eq!(p.current_threshold(), Some(TransmissionMode::Mbps2));
        assert_eq!(
            p.required_snr_db(),
            TransmissionMode::Mbps2.required_snr_db()
        );
    }

    #[test]
    fn scheme1_starts_at_highest_threshold() {
        let p = AdaptiveThreshold::paper_default();
        assert_eq!(p.kind(), PolicyKind::Scheme1Adaptive);
        assert_eq!(p.current_threshold(), Some(TransmissionMode::Mbps2));
    }

    #[test]
    fn scheme1_ignores_growth_below_queue_threshold() {
        let mut p = AdaptiveThreshold::paper_default();
        // Queue grows but stays below Q_threshold = 15: no adjustment.
        for q in 1..=14usize {
            p.on_packet_arrival(q);
        }
        assert_eq!(p.current_threshold(), Some(TransmissionMode::Mbps2));
        assert_eq!(p.adjustment_counts(), (0, 0));
    }

    #[test]
    fn scheme1_lowers_one_class_per_growing_sample_above_threshold() {
        let mut p = AdaptiveThreshold::paper_default();
        // Drive the queue well past Q_threshold with one arrival per length
        // increment; a sample is taken every 5 arrivals.
        let mut q = 0usize;
        // First 15 arrivals establish pressure and the first samples.
        for _ in 0..15 {
            q += 1;
            p.on_packet_arrival(q);
        }
        // Arrival 15 produced the 3rd sample (q=15, above threshold) with a
        // growing delta ⇒ one class down.
        assert_eq!(p.current_threshold(), Some(TransmissionMode::Mbps1));
        for _ in 0..5 {
            q += 1;
            p.on_packet_arrival(q);
        }
        assert_eq!(p.current_threshold(), Some(TransmissionMode::Kbps450));
        for _ in 0..5 {
            q += 1;
            p.on_packet_arrival(q);
        }
        assert_eq!(p.current_threshold(), Some(TransmissionMode::Kbps250));
        // Saturates at the lowest class.
        for _ in 0..10 {
            q += 1;
            p.on_packet_arrival(q);
        }
        assert_eq!(p.current_threshold(), Some(TransmissionMode::Kbps250));
        let (down, _) = p.adjustment_counts();
        assert_eq!(down, 3);
    }

    #[test]
    fn scheme1_snaps_back_to_top_when_queue_drains() {
        let mut p = AdaptiveThreshold::paper_default();
        let mut q = 0usize;
        for _ in 0..20 {
            q += 1;
            p.on_packet_arrival(q);
        }
        assert_ne!(p.current_threshold(), Some(TransmissionMode::Mbps2));
        // Queue drains below Q_threshold after a burst: snap to 2 Mbps.
        p.on_packets_sent(8);
        assert_eq!(p.current_threshold(), Some(TransmissionMode::Mbps2));
        let (_, up) = p.adjustment_counts();
        assert_eq!(up, 1);
    }

    #[test]
    fn scheme1_draining_samples_above_threshold_also_raise() {
        let mut p = AdaptiveThreshold::paper_default();
        // Push queue to 25 to lower the threshold.
        let mut q = 0usize;
        for _ in 0..25 {
            q += 1;
            p.on_packet_arrival(q);
        }
        assert_ne!(p.current_threshold(), Some(TransmissionMode::Mbps2));
        // Still above Q_threshold but now *draining* between samples
        // (arrivals continue while big bursts are served elsewhere).
        for q_obs in [22usize, 20, 19, 18, 17] {
            p.on_packet_arrival(q_obs);
        }
        assert_eq!(p.current_threshold(), Some(TransmissionMode::Mbps2));
    }

    #[test]
    fn scheme1_burst_completion_above_threshold_does_not_raise() {
        let mut p = AdaptiveThreshold::paper_default();
        let mut q = 0usize;
        for _ in 0..25 {
            q += 1;
            p.on_packet_arrival(q);
        }
        let before = p.current_threshold();
        // Burst sent but queue still ≥ Q_threshold: keep the relaxed value.
        p.on_packets_sent(17);
        assert_eq!(p.current_threshold(), before);
    }

    #[test]
    fn scheme1_round_change_resets_state() {
        let mut p = AdaptiveThreshold::paper_default();
        let mut q = 0usize;
        for _ in 0..25 {
            q += 1;
            p.on_packet_arrival(q);
        }
        assert_ne!(p.current_threshold(), Some(TransmissionMode::Mbps2));
        p.on_round_change();
        assert_eq!(p.current_threshold(), Some(TransmissionMode::Mbps2));
    }

    #[test]
    fn scheme1_urgency_tracks_queue_threshold() {
        let p = AdaptiveThreshold::paper_default();
        assert!(!p.is_urgent(14));
        assert!(p.is_urgent(15));
        assert!(p.is_urgent(50));
    }

    #[test]
    fn scheme1_multi_class_step_ablation() {
        let mut config = CaemConfig::paper_default();
        config.lower_step_classes = 2;
        let mut p = AdaptiveThreshold::new(config);
        let mut q = 0usize;
        for _ in 0..15 {
            q += 1;
            p.on_packet_arrival(q);
        }
        // One growing sample above threshold drops two classes at once.
        assert_eq!(p.current_threshold(), Some(TransmissionMode::Kbps450));
    }

    #[test]
    fn policy_kind_display_labels() {
        assert_eq!(PolicyKind::PureLeach.to_string(), "pure-LEACH");
        assert!(PolicyKind::Scheme1Adaptive.to_string().contains("Scheme 1"));
        assert!(PolicyKind::Scheme2Fixed.to_string().contains("Scheme 2"));
    }

    #[test]
    fn trait_objects_are_usable() {
        // The simulator stores policies behind Box<dyn ThresholdPolicy>.
        let mut policies: Vec<Box<dyn ThresholdPolicy>> = vec![
            Box::new(NoAdaptation::default()),
            Box::new(FixedThreshold::paper_default()),
            Box::new(AdaptiveThreshold::paper_default()),
        ];
        for p in &mut policies {
            p.on_packet_arrival(1);
            let _ = p.current_threshold();
            let _ = p.required_snr_db();
        }
        assert_eq!(policies[0].kind(), PolicyKind::PureLeach);
        assert_eq!(policies[2].kind(), PolicyKind::Scheme1Adaptive);
    }
}
