//! # caem — Channel Adaptive Energy Management
//!
//! The paper's core contribution: deciding *when* a sensor should spend
//! energy transmitting, given that the wireless channel — and therefore the
//! energy cost of moving one useful bit — varies with time.
//!
//! The idea in one sentence: because a packet sent over a good link (high
//! CSI → high ABICM mode → short airtime, little FEC) costs several times
//! less energy than the same packet sent over a bad link, **buffer packets
//! until the measured CSI clears a transmission threshold** — and adapt that
//! threshold to the queue state so nodes with persistently bad links are not
//! starved.
//!
//! Three policies are provided behind the [`policy::ThresholdPolicy`] trait:
//!
//! | Policy | Paper name | Behaviour |
//! |---|---|---|
//! | [`policy::AdaptiveThreshold`] | Scheme 1 | threshold starts at 2 Mbps; once the queue exceeds `Q_threshold` (15) the ΔV predictor lowers it one class when the queue is growing and snaps it back to 2 Mbps when the queue drains |
//! | [`policy::FixedThreshold`] | Scheme 2 | threshold pinned at 2 Mbps for the whole run; maximum energy savings, worst fairness/delay |
//! | [`policy::NoAdaptation`] | pure LEACH | no channel requirement at all — transmit whenever the link supports *any* mode (the non-channel-adaptive baseline) |
//!
//! The ΔV predictor ([`predictor::QueuePredictor`]) samples the queue length
//! every `K = 5` packet arrivals and differences consecutive samples, exactly
//! as in the paper's Fig. 6 pseudo-code.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod policy;
pub mod predictor;

pub use config::CaemConfig;
pub use policy::{AdaptiveThreshold, FixedThreshold, NoAdaptation, PolicyKind, ThresholdPolicy};
pub use predictor::{QueuePredictor, Trend};
