//! CAEM tuning parameters.

use caem_phy::TransmissionMode;
use serde::{Deserialize, Serialize};

/// Parameters of the CAEM threshold-adjustment mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaemConfig {
    /// Queue-length sampling period, in packet arrivals (paper: K = 5).
    pub sampling_interval_packets: u32,
    /// Queue length at which the adjustment mechanism activates
    /// (paper: Q_threshold = 15).
    pub queue_threshold: usize,
    /// Initial transmission threshold (paper: 2 Mbps for both schemes).
    pub initial_threshold: TransmissionMode,
    /// How many classes a single "lower the threshold" step drops
    /// (paper: 1; exposed for the ablation bench).
    pub lower_step_classes: usize,
}

impl Default for CaemConfig {
    fn default() -> Self {
        CaemConfig::paper_default()
    }
}

impl CaemConfig {
    /// The paper's parameters: K = 5, Q_threshold = 15, start at 2 Mbps,
    /// one-class steps.
    pub fn paper_default() -> Self {
        CaemConfig {
            sampling_interval_packets: 5,
            queue_threshold: 15,
            initial_threshold: TransmissionMode::Mbps2,
            lower_step_classes: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = CaemConfig::paper_default();
        assert_eq!(c.sampling_interval_packets, 5);
        assert_eq!(c.queue_threshold, 15);
        assert_eq!(c.initial_threshold, TransmissionMode::Mbps2);
        assert_eq!(c.lower_step_classes, 1);
        assert_eq!(CaemConfig::default(), c);
    }
}
