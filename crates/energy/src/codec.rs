//! FEC encoding/decoding computation energy.
//!
//! Section I lists two energy costs of adding error protection: (1) the
//! computation spent encoding/decoding the redundancy, and (2) the longer
//! radio on-time.  Section IV then states that, "to ease data analysis", the
//! codec energy is *not* counted because it is negligible compared with the
//! radio electronics.  We keep the model around with a default of zero so the
//! paper's assumption is the default behaviour, while the ablation bench can
//! switch it on and check that the conclusions are insensitive to it.

use serde::{Deserialize, Serialize};

/// Per-bit computation energy of FEC encoding and decoding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodecEnergyModel {
    /// Energy to encode one coded bit at the transmitter, joules/bit.
    pub encode_j_per_bit: f64,
    /// Energy to decode one coded bit at the receiver, joules/bit.
    pub decode_j_per_bit: f64,
}

impl Default for CodecEnergyModel {
    fn default() -> Self {
        CodecEnergyModel::paper_default()
    }
}

impl CodecEnergyModel {
    /// The paper's assumption: codec energy is neglected entirely.
    pub fn paper_default() -> Self {
        CodecEnergyModel {
            encode_j_per_bit: 0.0,
            decode_j_per_bit: 0.0,
        }
    }

    /// A realistic non-zero model for ablations: roughly the energy of a few
    /// hundred instructions per coded bit on a sensor-class MCU
    /// (≈1 nJ/instruction ⇒ ~5 nJ/bit encode, ~50 nJ/bit Viterbi decode).
    pub fn realistic() -> Self {
        CodecEnergyModel {
            encode_j_per_bit: 5e-9,
            decode_j_per_bit: 50e-9,
        }
    }

    /// Encoding energy for a frame of `coded_bits` (transmitter side).
    pub fn encode_energy(&self, coded_bits: u64) -> f64 {
        self.encode_j_per_bit * coded_bits as f64
    }

    /// Decoding energy for a frame of `coded_bits` (receiver side).
    pub fn decode_energy(&self, coded_bits: u64) -> f64 {
        self.decode_j_per_bit * coded_bits as f64
    }

    /// Combined two-sided codec energy for one frame.
    pub fn frame_energy(&self, coded_bits: u64) -> f64 {
        self.encode_energy(coded_bits) + self.decode_energy(coded_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_zero() {
        let m = CodecEnergyModel::paper_default();
        assert_eq!(m.encode_energy(1_000_000), 0.0);
        assert_eq!(m.decode_energy(1_000_000), 0.0);
        assert_eq!(m.frame_energy(1_000_000), 0.0);
    }

    #[test]
    fn realistic_model_scales_with_bits() {
        let m = CodecEnergyModel::realistic();
        let one_k = m.frame_energy(1_000);
        let four_k = m.frame_energy(4_000);
        assert!((four_k / one_k - 4.0).abs() < 1e-9);
        // Decoding dominates encoding (Viterbi vs shift-register encoder).
        assert!(m.decode_j_per_bit > m.encode_j_per_bit);
    }

    #[test]
    fn realistic_codec_is_small_relative_to_radio() {
        // A 2-kbit frame at 450 kbps with redundancy ~4.5 kbit coded bits:
        // codec ≈ 0.25 mJ vs radio tx ≈ 0.66 W × 4.4 ms ≈ 2.9 mJ — indeed an
        // order of magnitude smaller, consistent with the paper's assumption.
        let m = CodecEnergyModel::realistic();
        let codec = m.frame_energy(4_500);
        let radio = 0.66 * 4.44e-3;
        assert!(codec < radio / 5.0, "codec {codec} vs radio {radio}");
    }

    #[test]
    fn zero_bits_costs_nothing() {
        assert_eq!(CodecEnergyModel::realistic().frame_energy(0), 0.0);
    }
}
