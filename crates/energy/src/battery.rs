//! Battery and energy-ledger accounting for one sensor node.
//!
//! The paper's headline metrics — average remaining energy (Fig. 8), nodes
//! alive over time (Fig. 9), network lifetime (Fig. 10) and energy per
//! delivered packet (Fig. 11) — all reduce to "how many joules has each node
//! drawn, and on what".  [`Battery`] tracks the remaining charge; the
//! embedded [`EnergyLedger`] attributes every drawn joule to a category so
//! the per-packet and per-activity breakdowns can be reported.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What a unit of energy was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergyCategory {
    /// Data-radio transmission of frames that were delivered successfully.
    DataTransmit,
    /// Data-radio transmission that ended in a collision (wasted energy).
    CollisionWaste,
    /// Data-radio reception (cluster-head side).
    DataReceive,
    /// Data-radio sleep current.
    Sleep,
    /// Data-radio start-up transients.
    Startup,
    /// Tone-radio transmission (cluster head broadcasting pulses).
    ToneTransmit,
    /// Tone-radio reception / channel monitoring (sensor side).
    ToneReceive,
    /// FEC encoding/decoding computation (zero under the paper's assumption).
    Codec,
    /// Sensing and other non-radio activity (not modelled by the paper; kept
    /// for extensions).
    Other,
}

impl EnergyCategory {
    /// All categories, for iteration in reports.
    pub const ALL: [EnergyCategory; 9] = [
        EnergyCategory::DataTransmit,
        EnergyCategory::CollisionWaste,
        EnergyCategory::DataReceive,
        EnergyCategory::Sleep,
        EnergyCategory::Startup,
        EnergyCategory::ToneTransmit,
        EnergyCategory::ToneReceive,
        EnergyCategory::Codec,
        EnergyCategory::Other,
    ];

    fn index(self) -> usize {
        match self {
            EnergyCategory::DataTransmit => 0,
            EnergyCategory::CollisionWaste => 1,
            EnergyCategory::DataReceive => 2,
            EnergyCategory::Sleep => 3,
            EnergyCategory::Startup => 4,
            EnergyCategory::ToneTransmit => 5,
            EnergyCategory::ToneReceive => 6,
            EnergyCategory::Codec => 7,
            EnergyCategory::Other => 8,
        }
    }
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EnergyCategory::DataTransmit => "data-tx",
            EnergyCategory::CollisionWaste => "collision",
            EnergyCategory::DataReceive => "data-rx",
            EnergyCategory::Sleep => "sleep",
            EnergyCategory::Startup => "startup",
            EnergyCategory::ToneTransmit => "tone-tx",
            EnergyCategory::ToneReceive => "tone-rx",
            EnergyCategory::Codec => "codec",
            EnergyCategory::Other => "other",
        };
        f.write_str(s)
    }
}

/// Per-category record of energy drawn, in joules.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EnergyLedger {
    joules: [f64; 9],
}

impl EnergyLedger {
    /// Create an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `joules` against `category`.
    pub fn record(&mut self, category: EnergyCategory, joules: f64) {
        debug_assert!(joules >= 0.0, "cannot record negative energy");
        self.joules[category.index()] += joules;
    }

    /// Total joules drawn in `category`.
    pub fn by_category(&self, category: EnergyCategory) -> f64 {
        self.joules[category.index()]
    }

    /// Total joules drawn across all categories.
    pub fn total(&self) -> f64 {
        self.joules.iter().sum()
    }

    /// Joules drawn by the radio while actually moving data (tx + rx),
    /// excluding overheads.
    pub fn useful_radio(&self) -> f64 {
        self.by_category(EnergyCategory::DataTransmit)
            + self.by_category(EnergyCategory::DataReceive)
    }

    /// Joules wasted on collisions, startups and idle listening overheads.
    pub fn overhead(&self) -> f64 {
        self.by_category(EnergyCategory::CollisionWaste)
            + self.by_category(EnergyCategory::Startup)
            + self.by_category(EnergyCategory::ToneTransmit)
            + self.by_category(EnergyCategory::ToneReceive)
    }

    /// Merge another ledger into this one (for network-wide aggregation).
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (a, b) in self.joules.iter_mut().zip(other.joules.iter()) {
            *a += b;
        }
    }
}

/// A node's battery: finite initial energy, drawn down by the ledger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Battery {
    initial_j: f64,
    drawn_j: f64,
    ledger: EnergyLedger,
    depleted_flagged: bool,
}

impl Battery {
    /// A battery with the paper's initial charge of 10 J.
    pub fn paper_default() -> Self {
        Battery::new(10.0)
    }

    /// A battery with `initial_j` joules of charge.
    pub fn new(initial_j: f64) -> Self {
        assert!(initial_j > 0.0, "battery must start with positive charge");
        Battery {
            initial_j,
            drawn_j: 0.0,
            ledger: EnergyLedger::new(),
            depleted_flagged: false,
        }
    }

    /// Initial charge in joules.
    pub fn initial(&self) -> f64 {
        self.initial_j
    }

    /// Remaining charge in joules (clamped at zero).
    pub fn remaining(&self) -> f64 {
        (self.initial_j - self.drawn_j).max(0.0)
    }

    /// Remaining charge as a fraction of the initial charge.
    pub fn fraction_remaining(&self) -> f64 {
        self.remaining() / self.initial_j
    }

    /// Total energy drawn so far (may exceed `initial` by the final draw that
    /// crossed zero).
    pub fn drawn(&self) -> f64 {
        self.drawn_j
    }

    /// Has the battery run out?
    pub fn is_depleted(&self) -> bool {
        self.drawn_j >= self.initial_j
    }

    /// Draw `joules` for `category`.  Returns `true` if this draw depleted
    /// the battery (i.e. it was alive before and is dead after) — the caller
    /// uses that edge to record the node-death time exactly once.
    pub fn draw(&mut self, category: EnergyCategory, joules: f64) -> bool {
        assert!(joules >= 0.0, "cannot draw negative energy");
        if self.depleted_flagged {
            return false;
        }
        self.drawn_j += joules;
        self.ledger.record(category, joules);
        if self.is_depleted() {
            self.depleted_flagged = true;
            return true;
        }
        false
    }

    /// The per-category ledger.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_battery_is_10_joules() {
        let b = Battery::paper_default();
        assert_eq!(b.initial(), 10.0);
        assert_eq!(b.remaining(), 10.0);
        assert_eq!(b.fraction_remaining(), 1.0);
        assert!(!b.is_depleted());
    }

    #[test]
    fn draws_accumulate_and_deplete() {
        let mut b = Battery::new(1.0);
        assert!(!b.draw(EnergyCategory::DataTransmit, 0.4));
        assert!(!b.draw(EnergyCategory::DataReceive, 0.4));
        assert!((b.remaining() - 0.2).abs() < 1e-12);
        // The draw that crosses zero reports the depletion edge exactly once.
        assert!(b.draw(EnergyCategory::Sleep, 0.3));
        assert!(b.is_depleted());
        assert_eq!(b.remaining(), 0.0);
        // Further draws are ignored and do not re-report depletion.
        assert!(!b.draw(EnergyCategory::DataTransmit, 5.0));
        assert!((b.drawn() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn ledger_attributes_energy_by_category() {
        let mut b = Battery::new(10.0);
        b.draw(EnergyCategory::DataTransmit, 1.0);
        b.draw(EnergyCategory::DataTransmit, 0.5);
        b.draw(EnergyCategory::ToneReceive, 0.25);
        b.draw(EnergyCategory::Startup, 0.1);
        let l = b.ledger();
        assert!((l.by_category(EnergyCategory::DataTransmit) - 1.5).abs() < 1e-12);
        assert!((l.by_category(EnergyCategory::ToneReceive) - 0.25).abs() < 1e-12);
        assert_eq!(l.by_category(EnergyCategory::DataReceive), 0.0);
        assert!((l.total() - 1.85).abs() < 1e-12);
        assert!((l.useful_radio() - 1.5).abs() < 1e-12);
        assert!((l.overhead() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn ledger_merge_sums_categories() {
        let mut a = EnergyLedger::new();
        a.record(EnergyCategory::Sleep, 1.0);
        a.record(EnergyCategory::DataTransmit, 2.0);
        let mut b = EnergyLedger::new();
        b.record(EnergyCategory::Sleep, 0.5);
        b.record(EnergyCategory::Codec, 0.25);
        a.merge(&b);
        assert!((a.by_category(EnergyCategory::Sleep) - 1.5).abs() < 1e-12);
        assert!((a.by_category(EnergyCategory::Codec) - 0.25).abs() < 1e-12);
        assert!((a.total() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn all_categories_enumerated_once() {
        let mut indices: Vec<usize> = EnergyCategory::ALL.iter().map(|c| c.index()).collect();
        indices.sort_unstable();
        indices.dedup();
        assert_eq!(indices.len(), EnergyCategory::ALL.len());
        // Display labels are unique and non-empty.
        let labels: std::collections::HashSet<String> =
            EnergyCategory::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(labels.len(), EnergyCategory::ALL.len());
        assert!(labels.iter().all(|l| !l.is_empty()));
    }

    #[test]
    fn fraction_remaining_decreases_monotonically() {
        let mut b = Battery::new(2.0);
        let mut prev = b.fraction_remaining();
        for _ in 0..10 {
            b.draw(EnergyCategory::DataReceive, 0.1);
            let f = b.fraction_remaining();
            assert!(f <= prev);
            prev = f;
        }
    }

    #[test]
    #[should_panic]
    fn negative_initial_charge_rejected() {
        Battery::new(0.0);
    }

    #[test]
    #[should_panic]
    fn negative_draw_rejected() {
        let mut b = Battery::new(1.0);
        b.draw(EnergyCategory::Other, -0.1);
    }
}
