//! Radio power profiles and state-residency energy computation.

use caem_simcore::time::Duration;
use serde::{Deserialize, Serialize};

/// Power states of the data radio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioState {
    /// Transmitting data frames.
    Transmit,
    /// Receiving data frames (the cluster head's dominant state).
    Receive,
    /// Sleeping (both RF chains powered down except the wake-up logic).
    Sleep,
    /// Waking up from sleep to active (the ~20 ms start-up transient).
    Startup,
}

/// Power states of the low-power tone radio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ToneRadioState {
    /// Broadcasting tone pulses (cluster head).
    Transmit,
    /// Listening to / measuring the tone channel (sensor).
    Receive,
    /// Powered off.
    Off,
}

/// Power draw of every radio state, in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioPowerProfile {
    /// Data radio transmit power draw (W).
    pub data_tx_w: f64,
    /// Data radio receive power draw (W).
    pub data_rx_w: f64,
    /// Data radio sleep power draw (W).
    pub data_sleep_w: f64,
    /// Data radio power draw during the start-up transient (W).
    pub data_startup_w: f64,
    /// Duration of the sleep→active start-up transient.
    pub startup_time: Duration,
    /// Tone radio transmit power draw (W).
    pub tone_tx_w: f64,
    /// Tone radio receive power draw (W).
    pub tone_rx_w: f64,
}

impl Default for RadioPowerProfile {
    fn default() -> Self {
        RadioPowerProfile::paper_default()
    }
}

impl RadioPowerProfile {
    /// The Table II power profile with the RFM radio's 20 ms start-up time.
    ///
    /// The start-up transient is charged at receive-level power: the
    /// frequency synthesizer and RX chain are live but no useful bits move.
    pub fn paper_default() -> Self {
        RadioPowerProfile {
            data_tx_w: 0.66,
            data_rx_w: 0.305,
            data_sleep_w: 3.5e-3,
            data_startup_w: 0.305,
            startup_time: Duration::from_millis(20),
            tone_tx_w: 92e-3,
            tone_rx_w: 36e-3,
        }
    }

    /// Power draw of a data-radio state (W).
    pub fn data_power(&self, state: RadioState) -> f64 {
        match state {
            RadioState::Transmit => self.data_tx_w,
            RadioState::Receive => self.data_rx_w,
            RadioState::Sleep => self.data_sleep_w,
            RadioState::Startup => self.data_startup_w,
        }
    }

    /// Power draw of a tone-radio state (W).
    pub fn tone_power(&self, state: ToneRadioState) -> f64 {
        match state {
            ToneRadioState::Transmit => self.tone_tx_w,
            ToneRadioState::Receive => self.tone_rx_w,
            ToneRadioState::Off => 0.0,
        }
    }

    /// Energy (J) spent holding the data radio in `state` for `dwell`.
    pub fn data_energy(&self, state: RadioState, dwell: Duration) -> f64 {
        self.data_power(state) * dwell.as_secs_f64()
    }

    /// Energy (J) spent holding the tone radio in `state` for `dwell`.
    pub fn tone_energy(&self, state: ToneRadioState, dwell: Duration) -> f64 {
        self.tone_power(state) * dwell.as_secs_f64()
    }

    /// Energy (J) of one complete sleep→active start-up transient.
    pub fn startup_energy(&self) -> f64 {
        self.data_energy(RadioState::Startup, self.startup_time)
    }

    /// Energy to transmit for `airtime` (transmitter side).
    pub fn transmit_energy(&self, airtime: Duration) -> f64 {
        self.data_energy(RadioState::Transmit, airtime)
    }

    /// Energy to receive for `airtime` (receiver side).
    pub fn receive_energy(&self, airtime: Duration) -> f64 {
        self.data_energy(RadioState::Receive, airtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_ii() {
        let p = RadioPowerProfile::paper_default();
        assert_eq!(p.data_tx_w, 0.66);
        assert_eq!(p.data_rx_w, 0.305);
        assert_eq!(p.data_sleep_w, 0.0035);
        assert_eq!(p.tone_tx_w, 0.092);
        assert_eq!(p.tone_rx_w, 0.036);
        assert_eq!(p.startup_time, Duration::from_millis(20));
    }

    #[test]
    fn state_power_lookup() {
        let p = RadioPowerProfile::paper_default();
        assert_eq!(p.data_power(RadioState::Transmit), p.data_tx_w);
        assert_eq!(p.data_power(RadioState::Receive), p.data_rx_w);
        assert_eq!(p.data_power(RadioState::Sleep), p.data_sleep_w);
        assert_eq!(p.data_power(RadioState::Startup), p.data_startup_w);
        assert_eq!(p.tone_power(ToneRadioState::Off), 0.0);
        assert_eq!(p.tone_power(ToneRadioState::Transmit), p.tone_tx_w);
        assert_eq!(p.tone_power(ToneRadioState::Receive), p.tone_rx_w);
    }

    #[test]
    fn energy_is_power_times_time() {
        let p = RadioPowerProfile::paper_default();
        // 1 ms of transmit at 0.66 W = 0.66 mJ.
        let e = p.transmit_energy(Duration::from_millis(1));
        assert!((e - 0.66e-3).abs() < 1e-12);
        let e = p.receive_energy(Duration::from_millis(8));
        assert!((e - 0.305 * 8e-3).abs() < 1e-12);
        let e = p.tone_energy(ToneRadioState::Receive, Duration::from_secs(1));
        assert!((e - 0.036).abs() < 1e-12);
    }

    #[test]
    fn startup_energy_value() {
        let p = RadioPowerProfile::paper_default();
        // 20 ms at 0.305 W = 6.1 mJ.
        assert!((p.startup_energy() - 6.1e-3).abs() < 1e-9);
    }

    #[test]
    fn sleep_is_orders_of_magnitude_cheaper_than_active() {
        let p = RadioPowerProfile::paper_default();
        assert!(p.data_sleep_w * 80.0 < p.data_rx_w);
        assert!(p.data_rx_w < p.data_tx_w);
        // The tone radio really is "low power" relative to the data radio.
        assert!(p.tone_rx_w < p.data_rx_w / 5.0);
    }

    #[test]
    fn transmitting_at_high_mode_saves_energy_per_packet() {
        // The core CAEM premise: a 2-kbit packet at 2 Mbps (1 ms) costs ~8x
        // less transmit energy than at 250 kbps (8 ms).
        let p = RadioPowerProfile::paper_default();
        let fast = p.transmit_energy(Duration::from_millis(1));
        let slow = p.transmit_energy(Duration::from_millis(8));
        assert!((slow / fast - 8.0).abs() < 1e-9);
    }
}
