//! # caem-energy
//!
//! Radio energy model and per-node battery accounting.
//!
//! The communication component dominates a sensor node's energy budget
//! (Section I: transmitting one bit costs ≈2000× executing one instruction),
//! so the paper models node energy purely as *radio power × state residency*
//! plus the radio start-up cost.  Table II gives the power figures this crate
//! encodes as defaults:
//!
//! | Component            | Power   |
//! |-----------------------|---------|
//! | Data radio, transmit  | 0.66 W  |
//! | Data radio, receive   | 0.305 W |
//! | Data radio, sleep     | 3.5 mW  |
//! | Tone radio, transmit  | 92 mW   |
//! | Tone radio, receive   | 36 mW   |
//!
//! plus the RFM-class radio's ~20 ms sleep→active start-up transient
//! (Section IV), during which the transceiver burns receive-level power
//! without moving any bits.  The paper explicitly neglects FEC
//! encoding/decoding computation energy "as negligible compared with energy
//! cost in electronics"; [`codec::CodecEnergyModel`] models it anyway (default
//! zero) so the ablation bench can test how much that assumption matters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod battery;
pub mod codec;
pub mod power;

pub use battery::{Battery, EnergyCategory, EnergyLedger};
pub use codec::CodecEnergyModel;
pub use power::{RadioPowerProfile, RadioState, ToneRadioState};
