//! Model-based test for the structure-of-arrays [`NodeTable`].
//!
//! The table's hot columns (`queue_len`, `remaining_j`, `alive`) are
//! *mirrors* of state owned by cold objects (packet buffers, batteries), so
//! the property that matters is: under any operation trace, the mirrors
//! never drift from the values a plain array-of-structs implementation
//! would hold.  Each case drives the same random operation sequence
//! through a `NodeTable` and through a reference AoS model built from the
//! very same `Battery`/`PacketBuffer` primitives, comparing every column
//! bit-for-bit after every operation.

use caem::policy::PolicyKind;
use caem_energy::battery::{Battery, EnergyCategory};
use caem_simcore::rng::RngStream;
use caem_simcore::time::SimTime;
use caem_traffic::buffer::PacketBuffer;
use caem_traffic::packet::{Packet, PacketId};
use caem_wsnsim::table::NodeTable;
use caem_wsnsim::ScenarioConfig;
use proptest::prelude::*;

const NODES: usize = 8;

/// The reference: one heavyweight struct per node, exactly the shape the
/// pre-refactor runner kept.
struct RefNode {
    alive: bool,
    is_head: bool,
    cluster: Option<usize>,
    battery: Battery,
    buffer: PacketBuffer,
    generated: u64,
    delivered: u64,
    dropped: u64,
    access_generation: u32,
}

fn build_pair(cfg: &ScenarioConfig) -> (NodeTable, Vec<RefNode>) {
    let streams = RngStream::new(cfg.seed);
    let table = NodeTable::deploy(cfg, &streams);
    let model = (0..cfg.node_count)
        .map(|_| RefNode {
            alive: true,
            is_head: false,
            cluster: None,
            battery: Battery::new(cfg.initial_energy_j),
            buffer: match cfg.buffer_capacity {
                Some(c) => PacketBuffer::with_capacity(c),
                None => PacketBuffer::unbounded(),
            },
            generated: 0,
            delivered: 0,
            dropped: 0,
            access_generation: 0,
        })
        .collect();
    (table, model)
}

fn assert_same(table: &NodeTable, model: &[RefNode]) {
    table.assert_mirrors_consistent();
    let mut alive = 0usize;
    for (i, m) in model.iter().enumerate() {
        assert_eq!(table.is_alive(i), m.alive, "alive drifted at node {i}");
        assert_eq!(table.is_head(i), m.is_head, "is_head drifted at node {i}");
        assert_eq!(table.cluster(i), m.cluster, "cluster drifted at node {i}");
        assert_eq!(
            table.queue_len(i),
            m.buffer.len(),
            "queue_len drifted at node {i}"
        );
        assert_eq!(
            table.remaining(i).to_bits(),
            m.battery.remaining().to_bits(),
            "remaining_j drifted at node {i}"
        );
        assert_eq!(
            table.access_generation(i),
            m.access_generation,
            "access_generation drifted at node {i}"
        );
        assert_eq!(table.generated(i), m.generated, "generated at node {i}");
        assert_eq!(table.delivered(i), m.delivered, "delivered at node {i}");
        assert_eq!(table.dropped(i), m.dropped, "dropped at node {i}");
        if m.alive {
            alive += 1;
        }
    }
    assert_eq!(table.alive_count(), alive, "alive_count drifted");
}

proptest! {
    #[test]
    fn hot_columns_never_drift_from_the_aos_model(
        ops in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let mut cfg = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 7);
        cfg.node_count = NODES;
        // Small batteries so depletion edges are actually exercised.
        cfg.initial_energy_j = 0.08;
        let (mut table, mut model) = build_pair(&cfg);
        let mut next_packet = 0u64;
        let mut scratch: Vec<Packet> = Vec::new();

        for word in ops {
            let node = (word % NODES as u64) as usize;
            let op = (word >> 3) % 7;
            let value = word >> 6;
            let m = &mut model[node];
            match op {
                // Energy draw (possibly the depletion edge).
                0 => {
                    let joules = (value % 100) as f64 * 0.001;
                    let died = table.draw_energy(node, EnergyCategory::DataTransmit, joules);
                    let mut model_died = false;
                    if m.alive {
                        model_died = m.battery.draw(EnergyCategory::DataTransmit, joules);
                        if model_died {
                            m.alive = false;
                        }
                    }
                    prop_assert_eq!(died, model_died);
                }
                // Churn kill: alive flips, battery keeps its charge.
                1 => {
                    let was_alive = table.fail_node(node);
                    prop_assert_eq!(was_alive, m.alive);
                    m.alive = false;
                }
                // Enqueue a packet (counts a drop on overflow).
                2 => {
                    let p = Packet::new(PacketId(next_packet), node, SimTime::from_millis(next_packet));
                    next_packet += 1;
                    let accepted = table.enqueue(node, p);
                    let model_accepted = m.buffer.enqueue(p);
                    prop_assert_eq!(accepted, model_accepted);
                    if !accepted {
                        table.record_dropped(node);
                        m.dropped += 1;
                    }
                }
                // Single dequeue.
                3 => {
                    let a = table.dequeue(node);
                    let b = m.buffer.dequeue();
                    prop_assert_eq!(a.map(|p| p.id), b.map(|p| p.id));
                }
                // Burst dequeue, half of it delivered, rest requeued at the
                // front (the collision-abort path).
                4 => {
                    let burst = (value % 6) as usize;
                    scratch.clear();
                    table.dequeue_burst_into(node, burst, &mut scratch);
                    let mut model_burst = m.buffer.dequeue_burst(burst);
                    prop_assert_eq!(scratch.len(), model_burst.len());
                    let sent = scratch.len() / 2;
                    for _ in 0..sent {
                        table.record_delivered(node);
                        m.delivered += 1;
                    }
                    let mut unsent: Vec<Packet> = scratch.split_off(sent);
                    let model_unsent: Vec<Packet> = model_burst.split_off(sent);
                    table.requeue_front_drain(node, &mut unsent);
                    m.buffer.requeue_front(model_unsent);
                }
                // Round boundary for this node.
                5 => {
                    let is_head = value % 3 == 0;
                    let cluster = if value % 5 == 0 { None } else { Some((value % 4) as usize) };
                    table.begin_round(node, is_head, cluster);
                    m.is_head = is_head;
                    m.cluster = cluster;
                    m.access_generation = m.access_generation.wrapping_add(1);
                }
                // Counters.
                _ => {
                    table.record_generated(node);
                    m.generated += 1;
                    if value % 2 == 0 {
                        table.record_self_delivered(node, value % 3);
                        m.delivered += value % 3;
                    }
                }
            }
            assert_same(&table, &model);
        }
    }

    #[test]
    fn deploy_columns_match_scenario_deployment(seed in any::<u64>()) {
        // Deployment itself: every node starts alive, unassigned, with an
        // empty queue and a full battery, and the heterogeneity spread
        // diversifies charge without touching liveness or queues.
        let mut cfg = ScenarioConfig::small(PolicyKind::Scheme1Adaptive, 5.0, seed);
        cfg.node_count = NODES;
        cfg.initial_energy_spread = 0.4;
        let streams = RngStream::new(cfg.seed);
        let table = NodeTable::deploy(&cfg, &streams);
        table.assert_mirrors_consistent();
        prop_assert_eq!(table.len(), NODES);
        prop_assert_eq!(table.alive_count(), NODES);
        for i in 0..NODES {
            prop_assert!(table.is_alive(i));
            prop_assert!(!table.is_head(i));
            prop_assert_eq!(table.cluster(i), None);
            prop_assert_eq!(table.queue_len(i), 0);
            let lo = cfg.initial_energy_j * 0.6 - 1e-9;
            let hi = cfg.initial_energy_j * 1.4 + 1e-9;
            let r = table.remaining(i);
            prop_assert!(r >= lo && r <= hi, "charge {r} outside spread band");
        }
        // Deterministic: a second deploy from the same seed is bit-equal.
        let again = NodeTable::deploy(&cfg, &RngStream::new(cfg.seed));
        for i in 0..NODES {
            prop_assert_eq!(table.remaining(i).to_bits(), again.remaining(i).to_bits());
            prop_assert_eq!(table.positions()[i].x.to_bits(), again.positions()[i].x.to_bits());
            prop_assert_eq!(table.positions()[i].y.to_bits(), again.positions()[i].y.to_bits());
        }
    }
}
