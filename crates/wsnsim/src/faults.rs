//! Deterministic fault injection, retry/backoff and recovery accounting for
//! the persistence and distribution layers.
//!
//! PR 4's distributed runner survives the failures its tests inject (worker
//! kills, torn JSONL tails, stale leases), but nothing *enforced* that the
//! recovery claims hold under the failures nobody thought to write a test
//! for.  This module turns the failure model into a first-class, injectable
//! surface:
//!
//! 1. **IO seams** — the [`StoreIo`] and [`LeaseIo`] traits sit between the
//!    store/lease code and the filesystem: store appends, lock-file
//!    creation, atomic replace (temp file + rename) and lease-age (mtime)
//!    reads all route through them.  [`RealIo`] is the production
//!    passthrough; [`ChaosIo`] wraps it with a seeded [`FaultPlan`] that
//!    injects torn writes, `EINTR`/`ENOSPC`-class transient errors, delayed
//!    renames, forged clock skew, worker kill-at-append-K and poisoned
//!    (panicking) jobs — deterministically per seed.
//! 2. **Typed error classification + bounded backoff** — [`classify_io_error`]
//!    splits IO failures into [`ErrorClass::Transient`] (worth retrying) and
//!    [`ErrorClass::Fatal`] (abort exactly once).  [`retry_transient`] retries
//!    transient failures under a [`RetryPolicy`]: bounded exponential backoff
//!    with deterministic jitter, so retry schedules are reproducible per seed
//!    and never exceed the configured cap.
//! 3. **A counted event log** — recovery actions that used to be
//!    unconditional `eprintln!`s (torn lines skipped, leases stolen,
//!    transient retries, quarantined jobs) are now counted process-wide
//!    ([`note_event`] / [`event_count`] / [`event_summary`]) so tests and the
//!    CLI can assert on them.  The counters are observability only: they are
//!    deliberately **not** part of the canonical report artifact, which must
//!    stay byte-identical between clean and fault-injected runs.
//!
//! Fault plans install process-globally ([`install_plan`]) because worker
//! *processes* must inherit them across `exec` — the coordinator forwards
//! the plan through the [`CHAOS_ENV`] environment variable and workers call
//! [`install_plan_from_env`].  Production code never pays for the seam: with
//! no plan installed, [`store_io`]/[`lease_io`] hand out the passthrough.
//!
//! Injection is **recoverable by construction**: every fault that a bounded
//! retry is expected to absorb is injected only on a call's first attempt
//! (`attempt == 0`), so a retry loop of two attempts already guarantees
//! forward progress and a chaos grid always completes.  Faults that retries
//! cannot absorb (kills, poison) are absorbed one level up — by lease
//! stealing and job quarantine respectively.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once, RwLock};
use std::time::Duration as StdDuration;

use crate::persist::JobKey;

// ---------------------------------------------------------------------------
// Error classification.
// ---------------------------------------------------------------------------

/// Whether an IO failure is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Interrupted-system-call / out-of-space-class failures that routinely
    /// clear on their own; bounded retry with backoff is the right response.
    Transient,
    /// Everything else (permissions, missing directories, corrupt handles):
    /// retrying cannot help, so the operation aborts exactly once.
    Fatal,
}

/// Classify an IO error as transient (retry with backoff) or fatal (abort).
///
/// Transient classes: `Interrupted` (`EINTR`), `WouldBlock` (`EAGAIN`),
/// `TimedOut`, `WriteZero` (a short write, the torn-append signature) and
/// the raw `ENOSPC` errno — space exhaustion is routinely cleared by a log
/// rotation or another process finishing, and the append path recovers from
/// the partial write it may have left behind.
pub fn classify_io_error(error: &io::Error) -> ErrorClass {
    use io::ErrorKind as K;
    if matches!(
        error.kind(),
        K::Interrupted | K::WouldBlock | K::TimedOut | K::WriteZero
    ) {
        return ErrorClass::Transient;
    }
    // Errno-level transients the portable ErrorKind mapping misses:
    // EINTR(4), EAGAIN(11), ENOSPC(28).
    matches!(error.raw_os_error(), Some(4 | 11 | 28))
        .then_some(ErrorClass::Transient)
        .unwrap_or(ErrorClass::Fatal)
}

// ---------------------------------------------------------------------------
// Bounded exponential backoff with deterministic jitter.
// ---------------------------------------------------------------------------

/// Stateless 64-bit finalizer (SplitMix64's mixer): the deterministic
/// randomness source for jitter and fault-plan decisions.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Retry schedule for transient IO failures: bounded exponential backoff
/// with deterministic (seeded) jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1.
    pub max_attempts: u32,
    /// Delay ceiling of the first backoff step.
    pub base_delay: StdDuration,
    /// Hard cap every backoff delay stays at or under.
    pub max_delay: StdDuration,
    /// Seed of the deterministic jitter stream: equal seeds reproduce the
    /// exact same delay schedule.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: StdDuration::from_millis(2),
            max_delay: StdDuration::from_millis(200),
            jitter_seed: 0x5eed_cafe,
        }
    }
}

impl RetryPolicy {
    /// The delay slept after failed attempt number `attempt` (0-based).
    ///
    /// The schedule doubles a `base_delay` ceiling per attempt, caps it at
    /// `max_delay`, and fills the upper half of the window with
    /// deterministic jitter derived from `jitter_seed` — so concurrent
    /// retriers with different seeds decorrelate, while equal (seed,
    /// attempt) pairs always produce the identical delay.  The result never
    /// exceeds `max_delay`.
    pub fn backoff_delay(&self, attempt: u32) -> StdDuration {
        let base = self.base_delay.as_nanos().min(u128::from(u64::MAX)) as u64;
        let cap = self.max_delay.as_nanos().min(u128::from(u64::MAX)) as u64;
        if base == 0 || cap == 0 {
            return StdDuration::ZERO;
        }
        let ceiling = base.saturating_mul(1u64 << attempt.min(20)).min(cap).max(1);
        let jitter_span = ceiling / 2 + 1;
        let jitter = mix64(self.jitter_seed ^ (u64::from(attempt) << 32) ^ 0x9E37_79B9_7F4A_7C15)
            % jitter_span;
        StdDuration::from_nanos((ceiling - ceiling / 2 + jitter).min(cap))
    }
}

/// Run `op` under `policy`: transient failures (per [`classify_io_error`])
/// are retried with backoff up to `policy.max_attempts` total attempts;
/// fatal failures — and transient failures that exhaust the budget — return
/// the error immediately.  `op` receives the 0-based attempt number (the
/// [`ChaosIo`] seam injects only on attempt 0, guaranteeing bounded retries
/// always recover injected faults).
pub fn retry_transient<T>(
    policy: &RetryPolicy,
    mut op: impl FnMut(u32) -> io::Result<T>,
) -> io::Result<T> {
    let attempts = policy.max_attempts.max(1);
    let mut attempt = 0;
    loop {
        match op(attempt) {
            Ok(value) => return Ok(value),
            Err(error) => {
                if classify_io_error(&error) == ErrorClass::Fatal || attempt + 1 >= attempts {
                    return Err(error);
                }
                note_event(RunEvent::TransientRetry);
                std::thread::sleep(policy.backoff_delay(attempt));
                attempt += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The counted recovery-event log.
// ---------------------------------------------------------------------------

/// A counted recovery or degradation event.  Counters are process-wide and
/// observability-only: they never enter the canonical report artifact, so a
/// fault-injected run's report stays byte-identical to the clean run's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEvent {
    /// A corrupt or torn JSONL line was skipped while loading a store.
    TornLineSkipped,
    /// A persisted record not belonging to the current grid was ignored.
    ForeignRecordIgnored,
    /// A stale lease (dead owner, pid reuse, or TTL expiry) was stolen.
    LeaseStolen,
    /// A transient IO failure was retried with backoff.
    TransientRetry,
    /// A failed job was re-attempted before quarantine.
    JobRetried,
    /// A job exhausted its attempts and was quarantined as a
    /// [`crate::persist::JobFailure`].
    JobQuarantined,
    /// A spawned worker exited abnormally (killed, panicked, or errored).
    WorkerAbnormalExit,
    /// The active [`FaultPlan`] injected a fault.
    FaultInjected,
    /// The service daemon evicted a silent worker whose lease TTL expired.
    WorkerEvicted,
    /// A protocol frame was dropped, truncated or rejected and re-sent.
    FrameRetried,
}

/// Every [`RunEvent`] variant, in counter order.
pub const RUN_EVENTS: [RunEvent; 10] = [
    RunEvent::TornLineSkipped,
    RunEvent::ForeignRecordIgnored,
    RunEvent::LeaseStolen,
    RunEvent::TransientRetry,
    RunEvent::JobRetried,
    RunEvent::JobQuarantined,
    RunEvent::WorkerAbnormalExit,
    RunEvent::FaultInjected,
    RunEvent::WorkerEvicted,
    RunEvent::FrameRetried,
];

impl RunEvent {
    fn index(self) -> usize {
        RUN_EVENTS
            .iter()
            .position(|&e| e == self)
            .expect("RUN_EVENTS covers every variant")
    }

    /// Human-readable counter label.
    pub fn label(self) -> &'static str {
        match self {
            RunEvent::TornLineSkipped => "torn lines skipped",
            RunEvent::ForeignRecordIgnored => "foreign records ignored",
            RunEvent::LeaseStolen => "leases stolen",
            RunEvent::TransientRetry => "transient IO retries",
            RunEvent::JobRetried => "job retries",
            RunEvent::JobQuarantined => "jobs quarantined",
            RunEvent::WorkerAbnormalExit => "abnormal worker exits",
            RunEvent::FaultInjected => "faults injected",
            RunEvent::WorkerEvicted => "stale workers evicted",
            RunEvent::FrameRetried => "frames retried",
        }
    }
}

static EVENT_COUNTS: [AtomicU64; RUN_EVENTS.len()] =
    [const { AtomicU64::new(0) }; RUN_EVENTS.len()];

/// Count one occurrence of `event`.
pub fn note_event(event: RunEvent) {
    note_events(event, 1);
}

/// Count `n` occurrences of `event`.
pub fn note_events(event: RunEvent, n: u64) {
    EVENT_COUNTS[event.index()].fetch_add(n, Ordering::Relaxed);
}

/// This process's running count of `event`.
pub fn event_count(event: RunEvent) -> u64 {
    EVENT_COUNTS[event.index()].load(Ordering::Relaxed)
}

/// Snapshot of every event counter, in [`RUN_EVENTS`] order.
pub fn event_counters() -> Vec<(RunEvent, u64)> {
    RUN_EVENTS.iter().map(|&e| (e, event_count(e))).collect()
}

/// Zero every event counter (test isolation).
pub fn reset_events() {
    for counter in &EVENT_COUNTS {
        counter.store(0, Ordering::Relaxed);
    }
}

/// One-line summary of the non-zero event counters, or `None` when this
/// process recorded no recovery events at all (the common clean-run case).
pub fn event_summary() -> Option<String> {
    let parts: Vec<String> = event_counters()
        .into_iter()
        .filter(|&(_, n)| n > 0)
        .map(|(e, n)| format!("{n} {}", e.label()))
        .collect();
    if parts.is_empty() {
        None
    } else {
        Some(format!("recovery events: {}", parts.join(", ")))
    }
}

// ---------------------------------------------------------------------------
// The IO seams.
// ---------------------------------------------------------------------------

/// The seam over experiment-store file IO: JSONL line appends and fsync.
pub trait StoreIo: Send + Sync {
    /// Append one complete JSONL line (newline included) to `file`.
    /// `attempt` is the caller's 0-based retry attempt — the passthrough
    /// ignores it; [`ChaosIo`] injects faults only on attempt 0.
    fn append_line(&self, file: &mut File, line: &[u8], attempt: u32) -> io::Result<()>;

    /// Flush `file`'s data and metadata to stable storage.
    fn sync(&self, file: &File) -> io::Result<()>;
}

/// The seam over lease/manifest file IO: atomic claim creation, atomic
/// replace (temp file + rename) and lease-age reads.
pub trait LeaseIo: Send + Sync {
    /// Atomically create `path` with `body` iff it does not exist.  Returns
    /// `Ok(true)` when this call created the file (the claim succeeded) and
    /// `Ok(false)` when the path already existed.
    fn create_new(&self, path: &Path, body: &[u8], attempt: u32) -> io::Result<bool>;

    /// Atomically replace `path`'s content with `body` (unique temp file +
    /// rename, so concurrent writers interleave whole files, never bytes).
    /// With `durable`, the temp file is fsynced before the rename — the
    /// write-then-rename crash-consistency discipline manifests need.
    fn replace_atomic(
        &self,
        path: &Path,
        body: &[u8],
        durable: bool,
        attempt: u32,
    ) -> io::Result<()>;

    /// Age of the file at `path` since its last modification.  A future
    /// mtime (cross-machine clock skew) reads as zero — "freshly refreshed"
    /// — so skew can only delay a steal, never cause a premature one.
    fn lease_age(&self, path: &Path) -> io::Result<StdDuration>;
}

/// The production passthrough: plain `std::fs` with no injection.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

/// Per-process sequence for unique temp-file names: concurrent writers to
/// the same target (e.g. heartbeat refreshes racing across rayon threads)
/// must never share a staging file, or one rename would rip the other's
/// staged bytes out from under it.
static REPLACE_SEQ: AtomicU64 = AtomicU64::new(0);

impl StoreIo for RealIo {
    fn append_line(&self, file: &mut File, line: &[u8], _attempt: u32) -> io::Result<()> {
        file.write_all(line)
    }

    fn sync(&self, file: &File) -> io::Result<()> {
        file.sync_all()
    }
}

impl LeaseIo for RealIo {
    fn create_new(&self, path: &Path, body: &[u8], _attempt: u32) -> io::Result<bool> {
        match OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(mut file) => {
                file.write_all(body)?;
                Ok(true)
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn replace_atomic(
        &self,
        path: &Path,
        body: &[u8],
        durable: bool,
        _attempt: u32,
    ) -> io::Result<()> {
        let seq = REPLACE_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp.{}.{seq}", std::process::id()));
        let mut file = File::create(&tmp)?;
        file.write_all(body)?;
        if durable {
            // fsync-before-rename: after a crash the target holds either the
            // old content or the complete new content, never a torn hybrid
            // whose bytes were still in the page cache when the rename
            // committed.
            file.sync_all()?;
        }
        drop(file);
        std::fs::rename(&tmp, path)
    }

    fn lease_age(&self, path: &Path) -> io::Result<StdDuration> {
        let mtime = std::fs::metadata(path)?.modified()?;
        Ok(mtime.elapsed().unwrap_or(StdDuration::ZERO))
    }
}

// ---------------------------------------------------------------------------
// Fault plans.
// ---------------------------------------------------------------------------

/// One injectable fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Worker processes exit abruptly after their K-th store append.
    Kill,
    /// Store appends occasionally write half the line, then fail transient.
    Torn,
    /// Lease-age reads occasionally return forged, hours-old ages (clock
    /// skew), provoking spurious steals.
    Skew,
    /// Store and lease operations occasionally fail with `EINTR`/`ENOSPC`-
    /// class transient errors without writing anything.
    Transient,
    /// Atomic replaces (lease steals, heartbeats, manifests) are delayed by
    /// a few milliseconds, widening race windows.
    Delay,
    /// A deterministic subset of jobs panics inside the runner, exercising
    /// retry + quarantine.
    Poison,
}

/// Every [`FaultKind`], in parse order.
pub const FAULT_KINDS: [FaultKind; 6] = [
    FaultKind::Kill,
    FaultKind::Torn,
    FaultKind::Skew,
    FaultKind::Transient,
    FaultKind::Delay,
    FaultKind::Poison,
];

impl FaultKind {
    /// The kind's spelling in `--chaos` specs and the env round-trip.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Kill => "kill",
            FaultKind::Torn => "torn",
            FaultKind::Skew => "skew",
            FaultKind::Transient => "transient",
            FaultKind::Delay => "delay",
            FaultKind::Poison => "poison",
        }
    }
}

/// The declarative description of a fault schedule: a seed plus the enabled
/// fault classes.  Parses from (and renders back to) the `seed:kind+kind`
/// text used by `--chaos` and the [`CHAOS_ENV`] variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanConfig {
    /// Seed of the deterministic decision stream.
    pub seed: u64,
    /// The enabled fault classes (duplicates removed, parse order kept).
    pub kinds: Vec<FaultKind>,
}

impl FaultPlanConfig {
    /// Parse a `seed:kind+kind` spec (e.g. `7:torn+skew`).  `all` expands to
    /// every kind except `poison` (poison changes the report's quarantine
    /// section by design, so it is always opted into explicitly).
    pub fn parse(text: &str) -> Result<Self, String> {
        let (seed_text, kinds_text) = text.split_once(':').ok_or_else(|| {
            format!("chaos spec `{text}` must be `seed:kind+kind` (e.g. `7:torn+skew`)")
        })?;
        let seed: u64 = seed_text
            .parse()
            .map_err(|_| format!("chaos seed `{seed_text}` is not an unsigned integer"))?;
        let mut kinds = Vec::new();
        let mut push = |k: FaultKind| {
            if !kinds.contains(&k) {
                kinds.push(k);
            }
        };
        for part in kinds_text.split('+') {
            match part {
                "all" => {
                    for k in FAULT_KINDS {
                        if k != FaultKind::Poison {
                            push(k);
                        }
                    }
                }
                other => match FAULT_KINDS.iter().find(|k| k.label() == other) {
                    Some(&k) => push(k),
                    None => {
                        return Err(format!(
                            "unknown fault kind `{other}` (expected one of kill, torn, skew, \
                             transient, delay, poison, all)"
                        ))
                    }
                },
            }
        }
        if kinds.is_empty() {
            return Err(format!("chaos spec `{text}` enables no fault kinds"));
        }
        Ok(FaultPlanConfig { seed, kinds })
    }

    /// Render back to the `seed:kind+kind` text ([`FaultPlanConfig::parse`]
    /// round-trips it) — what the coordinator exports through [`CHAOS_ENV`].
    pub fn env_string(&self) -> String {
        let kinds: Vec<&str> = self.kinds.iter().map(|k| k.label()).collect();
        format!("{}:{}", self.seed, kinds.join("+"))
    }
}

/// Which role the current process plays under a fault plan.  Kill faults
/// only fire in [`FaultRole::Worker`] processes — killing the coordinator
/// would abort the experiment itself rather than exercise recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultRole {
    /// The process that owns the grid and merges the final report.
    Coordinator,
    /// A disposable worker process whose death must be survivable.
    Worker,
}

/// Marker carried in injected poison panics, so the quarantine path can be
/// asserted on and the panic hook can keep injected panics off stderr.
pub const POISON_MARKER: &str = "caem-injected-poison";

/// A live, seeded fault schedule (the runtime form of [`FaultPlanConfig`]).
///
/// Decisions draw from a deterministic counter-based stream: the N-th
/// injectable operation in a process makes the same decision in every run
/// with the same seed.  Faults a retry is expected to absorb are injected
/// only on `attempt == 0`, so bounded retries always recover.
pub struct FaultPlan {
    cfg: FaultPlanConfig,
    role: FaultRole,
    draws: AtomicU64,
    appends: AtomicU64,
    kill_at: u64,
}

impl FaultPlan {
    fn new(cfg: FaultPlanConfig, role: FaultRole) -> Self {
        let kill_at = 3 + cfg.seed % 8;
        FaultPlan {
            cfg,
            role,
            draws: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            kill_at,
        }
    }

    /// The plan's declarative configuration.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.cfg
    }

    fn has(&self, kind: FaultKind) -> bool {
        self.cfg.kinds.contains(&kind)
    }

    fn draw(&self) -> u64 {
        let n = self.draws.fetch_add(1, Ordering::Relaxed);
        mix64(self.cfg.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// An injected transient error, rotating through the transient classes
    /// so every class is exercised.
    fn injected_error(&self, what: &str) -> io::Error {
        let kinds = [
            io::ErrorKind::Interrupted,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::TimedOut,
            io::ErrorKind::WriteZero,
        ];
        let kind = kinds[(self.draw() % kinds.len() as u64) as usize];
        io::Error::new(kind, format!("injected transient fault: {what}"))
    }

    fn kill_check(&self) {
        if self.role != FaultRole::Worker || !self.has(FaultKind::Kill) {
            return;
        }
        let n = self.appends.fetch_add(1, Ordering::Relaxed) + 1;
        if n == self.kill_at {
            eprintln!(
                "chaos: killing worker {} at append {n} (seed {})",
                std::process::id(),
                self.cfg.seed
            );
            std::process::exit(87);
        }
    }

    fn tear_append(&self, attempt: u32) -> bool {
        attempt == 0 && self.has(FaultKind::Torn) && self.draw().is_multiple_of(5)
    }

    fn fail_append(&self, attempt: u32) -> bool {
        attempt == 0 && self.has(FaultKind::Transient) && self.draw().is_multiple_of(6)
    }

    fn fail_lease_op(&self, attempt: u32) -> bool {
        attempt == 0 && self.has(FaultKind::Transient) && self.draw().is_multiple_of(6)
    }

    fn delay_replace(&self) -> Option<StdDuration> {
        if self.has(FaultKind::Delay) && self.draw().is_multiple_of(3) {
            Some(StdDuration::from_millis(1 + self.draw() % 8))
        } else {
            None
        }
    }

    fn forge_skew(&self) -> Option<StdDuration> {
        if self.has(FaultKind::Skew) && self.draw().is_multiple_of(3) {
            // Forge the lease hours old: the reader believes its own clock
            // ran far ahead of the writer's, and steals.  Only *old* ages
            // are forged — a forged-fresh age could park a dead shard
            // forever, which is a liveness bug, not a recoverable fault.
            Some(StdDuration::from_secs(3600))
        } else {
            None
        }
    }

    /// Frame-level fault decision for the in-memory loopback transport:
    /// the N-th frame sent through a faulted link is dropped, duplicated,
    /// delayed or truncated deterministically per seed.  Reuses the chaos
    /// vocabulary: `torn` truncates frames (the decoder must reject them
    /// with a typed error), `transient` drops or duplicates them (the
    /// sender's retention/resend and the merge's dedupe must absorb both),
    /// and `delay` stalls delivery, widening race windows.
    ///
    /// The TCP transport never consults this: truncating a length-prefixed
    /// byte stream would desynchronise every later frame, turning one
    /// injected fault into an unrecoverable connection error.
    pub fn frame_fault(&self) -> Option<FrameFault> {
        if self.has(FaultKind::Torn) && self.draw().is_multiple_of(7) {
            return Some(FrameFault::Truncate);
        }
        if self.has(FaultKind::Transient) && self.draw().is_multiple_of(6) {
            return Some(if self.draw().is_multiple_of(2) {
                FrameFault::Drop
            } else {
                FrameFault::Duplicate
            });
        }
        if self.has(FaultKind::Delay) && self.draw().is_multiple_of(5) {
            return Some(FrameFault::Delay(StdDuration::from_millis(
                1 + self.draw() % 5,
            )));
        }
        None
    }

    /// Whether the plan poisons the job at `key`: a deterministic ~1/16
    /// subset of the grid, stable across processes and runs of the same
    /// seed (so a retried poison job fails again and is quarantined).
    pub fn is_poisoned(&self, key: JobKey) -> bool {
        if !self.has(FaultKind::Poison) {
            return false;
        }
        let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ self.cfg.seed;
        for word in [key.0 as u64, key.1 as u64, key.2] {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash.is_multiple_of(16)
    }
}

/// An injected frame-level fault on the loopback worker transport (see
/// [`FaultPlan::frame_fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// The frame is silently lost; the sender must retain and resend.
    Drop,
    /// The frame is delivered twice; the receiver's merge must dedupe.
    Duplicate,
    /// Delivery is stalled by the given duration.
    Delay(StdDuration),
    /// The frame arrives with its tail cut off; decoding must fail with a
    /// typed error, never a panic.
    Truncate,
}

/// The chaos wrapper: [`RealIo`] plus a [`FaultPlan`] deciding, per
/// operation, whether to tear, fail, delay, forge or kill first.
pub struct ChaosIo {
    plan: Arc<FaultPlan>,
}

impl ChaosIo {
    /// Wrap the passthrough with `plan`.
    pub fn new(plan: Arc<FaultPlan>) -> Self {
        ChaosIo { plan }
    }
}

impl StoreIo for ChaosIo {
    fn append_line(&self, file: &mut File, line: &[u8], attempt: u32) -> io::Result<()> {
        self.plan.kill_check();
        if self.plan.tear_append(attempt) {
            note_event(RunEvent::FaultInjected);
            // A torn write: half the bytes land, then the "syscall" fails.
            // The recovery path must newline-terminate the fragment before
            // rewriting, or the retry would fuse with it.
            let _ = file.write_all(&line[..line.len() / 2]);
            return Err(self.plan.injected_error("torn store append"));
        }
        if self.plan.fail_append(attempt) {
            note_event(RunEvent::FaultInjected);
            return Err(self.plan.injected_error("store append"));
        }
        RealIo.append_line(file, line, attempt)
    }

    fn sync(&self, file: &File) -> io::Result<()> {
        RealIo.sync(file)
    }
}

impl LeaseIo for ChaosIo {
    fn create_new(&self, path: &Path, body: &[u8], attempt: u32) -> io::Result<bool> {
        if self.plan.fail_lease_op(attempt) {
            note_event(RunEvent::FaultInjected);
            return Err(self.plan.injected_error("lease create"));
        }
        RealIo.create_new(path, body, attempt)
    }

    fn replace_atomic(
        &self,
        path: &Path,
        body: &[u8],
        durable: bool,
        attempt: u32,
    ) -> io::Result<()> {
        if let Some(delay) = self.plan.delay_replace() {
            note_event(RunEvent::FaultInjected);
            std::thread::sleep(delay);
        }
        if self.plan.fail_lease_op(attempt) {
            note_event(RunEvent::FaultInjected);
            return Err(self.plan.injected_error("atomic replace"));
        }
        RealIo.replace_atomic(path, body, durable, attempt)
    }

    fn lease_age(&self, path: &Path) -> io::Result<StdDuration> {
        let age = RealIo.lease_age(path)?;
        if let Some(skew) = self.plan.forge_skew() {
            note_event(RunEvent::FaultInjected);
            return Ok(age + skew);
        }
        Ok(age)
    }
}

// ---------------------------------------------------------------------------
// Process-global plan installation.
// ---------------------------------------------------------------------------

/// Environment variable carrying the fault plan from coordinator to worker
/// processes (the [`FaultPlanConfig::env_string`] text).
pub const CHAOS_ENV: &str = "CAEM_CHAOS";

/// Environment variable (any non-empty value) telling worker processes to
/// fsync every store append — the process-boundary form of `--fsync`.
pub const FSYNC_ENV: &str = "CAEM_STORE_FSYNC";

static ACTIVE_PLAN: RwLock<Option<Arc<FaultPlan>>> = RwLock::new(None);
static POISON_HOOK: Once = Once::new();

/// Install `cfg` as this process's active fault plan.  Every store opened
/// and lease operation issued afterwards routes through a [`ChaosIo`]
/// wrapping the plan.  Returns the live plan handle.
pub fn install_plan(cfg: FaultPlanConfig, role: FaultRole) -> Arc<FaultPlan> {
    if cfg.kinds.contains(&FaultKind::Poison) {
        // Keep injected poison panics off stderr: they are expected,
        // quarantined, and would otherwise drown real panic reports.
        POISON_HOOK.call_once(|| {
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let payload = info
                    .payload()
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| info.payload().downcast_ref::<&str>().copied())
                    .unwrap_or("");
                if !payload.contains(POISON_MARKER) {
                    default_hook(info);
                }
            }));
        });
    }
    let plan = Arc::new(FaultPlan::new(cfg, role));
    *ACTIVE_PLAN.write().expect("fault plan lock poisoned") = Some(Arc::clone(&plan));
    plan
}

/// Install the plan the [`CHAOS_ENV`] variable describes, if set — what a
/// worker process does on startup so it inherits the coordinator's chaos
/// schedule across `exec`.  A malformed value is a hard error (a chaos run
/// silently downgrading to a clean run would fake test coverage).
pub fn install_plan_from_env(role: FaultRole) -> Result<Option<Arc<FaultPlan>>, String> {
    match std::env::var(CHAOS_ENV) {
        Ok(text) if !text.is_empty() => {
            let cfg = FaultPlanConfig::parse(&text)?;
            Ok(Some(install_plan(cfg, role)))
        }
        _ => Ok(None),
    }
}

/// Deactivate any installed fault plan (test isolation).
pub fn clear_plan() {
    *ACTIVE_PLAN.write().expect("fault plan lock poisoned") = None;
}

/// This process's active fault plan, if one is installed.
pub fn active_plan() -> Option<Arc<FaultPlan>> {
    ACTIVE_PLAN
        .read()
        .expect("fault plan lock poisoned")
        .clone()
}

/// The store-IO seam the persistence layer should use right now: the
/// passthrough, or a [`ChaosIo`] when a plan is installed.
pub fn store_io() -> Arc<dyn StoreIo> {
    match active_plan() {
        Some(plan) => Arc::new(ChaosIo::new(plan)),
        None => Arc::new(RealIo),
    }
}

/// The lease-IO seam the distribution layer should use right now.
pub fn lease_io() -> Arc<dyn LeaseIo> {
    match active_plan() {
        Some(plan) => Arc::new(ChaosIo::new(plan)),
        None => Arc::new(RealIo),
    }
}

/// Panic iff the active plan poisons the job at `key` — called inside the
/// guarded runner's `catch_unwind`, so an injected poison exercises exactly
/// the retry/quarantine path a genuinely panicking job would.
pub fn poison_check(key: JobKey) {
    if let Some(plan) = active_plan() {
        if plan.is_poisoned(key) {
            panic!(
                "{POISON_MARKER}: injected poison in job (scenario {}, policy {}, seed {})",
                key.0, key.1, key.2
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_per_seed_and_bounded() {
        let policy = RetryPolicy::default();
        let twin = RetryPolicy::default();
        for attempt in 0..40 {
            let d = policy.backoff_delay(attempt);
            assert_eq!(d, twin.backoff_delay(attempt), "deterministic");
            assert!(d <= policy.max_delay, "bounded at attempt {attempt}");
            assert!(d > StdDuration::ZERO);
        }
        let other = RetryPolicy {
            jitter_seed: 0x0dd_5eed,
            ..RetryPolicy::default()
        };
        assert!(
            (0..8).any(|a| other.backoff_delay(a) != policy.backoff_delay(a)),
            "different seeds decorrelate"
        );
    }

    #[test]
    fn transient_errors_retry_and_fatal_errors_abort_once() {
        let policy = RetryPolicy {
            base_delay: StdDuration::from_micros(10),
            max_delay: StdDuration::from_micros(100),
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let out: io::Result<u32> = retry_transient(&policy, |_| {
            calls += 1;
            if calls < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls, 3, "two transient failures were retried");

        let mut calls = 0;
        let out: io::Result<u32> = retry_transient(&policy, |_| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "EACCES"))
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "fatal errors abort exactly once");
    }

    #[test]
    fn enospc_errno_classifies_transient() {
        assert_eq!(
            classify_io_error(&io::Error::from_raw_os_error(28)),
            ErrorClass::Transient
        );
        assert_eq!(
            classify_io_error(&io::Error::new(io::ErrorKind::NotFound, "gone")),
            ErrorClass::Fatal
        );
    }

    #[test]
    fn fault_plan_config_round_trips_through_its_env_string() {
        let cfg = FaultPlanConfig::parse("42:torn+skew+poison").unwrap();
        assert_eq!(cfg.seed, 42);
        assert_eq!(
            cfg.kinds,
            vec![FaultKind::Torn, FaultKind::Skew, FaultKind::Poison]
        );
        assert_eq!(FaultPlanConfig::parse(&cfg.env_string()).unwrap(), cfg);
        // `all` expands to every non-poison kind.
        let all = FaultPlanConfig::parse("7:all").unwrap();
        assert!(all.kinds.contains(&FaultKind::Kill));
        assert!(!all.kinds.contains(&FaultKind::Poison));
        assert!(FaultPlanConfig::parse("7").is_err());
        assert!(FaultPlanConfig::parse("7:bogus").is_err());
        assert!(FaultPlanConfig::parse("x:torn").is_err());
    }

    #[test]
    fn poison_selection_is_deterministic_and_partial() {
        let plan = FaultPlan::new(
            FaultPlanConfig::parse("16:poison").unwrap(),
            FaultRole::Worker,
        );
        let again = FaultPlan::new(
            FaultPlanConfig::parse("16:poison").unwrap(),
            FaultRole::Worker,
        );
        let keys: Vec<JobKey> = (0..6)
            .flat_map(|s| (0..3).flat_map(move |p| (0..8).map(move |seed| (s, p, seed))))
            .collect();
        let poisoned: Vec<bool> = keys.iter().map(|&k| plan.is_poisoned(k)).collect();
        assert_eq!(
            poisoned,
            keys.iter()
                .map(|&k| again.is_poisoned(k))
                .collect::<Vec<_>>(),
            "same seed, same poison set"
        );
        let count = poisoned.iter().filter(|&&p| p).count();
        assert!(count > 0, "some jobs are poisoned");
        assert!(count < keys.len(), "most jobs are not");
    }
}
