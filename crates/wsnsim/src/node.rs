//! Per-node protocol components: traffic sources and threshold policies.
//!
//! The per-node *state* itself lives in [`crate::table::NodeTable`] as
//! structure-of-arrays columns; this module keeps the closed enums the
//! table's cold columns are made of, plus their factories.

use caem::policy::{AdaptiveThreshold, FixedThreshold, NoAdaptation, PolicyKind, ThresholdPolicy};
use caem_traffic::profile::{DiurnalCycle, ModulatedSource};
use caem_traffic::source::{BurstySource, CbrSource, PoissonSource, TrafficSource};

use crate::config::{ScenarioConfig, TrafficModel, TrafficProfile};

/// The traffic source variants a node can run (kept as an enum so nodes stay
/// `Send` and allocation-free in the hot path; the diurnal wrapper boxes its
/// base source once at deployment time, never per arrival).
#[derive(Debug, Clone)]
pub enum NodeTrafficSource {
    /// Poisson arrivals.
    Poisson(PoissonSource),
    /// Constant-bit-rate arrivals.
    Cbr(CbrSource),
    /// Two-state bursty arrivals.
    Bursty(BurstySource),
    /// Any of the above warped through a diurnal cycle.
    Modulated(Box<ModulatedSource<NodeTrafficSource>>),
}

impl TrafficSource for NodeTrafficSource {
    fn next_arrival(&mut self, now: caem_simcore::time::SimTime) -> caem_simcore::time::SimTime {
        match self {
            NodeTrafficSource::Poisson(s) => s.next_arrival(now),
            NodeTrafficSource::Cbr(s) => s.next_arrival(now),
            NodeTrafficSource::Bursty(s) => s.next_arrival(now),
            NodeTrafficSource::Modulated(s) => s.next_arrival(now),
        }
    }

    fn mean_rate(&self) -> f64 {
        match self {
            NodeTrafficSource::Poisson(s) => s.mean_rate(),
            NodeTrafficSource::Cbr(s) => s.mean_rate(),
            NodeTrafficSource::Bursty(s) => s.mean_rate(),
            NodeTrafficSource::Modulated(s) => s.mean_rate(),
        }
    }
}

/// The threshold-policy variants a node can run, as a closed enum.
///
/// Dispatch was previously through `Box<dyn ThresholdPolicy>`; the enum keeps
/// nodes allocation-free, lets the per-event policy queries
/// (`required_snr_db`, `is_urgent`, arrival notifications) inline into the
/// event loop, and removes a pointer chase per query.
#[derive(Debug, Clone)]
pub enum NodePolicy {
    /// Pure LEACH: no channel adaptation.
    PureLeach(NoAdaptation),
    /// CAEM Scheme 1: adaptive threshold.
    Adaptive(AdaptiveThreshold),
    /// CAEM Scheme 2: fixed highest threshold.
    Fixed(FixedThreshold),
}

impl ThresholdPolicy for NodePolicy {
    fn kind(&self) -> PolicyKind {
        match self {
            NodePolicy::PureLeach(p) => p.kind(),
            NodePolicy::Adaptive(p) => p.kind(),
            NodePolicy::Fixed(p) => p.kind(),
        }
    }

    fn on_packet_arrival(&mut self, queue_len: usize) {
        match self {
            NodePolicy::PureLeach(p) => p.on_packet_arrival(queue_len),
            NodePolicy::Adaptive(p) => p.on_packet_arrival(queue_len),
            NodePolicy::Fixed(p) => p.on_packet_arrival(queue_len),
        }
    }

    fn on_packets_sent(&mut self, queue_len: usize) {
        match self {
            NodePolicy::PureLeach(p) => p.on_packets_sent(queue_len),
            NodePolicy::Adaptive(p) => p.on_packets_sent(queue_len),
            NodePolicy::Fixed(p) => p.on_packets_sent(queue_len),
        }
    }

    fn on_round_change(&mut self) {
        match self {
            NodePolicy::PureLeach(p) => p.on_round_change(),
            NodePolicy::Adaptive(p) => p.on_round_change(),
            NodePolicy::Fixed(p) => p.on_round_change(),
        }
    }

    fn current_threshold(&self) -> Option<caem_phy::TransmissionMode> {
        match self {
            NodePolicy::PureLeach(p) => p.current_threshold(),
            NodePolicy::Adaptive(p) => p.current_threshold(),
            NodePolicy::Fixed(p) => p.current_threshold(),
        }
    }

    fn is_urgent(&self, queue_len: usize) -> bool {
        match self {
            NodePolicy::PureLeach(p) => p.is_urgent(queue_len),
            NodePolicy::Adaptive(p) => p.is_urgent(queue_len),
            NodePolicy::Fixed(p) => p.is_urgent(queue_len),
        }
    }
}

/// Build the policy object for a protocol variant.
pub fn build_policy(kind: PolicyKind, config: &ScenarioConfig) -> NodePolicy {
    match kind {
        PolicyKind::PureLeach => {
            NodePolicy::PureLeach(NoAdaptation::new(config.caem.queue_threshold))
        }
        PolicyKind::Scheme1Adaptive => NodePolicy::Adaptive(AdaptiveThreshold::new(config.caem)),
        PolicyKind::Scheme2Fixed => NodePolicy::Fixed(FixedThreshold::new(
            config.caem.initial_threshold,
            config.caem.queue_threshold,
        )),
    }
}

/// Build the traffic source for a node from the scenario's traffic model and
/// time-of-day profile.  A [`TrafficProfile::Diurnal`] profile wraps the
/// base source in a deterministic time warp; [`TrafficProfile::Constant`]
/// returns the base source untouched, so the paper's stationary scenarios
/// build bit-identical sources.
pub fn build_source(
    model: TrafficModel,
    profile: TrafficProfile,
    rng: caem_simcore::rng::StreamRng,
) -> NodeTrafficSource {
    let base = match model {
        TrafficModel::Poisson { rate_pps } => {
            NodeTrafficSource::Poisson(PoissonSource::new(rate_pps, rng))
        }
        TrafficModel::Cbr { rate_pps } => NodeTrafficSource::Cbr(CbrSource::new(rate_pps)),
        TrafficModel::Bursty {
            quiet_rate_pps,
            burst_rate_pps,
            mean_quiet_s,
            mean_burst_s,
        } => NodeTrafficSource::Bursty(BurstySource::new(
            quiet_rate_pps,
            burst_rate_pps,
            mean_quiet_s,
            mean_burst_s,
            rng,
        )),
    };
    match profile {
        TrafficProfile::Constant => base,
        TrafficProfile::Diurnal {
            period_s,
            relative_amplitude,
        } => NodeTrafficSource::Modulated(Box::new(ModulatedSource::new(
            base,
            DiurnalCycle::trough_start(period_s, relative_amplitude),
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caem_simcore::rng::StreamRng;
    use caem_simcore::time::SimTime;

    #[test]
    fn policy_factory_builds_all_kinds() {
        let cfg = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 1);
        assert_eq!(
            build_policy(PolicyKind::PureLeach, &cfg).kind(),
            PolicyKind::PureLeach
        );
        assert_eq!(
            build_policy(PolicyKind::Scheme1Adaptive, &cfg).kind(),
            PolicyKind::Scheme1Adaptive
        );
        assert_eq!(
            build_policy(PolicyKind::Scheme2Fixed, &cfg).kind(),
            PolicyKind::Scheme2Fixed
        );
    }

    #[test]
    fn source_factory_builds_all_models() {
        let rng = || StreamRng::from_seed_u64(1);
        let constant = TrafficProfile::Constant;
        let mut p = build_source(TrafficModel::Poisson { rate_pps: 5.0 }, constant, rng());
        let mut c = build_source(TrafficModel::Cbr { rate_pps: 5.0 }, constant, rng());
        let mut b = build_source(
            TrafficModel::Bursty {
                quiet_rate_pps: 1.0,
                burst_rate_pps: 10.0,
                mean_quiet_s: 5.0,
                mean_burst_s: 1.0,
            },
            constant,
            rng(),
        );
        for s in [&mut p, &mut c, &mut b] {
            let t = s.next_arrival(SimTime::ZERO);
            assert!(t > SimTime::ZERO);
            assert!(s.mean_rate() > 0.0);
        }
        assert_eq!(c.mean_rate(), 5.0);
    }

    #[test]
    fn diurnal_profile_wraps_the_base_source_and_keeps_its_mean_rate() {
        let diurnal = TrafficProfile::Diurnal {
            period_s: 300.0,
            relative_amplitude: 0.7,
        };
        let warped = build_source(
            TrafficModel::Poisson { rate_pps: 5.0 },
            diurnal,
            StreamRng::from_seed_u64(2),
        );
        assert!(matches!(warped, NodeTrafficSource::Modulated(_)));
        assert_eq!(warped.mean_rate(), 5.0);
        // A constant profile builds the bare source — the paper's scenarios
        // take the exact pre-profile code path.
        let plain = build_source(
            TrafficModel::Poisson { rate_pps: 5.0 },
            TrafficProfile::Constant,
            StreamRng::from_seed_u64(2),
        );
        assert!(matches!(plain, NodeTrafficSource::Poisson(_)));
    }
}
