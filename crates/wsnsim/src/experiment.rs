//! The sharded experiment engine: flat (scenario × policy × seed) job grids
//! fanned out in a **single** parallel layer.
//!
//! The figure sweeps used to nest `par_iter` calls (`load_sweep` fanned out
//! loads, and each load fanned out protocols), which with per-call thread
//! sizing oversubscribed the machine by loads × cores.  The engine fixes the
//! bug *by construction*: every experiment — however many axes it has — is
//! first enumerated into one flat [`ExperimentJob`] work list and then run
//! through exactly one parallel fan-out ([`run_configs`] or the equivalent
//! job-list fan-out in [`ExperimentSpec::run`]), whose workers come out of
//! rayon's process-wide thread budget.
//!
//! On top of the flat grid the engine adds what a single-seed point estimate
//! cannot give: **replication**.  Each (scenario, policy) cell is simulated
//! once per seed, per-replicate metrics are folded into Welford
//! [`RunningStats`] accumulators (mergeable for parallel reduction), and the
//! report carries mean ± 95 % CI per metric instead of one unqualified
//! number.
//!
//! Aggregation runs through exactly one path: every run — fresh, resumed
//! from a [`crate::persist::ExperimentStore`], or re-aggregated offline from
//! JSONL alone — converts its replicates to [`crate::persist::JobRecord`]s
//! and folds them in the canonical (scenario, policy, seed) order
//! ([`ExperimentReport::from_records`]).  Bit-identical reports across those
//! three paths are therefore a property of the construction, not of careful
//! bookkeeping at each call site.
//!
//! [`ExperimentSpec::run_sequential`] adds CI-driven **sequential stopping**
//! on top of the store: replicate batches are appended per cell until the
//! 95 % CI half-width of a chosen metric drops under a target (or a
//! replicate cap is hit), and because every replicate is persisted, later
//! invocations reuse the store instead of re-simulating.

use caem::policy::PolicyKind;
use caem_simcore::stats::RunningStats;
use rayon::prelude::*;
use serde_json::{json, Value};

use crate::config::{ConfigError, ScenarioConfig};
use crate::persist::{config_hash, ExperimentStore, JobRecord};
use crate::result::SimulationResult;
use crate::runner::SimulationRun;
use crate::sweep::PAPER_POLICIES;

/// The single parallel layer every experiment goes through: run each
/// scenario in one flat rayon fan-out, preserving input order.
///
/// All sweep / grid / ablation entry points funnel into this function, so no
/// caller can ever stack one parallel layer on another.
pub fn run_configs(configs: &[ScenarioConfig]) -> Vec<SimulationResult> {
    configs
        .par_iter()
        .map(|cfg| SimulationRun::new(cfg.clone()).run())
        .collect()
}

/// A named scenario template.  Policy and seed are overridden per job, so
/// the template's own `policy`/`seed` fields are irrelevant.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Human/machine label carried into the report (e.g. "uniform_5pps").
    pub label: String,
    /// The configuration template.
    pub base: ScenarioConfig,
}

impl ScenarioSpec {
    /// Create a labelled scenario template.
    pub fn new(label: impl Into<String>, base: ScenarioConfig) -> Self {
        ScenarioSpec {
            label: label.into(),
            base,
        }
    }
}

/// One cell coordinate plus the fully resolved configuration to run.
#[derive(Debug, Clone)]
pub struct ExperimentJob {
    /// Index into [`ExperimentSpec::scenarios`].
    pub scenario: usize,
    /// Protocol variant of this job.
    pub policy: PolicyKind,
    /// Master seed of this replicate.
    pub seed: u64,
    /// The resolved scenario configuration.
    pub config: ScenarioConfig,
}

/// A replicated experiment grid: scenarios × policies × seeds.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Scenario templates (outermost axis).
    pub scenarios: Vec<ScenarioSpec>,
    /// Protocol variants to run on every scenario.
    pub policies: Vec<PolicyKind>,
    /// Seed replicates; every (scenario, policy) cell runs once per seed,
    /// and a seed is shared across policies (common random numbers).
    pub seeds: Vec<u64>,
}

impl ExperimentSpec {
    /// A grid over the given scenarios with the paper's three protocols and
    /// `replicates` consecutive seeds starting at `base_seed`.
    pub fn paper_policies(scenarios: Vec<ScenarioSpec>, base_seed: u64, replicates: usize) -> Self {
        ExperimentSpec {
            scenarios,
            policies: PAPER_POLICIES.to_vec(),
            seeds: (0..replicates as u64).map(|i| base_seed + i).collect(),
        }
    }

    /// Total number of jobs the grid enumerates to.
    pub fn job_count(&self) -> usize {
        self.scenarios.len() * self.policies.len() * self.seeds.len()
    }

    /// Flatten the grid into its complete work list: every
    /// (scenario, policy, seed) combination exactly once, in deterministic
    /// row-major order (scenario outermost, seed innermost).
    pub fn enumerate_jobs(&self) -> Vec<ExperimentJob> {
        let mut jobs = Vec::with_capacity(self.job_count());
        for (si, scenario) in self.scenarios.iter().enumerate() {
            for &policy in &self.policies {
                for &seed in &self.seeds {
                    jobs.push(ExperimentJob {
                        scenario: si,
                        policy,
                        seed,
                        config: scenario.base.clone().with_policy(policy).with_seed(seed),
                    });
                }
            }
        }
        jobs
    }

    /// The position of a job's policy in this spec's policy list.
    fn policy_index(&self, job: &ExperimentJob) -> usize {
        self.policies
            .iter()
            .position(|&p| p == job.policy)
            .expect("every enumerated job carries a policy from the spec")
    }

    /// Job identity (scenario, policy, seed) is only well defined when the
    /// axes hold no duplicates; the persisted-store paths key on it.
    pub(crate) fn assert_distinct_axes(&self) {
        for (i, &p) in self.policies.iter().enumerate() {
            assert!(
                !self.policies[..i].contains(&p),
                "duplicate policy {p:?} in experiment spec"
            );
        }
        for (i, &s) in self.seeds.iter().enumerate() {
            assert!(
                !self.seeds[..i].contains(&s),
                "duplicate seed {s} in experiment spec"
            );
        }
    }

    /// Run the whole grid (one flat parallel layer) and aggregate every
    /// cell's replicates into mean ± 95 % CI summaries.
    pub fn run(&self) -> ExperimentReport {
        self.assert_distinct_axes();
        let jobs = self.enumerate_jobs();
        // The grid's single parallel layer: one flat fan-out over the job
        // list (the same shape as `run_configs`, fanning over the jobs
        // directly to avoid a second config clone pass).
        let results: Vec<SimulationResult> = jobs
            .par_iter()
            .map(|job| SimulationRun::new(job.config.clone()).run())
            .collect();
        let records: Vec<JobRecord> = jobs
            .iter()
            .zip(&results)
            .map(|(job, result)| {
                JobRecord::from_result(
                    &self.scenarios[job.scenario].label,
                    self.policy_index(job),
                    job,
                    result,
                )
            })
            .collect();
        self.report_from(records)
    }

    /// Run the grid **resumably**: jobs whose results are already in the
    /// store (same coordinates, same config hash) are skipped, only the
    /// remainder runs through the single parallel layer, and each fresh
    /// result is streamed to the store as one JSONL record the moment it
    /// completes — an interrupted grid loses at most the jobs in flight.
    ///
    /// The report is aggregated from the records in canonical order, so it
    /// is bit-identical to what an uninterrupted [`ExperimentSpec::run`]
    /// of the same grid produces, no matter how many resume cycles the
    /// store went through.
    pub fn run_with_store(&self, store: &mut ExperimentStore) -> ExperimentReport {
        self.assert_distinct_axes();
        let jobs = self.enumerate_jobs();
        let mut records: Vec<Option<JobRecord>> = jobs
            .iter()
            .map(|job| {
                store
                    .get(
                        (job.scenario, self.policy_index(job), job.seed),
                        config_hash(&job.config),
                        &self.scenarios[job.scenario].label,
                    )
                    .cloned()
            })
            .collect();
        let pending: Vec<usize> = (0..jobs.len()).filter(|&i| records[i].is_none()).collect();
        if !pending.is_empty() {
            // The single parallel layer over the *missing* jobs only: each
            // worker encodes its own record and ships it through the
            // lock-free collector, so no job ever waits on another job's
            // disk write.  IO errors surface when the collector drains.
            let fresh: Vec<(usize, JobRecord)> = store
                .with_parallel_sink(|sink| {
                    pending
                        .par_iter()
                        .map(|&i| {
                            let job = &jobs[i];
                            let result = SimulationRun::new(job.config.clone()).run();
                            let record = JobRecord::from_result(
                                &self.scenarios[job.scenario].label,
                                self.policy_index(job),
                                job,
                                &result,
                            );
                            sink.append(&record);
                            (i, record)
                        })
                        .collect()
                })
                .expect("experiment store append failed");
            for (i, record) in fresh {
                store.note_record(record.clone());
                records[i] = Some(record);
            }
        }
        let records = records
            .into_iter()
            .map(|r| r.expect("every job resolved from store or simulation"));
        self.report_from(records)
    }

    /// Aggregate records through the canonical path, stamping the report
    /// with this spec's seed list (authoritative over the records' own).
    fn report_from<I: IntoIterator<Item = JobRecord>>(&self, records: I) -> ExperimentReport {
        let mut report = ExperimentReport::from_records(records);
        report.seeds = self.seeds.clone();
        report
    }

    /// Run the grid with CI-driven **sequential stopping**: starting from
    /// this spec's seed list, keep appending batches of `stop.batch` fresh
    /// replicates (consecutive seeds, shared across every cell to preserve
    /// the common-random-numbers pairing) until the worst-cell 95 % CI
    /// half-width of `stop.metric` drops to `stop.target_half_width` or the
    /// per-cell replicate count reaches `stop.max_replicates`.
    ///
    /// Every replicate is persisted through `store`, so an interrupted or
    /// re-invoked sequential run resumes from the replicates already on
    /// disk instead of re-simulating them.
    pub fn run_sequential(
        &self,
        store: &mut ExperimentStore,
        stop: &SequentialStopping,
    ) -> SequentialOutcome {
        stop.validate()
            .unwrap_or_else(|e| panic!("invalid sequential-stopping configuration: {e}"));
        assert!(
            !self.seeds.is_empty(),
            "sequential stopping needs a non-empty initial seed batch"
        );
        assert!(
            stop.max_replicates >= self.seeds.len(),
            "replicate cap {} is below the initial batch of {} seeds — the cap could never be honoured",
            stop.max_replicates,
            self.seeds.len()
        );
        let mut spec = self.clone();
        let mut rounds = Vec::new();
        loop {
            let report = spec.run_with_store(store);
            let worst_half_width = worst_ci_half_width(&report, &stop.metric);
            rounds.push(SequentialRound {
                replicates: spec.seeds.len(),
                worst_half_width,
            });
            let converged = worst_half_width <= stop.target_half_width;
            if converged || spec.seeds.len() >= stop.max_replicates {
                return SequentialOutcome {
                    report,
                    rounds,
                    converged,
                };
            }
            let next = spec.seeds.iter().copied().max().expect("non-empty seeds") + 1;
            let add = stop.batch.min(stop.max_replicates - spec.seeds.len()) as u64;
            spec.seeds.extend((0..add).map(|i| next + i));
        }
    }
}

/// The largest per-cell 95 % CI half-width of `metric` across a report —
/// the quantity sequential stopping drives to its target.  A cell with
/// fewer than two usable replicates carries no dispersion information and
/// reads as infinite, so convergence is never declared on it.
pub(crate) fn worst_ci_half_width(report: &ExperimentReport, metric: &str) -> f64 {
    report
        .cells
        .iter()
        .map(|cell| {
            let stats = cell.metric(metric).expect("validated metric name");
            if stats.count() < 2 {
                f64::INFINITY
            } else {
                stats.ci95_half_width()
            }
        })
        .fold(0.0, f64::max)
}

/// Configuration of a CI-driven sequential-stopping loop.
#[derive(Debug, Clone)]
pub struct SequentialStopping {
    /// The metric (a [`METRIC_NAMES`] entry) whose CI drives the loop.
    pub metric: String,
    /// Stop once every cell's 95 % CI half-width is at or below this.
    pub target_half_width: f64,
    /// Fresh replicates appended per round.
    pub batch: usize,
    /// Hard cap on replicates per cell (the loop always terminates).
    pub max_replicates: usize,
}

impl SequentialStopping {
    /// Check the stopping rule, returning a typed [`ConfigError`] (with
    /// `sequential.*` field paths) instead of panicking, so CLI- and
    /// spec-driven rules surface mistakes verbatim.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !METRIC_NAMES.contains(&self.metric.as_str()) {
            return Err(ConfigError::UnknownVariant {
                path: "sequential.metric".to_string(),
                value: self.metric.clone(),
                expected: &METRIC_NAMES,
            });
        }
        if self.batch < 1 {
            return Err(ConfigError::NonPositive {
                path: "sequential.batch".to_string(),
                value: 0.0,
            });
        }
        if self.target_half_width < 0.0 {
            return Err(ConfigError::Negative {
                path: "sequential.target_half_width".to_string(),
                value: self.target_half_width,
            });
        }
        if self.max_replicates < 1 {
            return Err(ConfigError::NonPositive {
                path: "sequential.max_replicates".to_string(),
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// One round of a sequential-stopping loop.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialRound {
    /// Replicates per cell after this round.
    pub replicates: usize,
    /// The worst (largest) per-cell CI half-width of the chosen metric;
    /// infinite while any cell has fewer than two usable replicates.
    pub worst_half_width: f64,
}

/// What a sequential-stopping run produced.
#[derive(Debug, Clone)]
pub struct SequentialOutcome {
    /// The final aggregated report.
    pub report: ExperimentReport,
    /// Per-round trace of replicate counts and worst half-widths.
    pub rounds: Vec<SequentialRound>,
    /// True when the target was met; false when the replicate cap stopped
    /// the loop first.
    pub converged: bool,
}

/// The metrics summarised per cell, in report order.
pub const METRIC_NAMES: [&str; 8] = [
    "delivery_rate",
    "average_delay_ms",
    "throughput_kbps",
    "mj_per_delivered_packet",
    "total_remaining_energy_j",
    "nodes_alive",
    "collisions",
    "node_failures",
];

/// Extract one replicate's value per metric, in [`METRIC_NAMES`] order.
/// `mj_per_delivered_packet` is NaN when the replicate delivered nothing;
/// [`ExperimentCell::absorb`] drops non-finite values so one starved
/// replicate cannot poison a cell's mean/CI.
pub(crate) fn replicate_metrics(r: &SimulationResult) -> [f64; METRIC_NAMES.len()] {
    [
        r.delivery_rate(),
        r.perf.average_delay_ms(),
        r.perf.throughput_kbps(),
        r.per_packet_energy()
            .millijoules_per_packet()
            .unwrap_or(f64::NAN),
        r.total_remaining_energy(),
        r.nodes_alive() as f64,
        r.collisions as f64,
        r.node_failures as f64,
    ]
}

/// The aggregated replicates of one (scenario, policy) cell.
///
/// `PartialEq` compares the Welford accumulators field-exactly, so
/// `assert_eq!` on two cells (or whole reports) is the "bit-identical"
/// check the persistence layer's resume/replay guarantees are stated in.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentCell {
    /// Index into the spec's scenario list.
    pub scenario_index: usize,
    /// The scenario's label.
    pub scenario: String,
    /// Protocol variant of the cell.
    pub policy: PolicyKind,
    /// One Welford accumulator per entry of [`METRIC_NAMES`]; each
    /// replicate's value is folded in as one observation, so a metric's
    /// `count()` is the number of replicates that produced a finite value.
    pub metrics: Vec<RunningStats>,
}

impl ExperimentCell {
    fn first(
        scenario_index: usize,
        scenario: &str,
        policy: PolicyKind,
        replicate: &[f64; METRIC_NAMES.len()],
    ) -> Self {
        let mut cell = ExperimentCell {
            scenario_index,
            scenario: scenario.to_string(),
            policy,
            metrics: vec![RunningStats::new(); METRIC_NAMES.len()],
        };
        cell.absorb(replicate);
        cell
    }

    /// Fold one replicate's metric vector into the accumulators.  Non-finite
    /// values (a ratio whose denominator was zero in that replicate) are
    /// skipped: Welford's recurrence has no recovery from a NaN push, and an
    /// undefined replicate should lower the metric's replicate count rather
    /// than erase the whole cell.
    fn absorb(&mut self, replicate: &[f64; METRIC_NAMES.len()]) {
        for (stats, &value) in self.metrics.iter_mut().zip(replicate) {
            if value.is_finite() {
                stats.push(value);
            }
        }
    }

    /// The accumulator for a named metric.
    pub fn metric(&self, name: &str) -> Option<&RunningStats> {
        METRIC_NAMES
            .iter()
            .position(|&m| m == name)
            .map(|i| &self.metrics[i])
    }
}

/// Everything an experiment grid run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// The seed replicates every cell was run with.
    pub seeds: Vec<u64>,
    /// Number of simulations executed.
    pub job_count: usize,
    /// One aggregated cell per (scenario, policy) pair, in enumeration order.
    pub cells: Vec<ExperimentCell>,
    /// The degradation section: jobs quarantined after exhausting their
    /// retry budget (empty on a healthy run).  Cells containing quarantined
    /// jobs aggregate fewer replicates; the grid still completes.
    pub failures: Vec<crate::persist::JobFailure>,
}

impl ExperimentReport {
    /// Aggregate persisted job records into a report — the **single**
    /// aggregation path every run mode shares.
    ///
    /// Records are deduplicated by job key (last record wins, matching the
    /// store's append-order semantics — an [`crate::persist::ExperimentStore`]
    /// hands over already-deduplicated records, in which case this pass is a
    /// no-op) and folded in the canonical (scenario index, policy index,
    /// seed) order, so the result does not depend on completion interleaving
    /// or on how many resume cycles wrote the store.  `seeds` is the sorted
    /// set of distinct seeds observed; [`ExperimentSpec`]-driven runs
    /// overwrite it with the spec's own list.
    pub fn from_records<I: IntoIterator<Item = JobRecord>>(records: I) -> Self {
        // Aggregation is queue/collector work in the profile's vocabulary;
        // it runs outside any simulation shard, so it lands in the global
        // accumulator.
        let span = caem_metrics::prof::Span::start();
        let mut deduped = crate::persist::dedupe_last_wins(records);
        deduped.sort_by_key(JobRecord::key);
        let mut cells: Vec<ExperimentCell> = Vec::new();
        for record in &deduped {
            let replicate = record.metric_array();
            match cells
                .iter_mut()
                .find(|c| c.scenario_index == record.scenario_index && c.policy == record.policy)
            {
                Some(cell) => cell.absorb(&replicate),
                None => cells.push(ExperimentCell::first(
                    record.scenario_index,
                    &record.scenario,
                    record.policy,
                    &replicate,
                )),
            }
        }
        let mut seeds: Vec<u64> = deduped.iter().map(|r| r.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        let report = ExperimentReport {
            seeds,
            job_count: deduped.len(),
            cells,
            failures: Vec::new(),
        };
        span.stop_global(
            caem_metrics::prof::ProfKey::Collector,
            report.job_count as u64,
        );
        report
    }
    /// The cell for a given scenario label and policy.
    pub fn cell(&self, scenario: &str, policy: PolicyKind) -> Option<&ExperimentCell> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.policy == policy)
    }

    /// Serialize the full replicated grid — mean, 95 % CI half-width, min,
    /// max and replicate count per metric — as a JSON value.
    pub fn to_json(&self) -> Value {
        let cells: Vec<Value> = self
            .cells
            .iter()
            .map(|cell| {
                let metrics: Vec<Value> = METRIC_NAMES
                    .iter()
                    .zip(&cell.metrics)
                    .map(|(name, s)| {
                        json!({
                            "name": name,
                            "mean": s.mean(),
                            "ci95_half_width": s.ci95_half_width(),
                            "min": s.min(),
                            "max": s.max(),
                            "replicates": s.count(),
                        })
                    })
                    .collect();
                json!({
                    "scenario": cell.scenario,
                    "policy": format!("{:?}", cell.policy),
                    "metrics": metrics,
                })
            })
            .collect();
        if self.failures.is_empty() {
            // No "quarantined" key at all on a healthy run: the artifact of
            // a fault-injected-but-recovered grid stays byte-identical to
            // the clean run's, which is what the chaos CI byte-diffs.
            json!({
                "seeds": self.seeds,
                "job_count": self.job_count,
                "cells": cells,
            })
        } else {
            let quarantined: Vec<Value> = self
                .failures
                .iter()
                .map(|f| {
                    json!({
                        "scenario": f.scenario,
                        "policy": format!("{:?}", f.policy),
                        "seed": f.seed,
                        "attempts": f.attempts,
                        "reason": f.reason,
                    })
                })
                .collect();
            json!({
                "seeds": self.seeds,
                "job_count": self.job_count,
                "cells": cells,
                "quarantined": quarantined,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Topology;
    use caem_simcore::time::Duration;

    fn tiny_spec(replicates: usize) -> ExperimentSpec {
        let base = ScenarioConfig::small(PolicyKind::PureLeach, 8.0, 0)
            .with_duration(Duration::from_secs(10));
        ExperimentSpec::paper_policies(
            vec![
                ScenarioSpec::new("uniform", base.clone()),
                ScenarioSpec::new(
                    "corridor",
                    base.clone().with_topology(Topology::Corridor {
                        width_fraction: 0.3,
                    }),
                ),
                ScenarioSpec::new(
                    "hotspots",
                    base.with_topology(Topology::GaussianClusters {
                        clusters: 3,
                        sigma_m: 10.0,
                    }),
                ),
            ],
            1_000,
            replicates,
        )
    }

    #[test]
    fn enumeration_covers_every_combination_exactly_once() {
        let spec = tiny_spec(5);
        let jobs = spec.enumerate_jobs();
        assert_eq!(jobs.len(), spec.job_count());
        assert_eq!(jobs.len(), 3 * 3 * 5);
        let mut triples: Vec<(usize, PolicyKind, u64)> = jobs
            .iter()
            .map(|j| (j.scenario, j.policy, j.seed))
            .collect();
        let before = triples.len();
        triples.sort_by_key(|&(s, p, seed)| (s, p as usize, seed));
        triples.dedup();
        assert_eq!(triples.len(), before, "duplicate (scenario, policy, seed)");
        // Jobs carry their coordinates into the resolved config.
        for j in &jobs {
            assert_eq!(j.config.policy, j.policy);
            assert_eq!(j.config.seed, j.seed);
        }
    }

    #[test]
    fn non_finite_replicates_do_not_poison_a_cell() {
        let mut cell = ExperimentCell::first(
            0,
            "starved",
            PolicyKind::PureLeach,
            &[1.0; METRIC_NAMES.len()],
        );
        let mut bad = [2.0; METRIC_NAMES.len()];
        bad[3] = f64::NAN; // mj_per_delivered_packet with zero deliveries
        cell.absorb(&bad);
        assert_eq!(cell.metrics[0].count(), 2);
        // The NaN was skipped: the metric keeps its finite replicate...
        assert_eq!(cell.metrics[3].count(), 1);
        assert_eq!(cell.metrics[3].mean(), 1.0);
        // ...instead of collapsing the whole accumulator to NaN.
        assert!(cell.metrics[3].ci95_half_width().is_finite());
    }

    #[test]
    fn grid_runs_and_aggregates_replicates() {
        let spec = tiny_spec(3);
        let report = spec.run();
        assert_eq!(report.job_count, 27);
        assert_eq!(report.cells.len(), 9);
        for cell in &report.cells {
            let delivery = cell.metric("delivery_rate").unwrap();
            assert_eq!(delivery.count(), 3);
            assert!(delivery.mean() > 0.0 && delivery.mean() <= 1.0);
        }
        let json = report.to_json();
        assert_eq!(json.get("job_count").and_then(|v| v.as_u64()), Some(27));
    }
}
