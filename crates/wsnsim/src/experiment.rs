//! The sharded experiment engine: flat (scenario × policy × seed) job grids
//! fanned out in a **single** parallel layer.
//!
//! The figure sweeps used to nest `par_iter` calls (`load_sweep` fanned out
//! loads, and each load fanned out protocols), which with per-call thread
//! sizing oversubscribed the machine by loads × cores.  The engine fixes the
//! bug *by construction*: every experiment — however many axes it has — is
//! first enumerated into one flat [`ExperimentJob`] work list and then run
//! through exactly one parallel fan-out ([`run_configs`] or the equivalent
//! job-list fan-out in [`ExperimentSpec::run`]), whose workers come out of
//! rayon's process-wide thread budget.
//!
//! On top of the flat grid the engine adds what a single-seed point estimate
//! cannot give: **replication**.  Each (scenario, policy) cell is simulated
//! once per seed, per-replicate metrics are folded into Welford
//! [`RunningStats`] accumulators (mergeable for parallel reduction), and the
//! report carries mean ± 95 % CI per metric instead of one unqualified
//! number.

use caem::policy::PolicyKind;
use caem_simcore::stats::RunningStats;
use rayon::prelude::*;
use serde_json::{json, Value};

use crate::config::ScenarioConfig;
use crate::result::SimulationResult;
use crate::runner::SimulationRun;
use crate::sweep::PAPER_POLICIES;

/// The single parallel layer every experiment goes through: run each
/// scenario in one flat rayon fan-out, preserving input order.
///
/// All sweep / grid / ablation entry points funnel into this function, so no
/// caller can ever stack one parallel layer on another.
pub fn run_configs(configs: &[ScenarioConfig]) -> Vec<SimulationResult> {
    configs
        .par_iter()
        .map(|cfg| SimulationRun::new(cfg.clone()).run())
        .collect()
}

/// A named scenario template.  Policy and seed are overridden per job, so
/// the template's own `policy`/`seed` fields are irrelevant.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Human/machine label carried into the report (e.g. "uniform_5pps").
    pub label: String,
    /// The configuration template.
    pub base: ScenarioConfig,
}

impl ScenarioSpec {
    /// Create a labelled scenario template.
    pub fn new(label: impl Into<String>, base: ScenarioConfig) -> Self {
        ScenarioSpec {
            label: label.into(),
            base,
        }
    }
}

/// One cell coordinate plus the fully resolved configuration to run.
#[derive(Debug, Clone)]
pub struct ExperimentJob {
    /// Index into [`ExperimentSpec::scenarios`].
    pub scenario: usize,
    /// Protocol variant of this job.
    pub policy: PolicyKind,
    /// Master seed of this replicate.
    pub seed: u64,
    /// The resolved scenario configuration.
    pub config: ScenarioConfig,
}

/// A replicated experiment grid: scenarios × policies × seeds.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Scenario templates (outermost axis).
    pub scenarios: Vec<ScenarioSpec>,
    /// Protocol variants to run on every scenario.
    pub policies: Vec<PolicyKind>,
    /// Seed replicates; every (scenario, policy) cell runs once per seed,
    /// and a seed is shared across policies (common random numbers).
    pub seeds: Vec<u64>,
}

impl ExperimentSpec {
    /// A grid over the given scenarios with the paper's three protocols and
    /// `replicates` consecutive seeds starting at `base_seed`.
    pub fn paper_policies(scenarios: Vec<ScenarioSpec>, base_seed: u64, replicates: usize) -> Self {
        ExperimentSpec {
            scenarios,
            policies: PAPER_POLICIES.to_vec(),
            seeds: (0..replicates as u64).map(|i| base_seed + i).collect(),
        }
    }

    /// Total number of jobs the grid enumerates to.
    pub fn job_count(&self) -> usize {
        self.scenarios.len() * self.policies.len() * self.seeds.len()
    }

    /// Flatten the grid into its complete work list: every
    /// (scenario, policy, seed) combination exactly once, in deterministic
    /// row-major order (scenario outermost, seed innermost).
    pub fn enumerate_jobs(&self) -> Vec<ExperimentJob> {
        let mut jobs = Vec::with_capacity(self.job_count());
        for (si, scenario) in self.scenarios.iter().enumerate() {
            for &policy in &self.policies {
                for &seed in &self.seeds {
                    jobs.push(ExperimentJob {
                        scenario: si,
                        policy,
                        seed,
                        config: scenario.base.clone().with_policy(policy).with_seed(seed),
                    });
                }
            }
        }
        jobs
    }

    /// Run the whole grid (one flat parallel layer) and aggregate every
    /// cell's replicates into mean ± 95 % CI summaries.
    pub fn run(&self) -> ExperimentReport {
        let jobs = self.enumerate_jobs();
        // The grid's single parallel layer: one flat fan-out over the job
        // list (the same shape as `run_configs`, fanning over the jobs
        // directly to avoid a second config clone pass).
        let results: Vec<SimulationResult> = jobs
            .par_iter()
            .map(|job| SimulationRun::new(job.config.clone()).run())
            .collect();

        let mut cells: Vec<ExperimentCell> = Vec::new();
        for (job, result) in jobs.iter().zip(&results) {
            let replicate = replicate_metrics(result);
            match cells
                .iter_mut()
                .find(|c| c.scenario_index == job.scenario && c.policy == job.policy)
            {
                Some(cell) => cell.absorb(&replicate),
                None => cells.push(ExperimentCell::first(
                    job.scenario,
                    &self.scenarios[job.scenario].label,
                    job.policy,
                    &replicate,
                )),
            }
        }
        ExperimentReport {
            seeds: self.seeds.clone(),
            job_count: jobs.len(),
            cells,
        }
    }
}

/// The metrics summarised per cell, in report order.
pub const METRIC_NAMES: [&str; 8] = [
    "delivery_rate",
    "average_delay_ms",
    "throughput_kbps",
    "mj_per_delivered_packet",
    "total_remaining_energy_j",
    "nodes_alive",
    "collisions",
    "node_failures",
];

/// Extract one replicate's value per metric, in [`METRIC_NAMES`] order.
/// `mj_per_delivered_packet` is NaN when the replicate delivered nothing;
/// [`ExperimentCell::absorb`] drops non-finite values so one starved
/// replicate cannot poison a cell's mean/CI.
fn replicate_metrics(r: &SimulationResult) -> [f64; METRIC_NAMES.len()] {
    [
        r.delivery_rate(),
        r.perf.average_delay_ms(),
        r.perf.throughput_kbps(),
        r.per_packet_energy()
            .millijoules_per_packet()
            .unwrap_or(f64::NAN),
        r.total_remaining_energy(),
        r.nodes_alive() as f64,
        r.collisions as f64,
        r.node_failures as f64,
    ]
}

/// The aggregated replicates of one (scenario, policy) cell.
#[derive(Debug, Clone)]
pub struct ExperimentCell {
    /// Index into the spec's scenario list.
    pub scenario_index: usize,
    /// The scenario's label.
    pub scenario: String,
    /// Protocol variant of the cell.
    pub policy: PolicyKind,
    /// One Welford accumulator per entry of [`METRIC_NAMES`]; each
    /// replicate's value is folded in as one observation, so a metric's
    /// `count()` is the number of replicates that produced a finite value.
    pub metrics: Vec<RunningStats>,
}

impl ExperimentCell {
    fn first(
        scenario_index: usize,
        scenario: &str,
        policy: PolicyKind,
        replicate: &[f64; METRIC_NAMES.len()],
    ) -> Self {
        let mut cell = ExperimentCell {
            scenario_index,
            scenario: scenario.to_string(),
            policy,
            metrics: vec![RunningStats::new(); METRIC_NAMES.len()],
        };
        cell.absorb(replicate);
        cell
    }

    /// Fold one replicate's metric vector into the accumulators.  Non-finite
    /// values (a ratio whose denominator was zero in that replicate) are
    /// skipped: Welford's recurrence has no recovery from a NaN push, and an
    /// undefined replicate should lower the metric's replicate count rather
    /// than erase the whole cell.
    fn absorb(&mut self, replicate: &[f64; METRIC_NAMES.len()]) {
        for (stats, &value) in self.metrics.iter_mut().zip(replicate) {
            if value.is_finite() {
                stats.push(value);
            }
        }
    }

    /// The accumulator for a named metric.
    pub fn metric(&self, name: &str) -> Option<&RunningStats> {
        METRIC_NAMES
            .iter()
            .position(|&m| m == name)
            .map(|i| &self.metrics[i])
    }
}

/// Everything an experiment grid run produces.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// The seed replicates every cell was run with.
    pub seeds: Vec<u64>,
    /// Number of simulations executed.
    pub job_count: usize,
    /// One aggregated cell per (scenario, policy) pair, in enumeration order.
    pub cells: Vec<ExperimentCell>,
}

impl ExperimentReport {
    /// The cell for a given scenario label and policy.
    pub fn cell(&self, scenario: &str, policy: PolicyKind) -> Option<&ExperimentCell> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.policy == policy)
    }

    /// Serialize the full replicated grid — mean, 95 % CI half-width, min,
    /// max and replicate count per metric — as a JSON value.
    pub fn to_json(&self) -> Value {
        let cells: Vec<Value> = self
            .cells
            .iter()
            .map(|cell| {
                let metrics: Vec<Value> = METRIC_NAMES
                    .iter()
                    .zip(&cell.metrics)
                    .map(|(name, s)| {
                        json!({
                            "name": name,
                            "mean": s.mean(),
                            "ci95_half_width": s.ci95_half_width(),
                            "min": s.min(),
                            "max": s.max(),
                            "replicates": s.count(),
                        })
                    })
                    .collect();
                json!({
                    "scenario": cell.scenario,
                    "policy": format!("{:?}", cell.policy),
                    "metrics": metrics,
                })
            })
            .collect();
        json!({
            "seeds": self.seeds,
            "job_count": self.job_count,
            "cells": cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Topology;
    use caem_simcore::time::Duration;

    fn tiny_spec(replicates: usize) -> ExperimentSpec {
        let base = ScenarioConfig::small(PolicyKind::PureLeach, 8.0, 0)
            .with_duration(Duration::from_secs(10));
        ExperimentSpec::paper_policies(
            vec![
                ScenarioSpec::new("uniform", base.clone()),
                ScenarioSpec::new(
                    "corridor",
                    base.clone().with_topology(Topology::Corridor {
                        width_fraction: 0.3,
                    }),
                ),
                ScenarioSpec::new(
                    "hotspots",
                    base.with_topology(Topology::GaussianClusters {
                        clusters: 3,
                        sigma_m: 10.0,
                    }),
                ),
            ],
            1_000,
            replicates,
        )
    }

    #[test]
    fn enumeration_covers_every_combination_exactly_once() {
        let spec = tiny_spec(5);
        let jobs = spec.enumerate_jobs();
        assert_eq!(jobs.len(), spec.job_count());
        assert_eq!(jobs.len(), 3 * 3 * 5);
        let mut triples: Vec<(usize, PolicyKind, u64)> = jobs
            .iter()
            .map(|j| (j.scenario, j.policy, j.seed))
            .collect();
        let before = triples.len();
        triples.sort_by_key(|&(s, p, seed)| (s, p as usize, seed));
        triples.dedup();
        assert_eq!(triples.len(), before, "duplicate (scenario, policy, seed)");
        // Jobs carry their coordinates into the resolved config.
        for j in &jobs {
            assert_eq!(j.config.policy, j.policy);
            assert_eq!(j.config.seed, j.seed);
        }
    }

    #[test]
    fn non_finite_replicates_do_not_poison_a_cell() {
        let mut cell = ExperimentCell::first(
            0,
            "starved",
            PolicyKind::PureLeach,
            &[1.0; METRIC_NAMES.len()],
        );
        let mut bad = [2.0; METRIC_NAMES.len()];
        bad[3] = f64::NAN; // mj_per_delivered_packet with zero deliveries
        cell.absorb(&bad);
        assert_eq!(cell.metrics[0].count(), 2);
        // The NaN was skipped: the metric keeps its finite replicate...
        assert_eq!(cell.metrics[3].count(), 1);
        assert_eq!(cell.metrics[3].mean(), 1.0);
        // ...instead of collapsing the whole accumulator to NaN.
        assert!(cell.metrics[3].ci95_half_width().is_finite());
    }

    #[test]
    fn grid_runs_and_aggregates_replicates() {
        let spec = tiny_spec(3);
        let report = spec.run();
        assert_eq!(report.job_count, 27);
        assert_eq!(report.cells.len(), 9);
        for cell in &report.cells {
            let delivery = cell.metric("delivery_rate").unwrap();
            assert_eq!(delivery.count(), 3);
            assert!(delivery.mean() > 0.0 && delivery.mean() <= 1.0);
        }
        let json = report.to_json();
        assert_eq!(json.get("job_count").and_then(|v| v.as_u64()), Some(27));
    }
}
