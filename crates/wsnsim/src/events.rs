//! The typed events driving the network simulation.

use caem_simcore::event::Event;

/// One event in the network simulation.
///
/// Node references are compact `u32` indices (no simulated network
/// approaches 4 billion nodes), which keeps the enum at 8 bytes and one
/// pending-event entry at 24 — a third less data moved per heap sift than
/// with `usize` payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkEvent {
    /// A LEACH round boundary: elect heads, re-form clusters.
    RoundStart,
    /// A sensor generates a packet.
    PacketArrival {
        /// Generating node index.
        node: u32,
    },
    /// A monitoring sensor samples the tone channel.
    SenseChannel {
        /// Sensing node index.
        node: u32,
    },
    /// A sensor's MAC backoff timer expired.
    BackoffExpired {
        /// Node whose backoff expired.
        node: u32,
    },
    /// A data burst finished (delivery or collision cleanup happens here).
    TransmissionComplete {
        /// Node whose burst ended.
        node: u32,
    },
    /// A node fails for a non-energy reason (churn injection): it drops out
    /// of the network exactly as if its battery had died.
    NodeFailure {
        /// Failing node index.
        node: u32,
    },
    /// Periodic network-wide energy snapshot (Fig. 8 sampling).
    EnergySnapshot,
    /// Periodic queue-length snapshot (Fig. 12 sampling).
    FairnessSnapshot,
}

impl Event for NetworkEvent {}

#[cfg(test)]
mod tests {
    use super::*;
    use caem_simcore::event::EventQueue;
    use caem_simcore::time::SimTime;

    #[test]
    fn events_carry_their_indices() {
        let e = NetworkEvent::PacketArrival { node: 7 };
        match e {
            NetworkEvent::PacketArrival { node } => assert_eq!(node, 7),
            _ => unreachable!(),
        }
    }

    #[test]
    fn events_queue_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(20), NetworkEvent::RoundStart);
        q.push(
            SimTime::from_millis(10),
            NetworkEvent::SenseChannel { node: 3 },
        );
        assert_eq!(
            q.pop().unwrap().event,
            NetworkEvent::SenseChannel { node: 3 }
        );
        assert_eq!(q.pop().unwrap().event, NetworkEvent::RoundStart);
    }
}
