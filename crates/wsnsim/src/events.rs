//! The typed events driving the network simulation.

use caem_simcore::event::Event;

/// One event in the network simulation.
///
/// Node references are compact `u32` indices (no simulated network
/// approaches 4 billion nodes), which keeps the enum at 8 bytes and one
/// pending-event entry at 24 — a third less data moved per heap sift than
/// with `usize` payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkEvent {
    /// A LEACH round boundary: elect heads, re-form clusters.
    RoundStart,
    /// A sensor generates a packet.
    PacketArrival {
        /// Generating node index.
        node: u32,
    },
    /// A monitoring sensor samples the tone channel.
    SenseChannel {
        /// Sensing node index.
        node: u32,
    },
    /// A sensor's MAC backoff timer expired.
    BackoffExpired {
        /// Node whose backoff expired.
        node: u32,
    },
    /// A data burst finished (delivery or collision cleanup happens here).
    TransmissionComplete {
        /// Node whose burst ended.
        node: u32,
    },
    /// A node fails for a non-energy reason (churn injection): it drops out
    /// of the network exactly as if its battery had died.
    NodeFailure {
        /// Failing node index.
        node: u32,
    },
    /// Periodic network-wide energy snapshot (Fig. 8 sampling).
    EnergySnapshot,
    /// Periodic queue-length snapshot (Fig. 12 sampling).
    FairnessSnapshot,
}

impl Event for NetworkEvent {}

/// The payload-free discriminant of a [`NetworkEvent`].
///
/// The batched event loop partitions each same-instant batch into runs of
/// consecutive equal kinds and dispatches one run at a time, so the handler
/// branch is perfectly predicted inside a run while the FIFO delivery order
/// (and therefore every RNG draw sequence) stays untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Round boundary.
    RoundStart,
    /// Packet generation.
    PacketArrival,
    /// Tone-channel observation.
    SenseChannel,
    /// Backoff expiry.
    BackoffExpired,
    /// Burst completion.
    TransmissionComplete,
    /// Churn failure.
    NodeFailure,
    /// Energy sampling.
    EnergySnapshot,
    /// Queue-length sampling.
    FairnessSnapshot,
}

impl NetworkEvent {
    /// This event's [`EventKind`] discriminant.
    #[inline]
    pub fn kind(&self) -> EventKind {
        match self {
            NetworkEvent::RoundStart => EventKind::RoundStart,
            NetworkEvent::PacketArrival { .. } => EventKind::PacketArrival,
            NetworkEvent::SenseChannel { .. } => EventKind::SenseChannel,
            NetworkEvent::BackoffExpired { .. } => EventKind::BackoffExpired,
            NetworkEvent::TransmissionComplete { .. } => EventKind::TransmissionComplete,
            NetworkEvent::NodeFailure { .. } => EventKind::NodeFailure,
            NetworkEvent::EnergySnapshot => EventKind::EnergySnapshot,
            NetworkEvent::FairnessSnapshot => EventKind::FairnessSnapshot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caem_simcore::event::EventQueue;
    use caem_simcore::time::SimTime;

    #[test]
    fn events_carry_their_indices() {
        let e = NetworkEvent::PacketArrival { node: 7 };
        match e {
            NetworkEvent::PacketArrival { node } => assert_eq!(node, 7),
            _ => unreachable!(),
        }
    }

    #[test]
    fn every_event_maps_to_its_kind() {
        let pairs = [
            (NetworkEvent::RoundStart, EventKind::RoundStart),
            (
                NetworkEvent::PacketArrival { node: 1 },
                EventKind::PacketArrival,
            ),
            (
                NetworkEvent::SenseChannel { node: 1 },
                EventKind::SenseChannel,
            ),
            (
                NetworkEvent::BackoffExpired { node: 1 },
                EventKind::BackoffExpired,
            ),
            (
                NetworkEvent::TransmissionComplete { node: 1 },
                EventKind::TransmissionComplete,
            ),
            (
                NetworkEvent::NodeFailure { node: 1 },
                EventKind::NodeFailure,
            ),
            (NetworkEvent::EnergySnapshot, EventKind::EnergySnapshot),
            (NetworkEvent::FairnessSnapshot, EventKind::FairnessSnapshot),
        ];
        for (event, kind) in pairs {
            assert_eq!(event.kind(), kind);
        }
        // Kinds ignore the payload: same-kind events with different nodes
        // land in the same dispatch run.
        assert_eq!(
            NetworkEvent::PacketArrival { node: 1 }.kind(),
            NetworkEvent::PacketArrival { node: 2 }.kind()
        );
    }

    #[test]
    fn events_queue_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(20), NetworkEvent::RoundStart);
        q.push(
            SimTime::from_millis(10),
            NetworkEvent::SenseChannel { node: 3 },
        );
        assert_eq!(
            q.pop().unwrap().event,
            NetworkEvent::SenseChannel { node: 3 }
        );
        assert_eq!(q.pop().unwrap().event, NetworkEvent::RoundStart);
    }
}
