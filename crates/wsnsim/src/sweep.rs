//! Protocol comparisons and traffic-load sweeps — the machinery behind the
//! figure binaries.
//!
//! Independent simulations (different protocols, loads, seeds) are
//! embarrassingly parallel.  Both entry points enumerate their full
//! (load × policy) grid into one flat work list and run it through the
//! experiment engine's single parallel layer
//! ([`crate::experiment::run_configs`]); the earlier implementation nested a
//! per-load `par_iter` around a per-policy `par_iter`, which oversubscribed
//! the machine by loads × cores.

use caem::policy::PolicyKind;

use crate::config::ScenarioConfig;
use crate::experiment::{run_configs, ExperimentSpec, ScenarioSpec};
use crate::result::SimulationResult;

/// The three protocol variants the paper compares, in its plotting order.
pub const PAPER_POLICIES: [PolicyKind; 3] = [
    PolicyKind::PureLeach,
    PolicyKind::Scheme1Adaptive,
    PolicyKind::Scheme2Fixed,
];

/// Results of running every protocol on the same scenario (common random
/// numbers: the channel/traffic realisations share the seed).
pub struct PolicyComparison {
    /// One result per entry of [`PAPER_POLICIES`], same order.
    pub results: Vec<SimulationResult>,
}

impl PolicyComparison {
    /// The result for a given protocol.
    pub fn get(&self, policy: PolicyKind) -> &SimulationResult {
        self.results
            .iter()
            .find(|r| r.policy == policy)
            .expect("all paper policies are simulated")
    }
}

/// Run all three protocols on the scenario produced by `make_config`.
///
/// `make_config` receives the policy so callers can tweak per-policy details
/// while keeping the seed (and hence the channel realisation) shared.
pub fn compare_policies<F>(make_config: F) -> PolicyComparison
where
    F: Fn(PolicyKind) -> ScenarioConfig + Sync,
{
    let configs: Vec<ScenarioConfig> = PAPER_POLICIES
        .iter()
        .map(|&policy| make_config(policy))
        .collect();
    PolicyComparison {
        results: run_configs(&configs),
    }
}

/// One point of a traffic-load sweep.
pub struct LoadSweepPoint {
    /// Per-node traffic load in packets/second.
    pub load_pps: f64,
    /// Results for every protocol at this load.
    pub comparison: PolicyComparison,
}

/// Sweep the per-node traffic load (the x axis of Figs. 10–12), running every
/// protocol at every load.
pub fn load_sweep<F>(loads_pps: &[f64], make_config: F) -> Vec<LoadSweepPoint>
where
    F: Fn(PolicyKind, f64) -> ScenarioConfig + Sync,
{
    // Flatten the whole (load × policy) grid before fanning anything out:
    // one work list, one parallel layer, no nesting.
    let make_config = &make_config;
    let configs: Vec<ScenarioConfig> = loads_pps
        .iter()
        .flat_map(|&load| {
            PAPER_POLICIES
                .iter()
                .map(move |&policy| make_config(policy, load))
        })
        .collect();
    let mut results = run_configs(&configs).into_iter();
    loads_pps
        .iter()
        .map(|&load| LoadSweepPoint {
            load_pps: load,
            comparison: PolicyComparison {
                results: results.by_ref().take(PAPER_POLICIES.len()).collect(),
            },
        })
        .collect()
}

/// Express a traffic-load sweep as a replicated [`ExperimentSpec`] — one
/// labelled scenario per load (`load_<x>pps`), the paper's three protocols
/// and `replicates` consecutive seeds from `base_seed`.
///
/// This is the bridge from the figure-style sweeps to the persistence
/// layer: a spec-shaped sweep can run resumably through
/// [`ExperimentSpec::run_with_store`], re-aggregate offline from its JSONL
/// store, and tighten itself with
/// [`ExperimentSpec::run_sequential`] — none of which the plain
/// single-seed [`load_sweep`] can do.
pub fn load_sweep_spec<F>(
    loads_pps: &[f64],
    base_seed: u64,
    replicates: usize,
    make_base: F,
) -> ExperimentSpec
where
    F: Fn(f64) -> ScenarioConfig,
{
    let scenarios = loads_pps
        .iter()
        .map(|&load| ScenarioSpec::new(format!("load_{load}pps"), make_base(load)))
        .collect();
    ExperimentSpec::paper_policies(scenarios, base_seed, replicates)
}

/// Run a traffic-load sweep **distributed** across worker processes (or
/// threads): the [`load_sweep_spec`] grid executed through
/// [`ExperimentSpec::run_distributed`], so the figure sweeps scale across a
/// process tree with the same bit-identical report a single process
/// produces.
pub fn load_sweep_distributed<F, S>(
    loads_pps: &[f64],
    base_seed: u64,
    replicates: usize,
    make_base: F,
    dir: &std::path::Path,
    opts: &crate::distrib::DistribOptions,
    spawner: &S,
) -> Result<crate::experiment::ExperimentReport, crate::distrib::DistribError>
where
    F: Fn(f64) -> ScenarioConfig,
    S: crate::distrib::WorkerSpawner,
{
    load_sweep_spec(loads_pps, base_seed, replicates, make_base).run_distributed(dir, opts, spawner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caem_simcore::time::Duration;

    #[test]
    fn comparison_covers_all_policies() {
        let cmp = compare_policies(|policy| {
            ScenarioConfig::small(policy, 5.0, 42).with_duration(Duration::from_secs(20))
        });
        assert_eq!(cmp.results.len(), 3);
        for &p in &PAPER_POLICIES {
            assert_eq!(cmp.get(p).policy, p);
        }
        // Shared seed ⇒ identical offered load across protocols.
        let gen: Vec<u64> = cmp.results.iter().map(|r| r.perf.generated()).collect();
        assert!(gen.iter().all(|&g| g > 0));
    }

    #[test]
    fn load_sweep_produces_one_point_per_load() {
        let points = load_sweep(&[5.0, 10.0], |policy, load| {
            ScenarioConfig::small(policy, load, 7).with_duration(Duration::from_secs(15))
        });
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].load_pps, 5.0);
        assert_eq!(points[1].load_pps, 10.0);
        // Higher load generates more packets for every protocol.
        for &p in &PAPER_POLICIES {
            assert!(
                points[1].comparison.get(p).perf.generated()
                    > points[0].comparison.get(p).perf.generated()
            );
        }
    }

    #[test]
    fn load_sweep_spec_mirrors_the_sweep_axes() {
        let spec = load_sweep_spec(&[5.0, 10.0, 15.0], 31, 4, |load| {
            ScenarioConfig::small(PolicyKind::PureLeach, load, 31)
                .with_duration(Duration::from_secs(10))
        });
        assert_eq!(spec.scenarios.len(), 3);
        assert_eq!(spec.scenarios[0].label, "load_5pps");
        assert_eq!(spec.scenarios[2].label, "load_15pps");
        assert_eq!(spec.policies.to_vec(), PAPER_POLICIES.to_vec());
        assert_eq!(spec.seeds, vec![31, 32, 33, 34]);
        assert_eq!(spec.job_count(), 3 * 3 * 4);
        // The per-load traffic rate landed in the scenario templates.
        assert_eq!(spec.scenarios[1].base.traffic.mean_rate_pps(), 10.0);
    }
}
