//! Protocol comparisons and traffic-load sweeps — the machinery behind the
//! figure binaries.
//!
//! Independent simulations (different protocols, loads, seeds) are
//! embarrassingly parallel; [`load_sweep`] and [`compare_policies`] fan them
//! out across a rayon thread pool.

use caem::policy::PolicyKind;
use rayon::prelude::*;

use crate::config::ScenarioConfig;
use crate::result::SimulationResult;
use crate::runner::SimulationRun;

/// The three protocol variants the paper compares, in its plotting order.
pub const PAPER_POLICIES: [PolicyKind; 3] = [
    PolicyKind::PureLeach,
    PolicyKind::Scheme1Adaptive,
    PolicyKind::Scheme2Fixed,
];

/// Results of running every protocol on the same scenario (common random
/// numbers: the channel/traffic realisations share the seed).
pub struct PolicyComparison {
    /// One result per entry of [`PAPER_POLICIES`], same order.
    pub results: Vec<SimulationResult>,
}

impl PolicyComparison {
    /// The result for a given protocol.
    pub fn get(&self, policy: PolicyKind) -> &SimulationResult {
        self.results
            .iter()
            .find(|r| r.policy == policy)
            .expect("all paper policies are simulated")
    }
}

/// Run all three protocols on the scenario produced by `make_config`.
///
/// `make_config` receives the policy so callers can tweak per-policy details
/// while keeping the seed (and hence the channel realisation) shared.
pub fn compare_policies<F>(make_config: F) -> PolicyComparison
where
    F: Fn(PolicyKind) -> ScenarioConfig + Sync,
{
    let results: Vec<SimulationResult> = PAPER_POLICIES
        .par_iter()
        .map(|&policy| SimulationRun::new(make_config(policy)).run())
        .collect();
    PolicyComparison { results }
}

/// One point of a traffic-load sweep.
pub struct LoadSweepPoint {
    /// Per-node traffic load in packets/second.
    pub load_pps: f64,
    /// Results for every protocol at this load.
    pub comparison: PolicyComparison,
}

/// Sweep the per-node traffic load (the x axis of Figs. 10–12), running every
/// protocol at every load.
pub fn load_sweep<F>(loads_pps: &[f64], make_config: F) -> Vec<LoadSweepPoint>
where
    F: Fn(PolicyKind, f64) -> ScenarioConfig + Sync,
{
    loads_pps
        .par_iter()
        .map(|&load| LoadSweepPoint {
            load_pps: load,
            comparison: compare_policies(|policy| make_config(policy, load)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use caem_simcore::time::Duration;

    #[test]
    fn comparison_covers_all_policies() {
        let cmp = compare_policies(|policy| {
            ScenarioConfig::small(policy, 5.0, 42).with_duration(Duration::from_secs(20))
        });
        assert_eq!(cmp.results.len(), 3);
        for &p in &PAPER_POLICIES {
            assert_eq!(cmp.get(p).policy, p);
        }
        // Shared seed ⇒ identical offered load across protocols.
        let gen: Vec<u64> = cmp.results.iter().map(|r| r.perf.generated()).collect();
        assert!(gen.iter().all(|&g| g > 0));
    }

    #[test]
    fn load_sweep_produces_one_point_per_load() {
        let points = load_sweep(&[5.0, 10.0], |policy, load| {
            ScenarioConfig::small(policy, load, 7).with_duration(Duration::from_secs(15))
        });
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].load_pps, 5.0);
        assert_eq!(points[1].load_pps, 10.0);
        // Higher load generates more packets for every protocol.
        for &p in &PAPER_POLICIES {
            assert!(
                points[1].comparison.get(p).perf.generated()
                    > points[0].comparison.get(p).perf.generated()
            );
        }
    }
}
