//! The distributed experiment runner: one grid, many worker **processes**,
//! the filesystem as the coordination bus.
//!
//! The experiment engine's flat job list is the natural unit of
//! distribution, and the persistence layer already makes every completed job
//! a durable, deduplicatable JSONL record.  This module adds the missing
//! execution layer on top of both:
//!
//! 1. A **coordinator** ([`ExperimentSpec::run_distributed`]) writes the
//!    fully resolved job list to a [`GridManifest`] on disk, partitioned
//!    round-robin into `shard_count` claimable shards, then spawns `N`
//!    workers (separate processes via [`ProcessSpawner`], or in-process
//!    threads via [`ThreadSpawner`] for tests and examples).
//! 2. Each **worker** ([`run_worker`]) repeatedly claims a shard through a
//!    lock-file lease (`create_new` is the atomic claim; a lease whose owner
//!    process is dead or whose file has outlived its TTL is **stolen** by
//!    rewrite-and-rename), runs the shard's jobs through one rayon fan-out,
//!    and streams every completed [`JobRecord`] to its own per-worker JSONL
//!    store using the torn-line-safe append path.  Idle workers steal
//!    unclaimed or expired shards, so a killed worker only delays its
//!    shards, never loses them.
//! 3. The coordinator joins the workers, finishes any leftover shards
//!    inline, and **merges** all worker stores through the single canonical
//!    [`ExperimentReport::from_records`] path.  Because records are
//!    deterministic in (scenario, policy, seed) and duplicates dedupe
//!    last-wins over byte-identical payloads, a 1-worker run, an N-worker
//!    run, a run with mid-flight worker kills and a killed-and-restarted
//!    coordinator all produce **bit-identical** reports.
//!
//! Thread discipline: the coordinator exports
//! `RAYON_TOTAL_THREADS = process_thread_cap() / workers` to every spawned
//! worker process ([`rayon::split_thread_budget`]), so the whole process
//! tree stays within the budget one process would use — the PR 2
//! no-oversubscription guarantee, extended across `fork`/`exec`.
//!
//! No network is involved: shard claims, leases, records and the manifest
//! are all plain files, so "several machines" is just "several processes"
//! plus a shared filesystem.
//!
//! **Failure model.**  All lease and manifest IO routes through the
//! [`crate::faults`] seam: transient failures retry with bounded backoff,
//! manifests and done markers are fsynced before their rename, lease
//! staleness combines a TTL heartbeat with a pid + process-start-time owner
//! identity (safe under pid reuse; TTL-only where `/proc` is absent), and a
//! job that keeps panicking or blowing its wall-clock budget is quarantined
//! as a [`JobFailure`] instead of wedging its shard.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration as StdDuration;

use caem::policy::PolicyKind;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::config::ScenarioConfig;
use crate::experiment::{
    worst_ci_half_width, ExperimentJob, ExperimentReport, ExperimentSpec, SequentialOutcome,
    SequentialRound, SequentialStopping,
};
use crate::faults::{self, retry_transient, RetryPolicy, RunEvent};
use crate::persist::{
    config_hash, fnv1a64, ExperimentStore, JobFailure, JobKey, JobRecord, StoreError, StoreOptions,
};
use crate::runner::SimulationRun;

/// Manifest format version (bumped on incompatible layout changes).
pub const MANIFEST_VERSION: u64 = 1;

/// File name of the grid manifest inside a shard directory.
pub const MANIFEST_FILE: &str = "grid.json";

/// Default shard-lease TTL before an unrefreshed claim may be stolen.
/// Overridable per run through the spec's `distrib` block and the
/// `--lease-ttl` flag.
pub const DEFAULT_LEASE_TTL: StdDuration = StdDuration::from_secs(60);

/// Default heartbeat interval of socket-transport workers.  The file-based
/// protocol heartbeats implicitly — every completed job bumps the lease
/// mtime — so only the service transport consults this directly.
pub const DEFAULT_HEARTBEAT: StdDuration = StdDuration::from_secs(5);

/// Errors raised by the distributed runner.
#[derive(Debug)]
pub enum DistribError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A worker store failed to open, load or append.
    Store(StoreError),
    /// A malformed manifest, lease or layout.
    Format(String),
    /// The shard directory belongs to a different grid than the spec
    /// describes (its manifest hash does not match).
    ManifestMismatch {
        /// Hash of the grid the caller's spec enumerates to.
        expected: u64,
        /// Hash recorded in the on-disk manifest.
        found: u64,
    },
    /// All shards report done but merged records do not cover the grid.
    Incomplete {
        /// Number of jobs with no valid record.
        missing: usize,
    },
}

impl std::fmt::Display for DistribError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistribError::Io(e) => write!(f, "distributed runner I/O error: {e}"),
            DistribError::Store(e) => write!(f, "distributed runner store error: {e}"),
            DistribError::Format(m) => write!(f, "distributed runner format error: {m}"),
            DistribError::ManifestMismatch { expected, found } => write!(
                f,
                "shard directory holds a different grid (manifest hash {found:#x}, spec enumerates to {expected:#x}); \
                 point --distrib-dir at a fresh directory or drop --resume to start over"
            ),
            DistribError::Incomplete { missing } => write!(
                f,
                "all shards are marked done but {missing} jobs have no valid record"
            ),
        }
    }
}

impl std::error::Error for DistribError {}

impl From<std::io::Error> for DistribError {
    fn from(e: std::io::Error) -> Self {
        DistribError::Io(e)
    }
}

impl From<StoreError> for DistribError {
    fn from(e: StoreError) -> Self {
        DistribError::Store(e)
    }
}

/// The on-disk layout of one distributed grid:
///
/// ```text
/// <root>/
///   grid.json                  # the GridManifest (written atomically)
///   shards/shard_0007.lease    # claim lock: JSON ShardLease, mtime = heartbeat
///   shards/shard_0007.done     # completion marker (written atomically)
///   workers/worker_000.jsonl   # per-worker ExperimentStore (JSONL records)
/// ```
#[derive(Debug, Clone)]
pub struct ShardLayout {
    root: PathBuf,
}

impl ShardLayout {
    /// Describe (without creating) the layout rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ShardLayout { root: root.into() }
    }

    /// The layout's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the grid manifest.
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join(MANIFEST_FILE)
    }

    /// Directory holding shard leases and done markers.
    pub fn shards_dir(&self) -> PathBuf {
        self.root.join("shards")
    }

    /// Directory holding the per-worker JSONL stores.
    pub fn workers_dir(&self) -> PathBuf {
        self.root.join("workers")
    }

    /// Lease (claim lock) path of one shard.
    pub fn lease_path(&self, shard: usize) -> PathBuf {
        self.shards_dir().join(format!("shard_{shard:04}.lease"))
    }

    /// Completion-marker path of one shard.
    pub fn done_path(&self, shard: usize) -> PathBuf {
        self.shards_dir().join(format!("shard_{shard:04}.done"))
    }

    /// The JSONL store path of a named worker.
    pub fn worker_store_path(&self, worker: &str) -> PathBuf {
        self.workers_dir().join(format!("worker_{worker}.jsonl"))
    }

    /// Create the shard and worker directories (and the root).
    pub fn create_dirs(&self) -> Result<(), DistribError> {
        fs::create_dir_all(self.shards_dir())?;
        fs::create_dir_all(self.workers_dir())?;
        Ok(())
    }

    /// How many of the first `shard_count` shards carry a done marker.
    pub fn done_count(&self, shard_count: usize) -> usize {
        (0..shard_count)
            .filter(|&s| self.done_path(s).exists())
            .count()
    }

    /// True when every shard carries a done marker.
    pub fn all_done(&self, shard_count: usize) -> bool {
        self.done_count(shard_count) == shard_count
    }

    /// Discover every per-worker store in the layout, sorted by file name
    /// (the merge result does not depend on this order; sorting just keeps
    /// log output stable).
    pub fn discover_worker_stores(&self) -> Result<Vec<PathBuf>, DistribError> {
        let mut stores = Vec::new();
        for entry in fs::read_dir(self.workers_dir())? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "jsonl") {
                stores.push(path);
            }
        }
        stores.sort();
        Ok(stores)
    }
}

/// One fully resolved job as persisted in the grid manifest: the
/// deterministic coordinates plus the exact [`ScenarioConfig`] to run, so a
/// worker process needs nothing but the manifest to do its share.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ManifestJob {
    /// Index of the scenario in the grid's scenario list.
    pub scenario_index: usize,
    /// The scenario's label.
    pub scenario: String,
    /// Index of the policy in the grid's policy list.
    pub policy_index: usize,
    /// The protocol variant to run.
    pub policy: PolicyKind,
    /// Master seed of the replicate.
    pub seed: u64,
    /// [`config_hash`] of `config` — the validity criterion merged records
    /// are checked against.
    pub config_hash: u64,
    /// The fully resolved configuration.
    pub config: ScenarioConfig,
}

impl ManifestJob {
    /// The job's deterministic coordinates.
    pub fn key(&self) -> JobKey {
        (self.scenario_index, self.policy_index, self.seed)
    }

    /// Simulate the job and encode the result as its [`JobRecord`] — the
    /// exact record a single-process [`ExperimentSpec::run`] would produce.
    pub fn run(&self) -> JobRecord {
        let job = ExperimentJob {
            scenario: self.scenario_index,
            policy: self.policy,
            seed: self.seed,
            config: self.config.clone(),
        };
        let result = SimulationRun::new(job.config.clone()).run();
        JobRecord::from_result(&self.scenario, self.policy_index, &job, &result)
    }
}

/// The persisted description of one distributed grid: every job fully
/// resolved, plus the shard partition.  Shard `s` owns the jobs whose
/// enumeration index `j` satisfies `j % shard_count == s` (round-robin, so
/// every shard sees the same scenario mix and shard runtimes stay even).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridManifest {
    caem_distrib_manifest: u64,
    /// FNV-1a hash of the serialized job list — the grid identity compared
    /// when a coordinator resumes a directory.  Deliberately independent of
    /// the shard partition, so a grid started with `--workers 3` can be
    /// resumed with any worker count (the on-disk partition is kept).
    pub grid_hash: u64,
    /// Number of claimable shards the job list is partitioned into.
    pub shard_count: usize,
    /// The seed replicates of the grid (in spec order).
    pub seeds: Vec<u64>,
    /// Every job of the grid, in canonical enumeration order.
    pub jobs: Vec<ManifestJob>,
}

impl GridManifest {
    /// Build the manifest a spec enumerates to, partitioned into
    /// `shard_count` shards.
    ///
    /// Jobs, config hashes and the grid identity are all derived from the
    /// **canonical resolved spec** — the same fully resolved
    /// [`ScenarioConfig`]s `--print-spec` dumps and the persistence layer
    /// hashes — so a grid defined by a committed spec file and the
    /// identical code-built grid produce interchangeable manifests.
    pub fn from_spec(spec: &ExperimentSpec, shard_count: usize) -> Self {
        assert!(shard_count >= 1, "need at least one shard");
        let jobs: Vec<ManifestJob> = spec
            .enumerate_jobs()
            .into_iter()
            .map(|job| {
                let policy_index = spec
                    .policies
                    .iter()
                    .position(|&p| p == job.policy)
                    .expect("enumerated jobs carry spec policies");
                ManifestJob {
                    scenario_index: job.scenario,
                    scenario: spec.scenarios[job.scenario].label.clone(),
                    policy_index,
                    policy: job.policy,
                    seed: job.seed,
                    config_hash: config_hash(&job.config),
                    config: job.config,
                }
            })
            .collect();
        let grid_hash = Self::hash_identity(&jobs);
        GridManifest {
            caem_distrib_manifest: MANIFEST_VERSION,
            grid_hash,
            shard_count,
            seeds: spec.seeds.clone(),
            jobs,
        }
    }

    fn hash_identity(jobs: &[ManifestJob]) -> u64 {
        let text = serde_json::to_string(&jobs.to_vec()).expect("manifest jobs always serialize");
        fnv1a64(text.as_bytes())
    }

    /// The jobs belonging to one shard.
    pub fn shard_jobs(&self, shard: usize) -> Vec<&ManifestJob> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(j, _)| j % self.shard_count == shard)
            .map(|(_, job)| job)
            .collect()
    }

    /// Write the manifest atomically (fsync, then temp file + rename) so a
    /// crashed coordinator — or a crashed **machine** — can never leave a
    /// torn or half-persisted manifest for workers to misread.
    pub fn write(&self, layout: &ShardLayout) -> Result<(), DistribError> {
        let text = serde_json::to_string(self)
            .map_err(|e| DistribError::Format(format!("manifest serialization failed: {e}")))?;
        write_atomic(&layout.manifest_path(), text.as_bytes(), true)?;
        Ok(())
    }

    /// Load the manifest of a shard directory.
    pub fn load(layout: &ShardLayout) -> Result<Self, DistribError> {
        let path = layout.manifest_path();
        let text = fs::read_to_string(&path)?;
        let manifest: GridManifest = serde_json::from_str(&text)
            .map_err(|e| DistribError::Format(format!("bad manifest {}: {e}", path.display())))?;
        if manifest.caem_distrib_manifest != MANIFEST_VERSION {
            return Err(DistribError::Format(format!(
                "manifest version {} (this build reads version {MANIFEST_VERSION})",
                manifest.caem_distrib_manifest
            )));
        }
        if manifest.shard_count == 0 || manifest.jobs.is_empty() {
            return Err(DistribError::Format(
                "manifest describes an empty grid".into(),
            ));
        }
        Ok(manifest)
    }

    /// Reconstruct the canonical resolved spec this manifest was derived
    /// from — what a worker on another machine can dump to verify the grid
    /// definition it received matches the coordinator's `--print-spec`.
    pub fn resolved_spec(&self) -> crate::spec::ResolvedSpec {
        let mut scenarios: Vec<(String, u64, ScenarioConfig)> = Vec::new();
        let mut policies = Vec::new();
        for job in &self.jobs {
            if !scenarios.iter().any(|(label, _, _)| *label == job.scenario) {
                scenarios.push((job.scenario.clone(), job.config_hash, job.config.clone()));
            }
            if !policies.contains(&job.policy) {
                policies.push(job.policy);
            }
        }
        crate::spec::ResolvedSpec {
            scenarios,
            policies,
            seeds: self.seeds.clone(),
        }
    }

    /// Validity lookup for merged records: job key → (config hash, label).
    fn record_filter(&self) -> HashMap<JobKey, (u64, &str)> {
        self.jobs
            .iter()
            .map(|j| (j.key(), (j.config_hash, j.scenario.as_str())))
            .collect()
    }
}

/// The content of a shard lease: who claimed it.  The lease file's mtime is
/// the claim heartbeat — refreshed whenever the owner makes progress — and
/// the pid + process-start-time pair identifies the owner **process**, not
/// merely its pid number: a recycled pid gets a fresh kernel start time, so
/// a dead owner can never masquerade as alive behind a reused pid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardLease {
    /// Human-readable owner label (e.g. `worker_002` or `coordinator`).
    pub worker: String,
    /// Process id of the owner.
    pub pid: u32,
    /// The owner's kernel start time (clock ticks since boot, field 22 of
    /// `/proc/<pid>/stat`) — the pid-reuse discriminator.  `None` where
    /// `/proc` is unavailable; staleness then falls back to the TTL alone.
    pub pid_start: Option<u64>,
}

impl ShardLease {
    /// A lease naming this process as the owner, with its start-time
    /// identity captured (where `/proc` allows).
    pub fn current(worker: impl Into<String>) -> Self {
        let pid = std::process::id();
        ShardLease {
            worker: worker.into(),
            pid,
            pid_start: process_start_ticks(pid),
        }
    }
}

/// The kernel start time of `pid` in clock ticks since boot — field 22 of
/// `/proc/<pid>/stat`, parsed after the last `)` because the comm field may
/// itself contain spaces or parentheses.  `None` when the process does not
/// exist or `/proc` is unavailable (non-Linux).
fn process_start_ticks(pid: u32) -> Option<u64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let stat = fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    let after_comm = stat.rsplit_once(')')?.1;
    // After the comm field, the next token is field 3 (state); starttime is
    // field 22, i.e. the 19th post-comm token.
    after_comm
        .split_whitespace()
        .nth(19)
        .and_then(|t| t.parse().ok())
}

/// Atomically replace `path` with `bytes` through the lease-IO seam, with
/// transient-failure retry.  `durable` fsyncs before the rename (manifests
/// and done markers — files whose loss would orphan completed work);
/// heartbeat refreshes skip the fsync, since a lost beat only risks
/// duplicated work.
fn write_atomic(path: &Path, bytes: &[u8], durable: bool) -> Result<(), DistribError> {
    let io = faults::lease_io();
    retry_transient(&RetryPolicy::default(), |attempt| {
        io.replace_atomic(path, bytes, durable, attempt)
    })?;
    Ok(())
}

/// Is the lease's owner process verifiably gone?  Only Linux can answer;
/// elsewhere the answer is "unknown" and staleness falls back to the TTL.
/// A pid that exists but whose kernel start time differs from the one the
/// lease recorded is a **reused** pid — the owner is just as dead.
fn owner_verifiably_dead(lease: &ShardLease) -> bool {
    if lease.pid == std::process::id() || !cfg!(target_os = "linux") {
        // This process "owns" every in-process worker thread; and without
        // /proc there is no verdict.
        return false;
    }
    match process_start_ticks(lease.pid) {
        // No /proc/<pid>/stat: the process is gone.
        None => true,
        Some(current_start) => match lease.pid_start {
            // Same pid, different start time: the pid was recycled.
            Some(recorded) => recorded != current_start,
            // A lease without the identity (degraded writer): the live pid
            // must be presumed to be the owner.
            None => false,
        },
    }
}

/// Is the lease at `path` stealable?  Yes when its owner process is
/// verifiably dead, or when the file has not been refreshed within `ttl`.
/// Age reads go through the lease-IO seam and clamp future mtimes to zero,
/// so clock skew can only delay a TTL steal — a spurious steal (two workers
/// running one shard) stays safe regardless, because records are
/// deterministic and the merge dedupes by job key.
fn lease_is_stale(path: &Path, lease: Option<&ShardLease>, ttl: StdDuration) -> bool {
    if let Some(lease) = lease {
        if owner_verifiably_dead(lease) {
            return true;
        }
    }
    match faults::lease_io().lease_age(path) {
        Ok(age) => age >= ttl,
        // The lease vanished (or mtime is unreadable) mid-check: let the
        // atomic create/rename race below settle ownership.
        Err(_) => true,
    }
}

/// Outcome of one claim attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClaimOutcome {
    /// This worker now holds the shard's lease.
    Claimed,
    /// The shard is already completed.
    Done,
    /// Another live worker holds a fresh lease.
    Busy,
}

/// Try to claim `shard`: atomic `create_new` of the lease file, or an
/// atomic rewrite-and-rename **steal** when the existing lease is stale.
/// Two stealers can race; both then run the shard, which is safe because
/// records are deterministic and the merge dedupes by job key.
fn try_claim_shard(
    layout: &ShardLayout,
    shard: usize,
    me: &ShardLease,
    ttl: StdDuration,
) -> Result<ClaimOutcome, DistribError> {
    if layout.done_path(shard).exists() {
        return Ok(ClaimOutcome::Done);
    }
    let lease_path = layout.lease_path(shard);
    let body = serde_json::to_string(me)
        .map_err(|e| DistribError::Format(format!("lease serialization failed: {e}")))?;
    let io = faults::lease_io();
    let created = retry_transient(&RetryPolicy::default(), |attempt| {
        io.create_new(&lease_path, body.as_bytes(), attempt)
    })?;
    if created {
        return Ok(ClaimOutcome::Claimed);
    }
    let holder: Option<ShardLease> = fs::read_to_string(&lease_path)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok());
    if lease_is_stale(&lease_path, holder.as_ref(), ttl) {
        write_atomic(&lease_path, body.as_bytes(), false)?;
        faults::note_event(RunEvent::LeaseStolen);
        Ok(ClaimOutcome::Claimed)
    } else {
        Ok(ClaimOutcome::Busy)
    }
}

/// Refresh a held lease (bumps the file's mtime — the heartbeat other
/// workers consult before stealing).
fn refresh_lease(layout: &ShardLayout, shard: usize, me: &ShardLease) -> Result<(), DistribError> {
    let body = serde_json::to_string(me)
        .map_err(|e| DistribError::Format(format!("lease serialization failed: {e}")))?;
    write_atomic(&layout.lease_path(shard), body.as_bytes(), false)
}

/// Release a held lease outright — the graceful-shutdown path.  Removing
/// the file lets any other worker's atomic `create_new` claim the shard
/// **instantly**, with no TTL wait; a lease that is already gone is fine.
fn release_lease(layout: &ShardLayout, shard: usize) -> Result<(), DistribError> {
    match fs::remove_file(layout.lease_path(shard)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Process-wide graceful-shutdown flag, checked between jobs and between
/// shards.  Socket workers raise it when the daemon connection closes; the
/// CLI raises it from a SIGTERM-style request.  There is deliberately no
/// way to lower it — shutdown is one-way.
static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Ask every worker loop in this process to wind down: finish (or skip)
/// the job at hand, flush collector buffers, release unfinished leases and
/// return cleanly.  A released shard is immediately claimable by any other
/// worker — no TTL expiry is involved.
pub fn request_shutdown() {
    SHUTDOWN.store(true, std::sync::atomic::Ordering::Relaxed);
}

/// Whether a graceful shutdown has been requested in this process.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(std::sync::atomic::Ordering::Relaxed)
}

/// Lower the shutdown flag (test isolation only — production shutdown is
/// one-way).
pub fn reset_shutdown() {
    SHUTDOWN.store(false, std::sync::atomic::Ordering::Relaxed);
}

/// Everything a worker needs to participate in a grid.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The shard directory (must contain a manifest).
    pub dir: PathBuf,
    /// This worker's own JSONL store (created if missing, resumed if not).
    pub store_path: PathBuf,
    /// Owner label written into claimed leases.
    pub label: String,
    /// Lease time-to-live before other workers may steal.
    pub lease_ttl: StdDuration,
    /// Test hook: stop (as if killed) after completing this many shards.
    pub max_shards: Option<usize>,
    /// fsync every store append (the worker-side form of `--fsync`).
    pub fsync: bool,
    /// Total attempts per job before a panicking or budget-blowing job is
    /// quarantined as a [`JobFailure`] (at least 1).
    pub job_attempts: u32,
    /// Optional per-job wall-clock budget; a job still running past it
    /// counts as a failed attempt (its thread is abandoned, its eventual
    /// result discarded).  `None` — the default — imposes no budget.
    pub job_wall_budget: Option<StdDuration>,
}

impl WorkerConfig {
    /// A worker on `dir` writing to `store_path`, with the default lease
    /// TTL ([`DEFAULT_LEASE_TTL`]), no per-append fsync, 2 attempts per job
    /// and no wall-clock budget.
    pub fn new(
        dir: impl Into<PathBuf>,
        store_path: impl Into<PathBuf>,
        label: impl Into<String>,
    ) -> Self {
        WorkerConfig {
            dir: dir.into(),
            store_path: store_path.into(),
            label: label.into(),
            lease_ttl: DEFAULT_LEASE_TTL,
            max_shards: None,
            fsync: false,
            job_attempts: 2,
            job_wall_budget: None,
        }
    }
}

/// What one worker invocation accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// Shards this worker claimed and completed.
    pub shards_completed: usize,
    /// Jobs simulated (fresh records appended to the worker's store).
    pub jobs_run: usize,
    /// Jobs skipped because a valid record was already in the worker's own
    /// store (a restarted worker resuming its partial shard).
    pub jobs_reused: usize,
    /// Jobs that exhausted their attempts and were recorded as failures.
    pub jobs_quarantined: usize,
}

/// The worker loop: claim a shard, run its pending jobs through one rayon
/// fan-out (streaming each record to this worker's store the moment it
/// completes), mark the shard done, repeat — until every shard is either
/// done or freshly leased by another live worker.
///
/// This is what the `experiment` binary executes under `--worker-shard`,
/// and what [`ThreadSpawner`] runs in-process.
///
/// **Graceful shutdown**: once [`request_shutdown`] has been called, the
/// loop skips jobs it has not started, flushes the store's collector
/// buffers, **releases** the lease of any unfinished shard (so another
/// worker re-claims it instantly, without waiting out the TTL) and returns
/// cleanly with whatever it completed.
pub fn run_worker(cfg: &WorkerConfig) -> Result<WorkerOutcome, DistribError> {
    // A spawned worker process inherits the coordinator's `--profile`
    // through the environment; in-process thread workers already share the
    // coordinator's profiler gate.
    caem_metrics::prof::install_from_env();
    let layout = ShardLayout::new(&cfg.dir);
    let manifest = GridManifest::load(&layout)?;
    let mut store = ExperimentStore::open_with(&cfg.store_path, StoreOptions { fsync: cfg.fsync })?;
    let me = ShardLease::current(cfg.label.clone());
    let mut outcome = WorkerOutcome::default();
    'scan: loop {
        let mut progressed = false;
        for shard in 0..manifest.shard_count {
            if shutdown_requested() {
                break 'scan;
            }
            if cfg
                .max_shards
                .is_some_and(|limit| outcome.shards_completed >= limit)
            {
                break 'scan; // simulated death, for the kill/steal tests
            }
            if try_claim_shard(&layout, shard, &me, cfg.lease_ttl)? != ClaimOutcome::Claimed {
                continue;
            }
            progressed = true;
            let completed = run_shard(
                &layout,
                &manifest,
                shard,
                &me,
                cfg,
                &mut store,
                &mut outcome,
            )?;
            if !completed {
                // Shutdown interrupted the shard: hand it straight back.
                release_lease(&layout, shard)?;
                break 'scan;
            }
            refresh_lease(&layout, shard, &me)?;
            let summary = format!(
                "{{\"worker\":{:?},\"pid\":{},\"jobs\":{}}}",
                me.worker,
                me.pid,
                manifest.shard_jobs(shard).len()
            );
            // Done markers are durable: losing one after the workers exit
            // would strand the shard "in progress" forever from the
            // coordinator's point of view.
            write_atomic(&layout.done_path(shard), summary.as_bytes(), true)?;
            outcome.shards_completed += 1;
        }
        if !progressed {
            break;
        }
    }
    // Dropping the store flushes the collector; nothing held back.  Any
    // shard this worker completed keeps its done marker; anything else has
    // no lease left to expire.
    Ok(outcome)
}

/// Run one claimed shard: reuse the worker's own valid records (and respect
/// its standing quarantines), fan the rest out through the single parallel
/// layer, stream each fresh record — or [`JobFailure`] — as it settles.
/// Returns `false` when a graceful shutdown skipped jobs, leaving the shard
/// unfinished (the caller releases its lease instead of marking it done).
fn run_shard(
    layout: &ShardLayout,
    manifest: &GridManifest,
    shard: usize,
    me: &ShardLease,
    cfg: &WorkerConfig,
    store: &mut ExperimentStore,
    outcome: &mut WorkerOutcome,
) -> Result<bool, DistribError> {
    let jobs = manifest.shard_jobs(shard);
    let total = jobs.len();
    let pending: Vec<&ManifestJob> = jobs
        .into_iter()
        .filter(|job| {
            // A valid success record — or a valid standing quarantine —
            // settles the job; only truly undecided jobs run.  Without the
            // failure check, a resumed poison grid would re-run its poison
            // jobs forever.
            store
                .get(job.key(), job.config_hash, &job.scenario)
                .is_none()
                && store
                    .get_failure(job.key(), job.config_hash, &job.scenario)
                    .is_none()
        })
        .collect();
    outcome.jobs_reused += total - pending.len();
    if pending.is_empty() {
        return Ok(true);
    }
    // The worker's single parallel layer, drawing from the process budget
    // the coordinator allotted via RAYON_TOTAL_THREADS.  Fresh results
    // stream through the lock-free collector; IO errors surface when the
    // collector drains.  A job not yet started when shutdown is requested
    // is skipped (`None`), never half-run.
    let settled: Vec<Option<Result<JobRecord, JobFailure>>> = store.with_parallel_sink(|sink| {
        pending
            .par_iter()
            .map(|job| {
                if shutdown_requested() {
                    return None;
                }
                let settled = run_job_guarded(job, cfg.job_attempts, cfg.job_wall_budget);
                match &settled {
                    Ok(record) => sink.append(record),
                    Err(failure) => sink.append_failure(failure),
                }
                // Heartbeat: bump the lease mtime after every completed job,
                // so a shard whose jobs together outlast the TTL is not
                // stolen while its owner is demonstrably making progress.
                // Best-effort — a lost beat only risks duplicated work,
                // never wrong results.
                let _ = refresh_lease(layout, shard, me);
                Some(settled)
            })
            .collect()
    })?;
    let mut completed = true;
    for settled in settled {
        match settled {
            Some(Ok(record)) => {
                outcome.jobs_run += 1;
                store.note_record(record);
            }
            Some(Err(failure)) => {
                outcome.jobs_quarantined += 1;
                store.note_failure(failure);
            }
            None => completed = false,
        }
    }
    Ok(completed)
}

/// Run one job under the quarantine guard: up to `attempts` tries, each
/// wrapped in `catch_unwind` (and, with a budget, raced against the clock);
/// a job that never settles cleanly becomes a [`JobFailure`] so the shard —
/// and the grid — still completes.  Shared with the socket-transport worker
/// in [`crate::serve`], whose jobs arrive over the wire instead of from a
/// manifest file.
pub(crate) fn run_job_guarded(
    job: &ManifestJob,
    attempts: u32,
    wall_budget: Option<StdDuration>,
) -> Result<JobRecord, JobFailure> {
    let attempts = attempts.max(1);
    let mut last_reason = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            faults::note_event(RunEvent::JobRetried);
        }
        match run_job_once(job, wall_budget) {
            Ok(record) => return Ok(record),
            Err(reason) => last_reason = reason,
        }
    }
    faults::note_event(RunEvent::JobQuarantined);
    Err(JobFailure {
        scenario_index: job.scenario_index,
        scenario: job.scenario.clone(),
        policy_index: job.policy_index,
        policy: job.policy,
        seed: job.seed,
        config_hash: job.config_hash,
        attempts,
        reason: last_reason,
    })
}

/// One guarded attempt: the simulation inside `catch_unwind`, optionally on
/// a watchdog thread so a runaway job can be abandoned at its wall-clock
/// budget (the thread cannot be killed; it is detached and its eventual
/// result discarded — the quarantine record is what the grid keeps).
fn run_job_once(job: &ManifestJob, wall_budget: Option<StdDuration>) -> Result<JobRecord, String> {
    let key = job.key();
    let owned = job.clone();
    let attempt = move || -> JobRecord {
        faults::poison_check(key);
        owned.run()
    };
    match wall_budget {
        None => std::panic::catch_unwind(std::panic::AssertUnwindSafe(attempt))
            .map_err(|payload| format!("job panicked: {}", panic_text(payload.as_ref()))),
        Some(budget) => {
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::Builder::new()
                .name(format!("caem-job-{}-{}-{}", key.0, key.1, key.2))
                .spawn(move || {
                    let settled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(attempt));
                    let _ = tx.send(settled);
                })
                .map_err(|e| format!("could not spawn job thread: {e}"))?;
            match rx.recv_timeout(budget) {
                Ok(Ok(record)) => Ok(record),
                Ok(Err(payload)) => Err(format!("job panicked: {}", panic_text(payload.as_ref()))),
                Err(_) => Err(format!(
                    "job exceeded its wall-clock budget of {:.1} s",
                    budget.as_secs_f64()
                )),
            }
        }
    }
}

/// Best-effort text of a panic payload (panics carry `String` or `&str`).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// A handle on one spawned worker (process or thread).
pub struct WorkerHandle(HandleInner);

enum HandleInner {
    Process(std::process::Child),
    Thread(std::thread::JoinHandle<Result<WorkerOutcome, DistribError>>),
}

impl WorkerHandle {
    /// Wrap a spawned worker process.
    pub fn from_child(child: std::process::Child) -> Self {
        WorkerHandle(HandleInner::Process(child))
    }

    /// Wrap an in-process worker thread.
    pub fn from_thread(
        handle: std::thread::JoinHandle<Result<WorkerOutcome, DistribError>>,
    ) -> Self {
        WorkerHandle(HandleInner::Thread(handle))
    }

    /// Wait for the worker to finish.  `Err` carries a description of an
    /// abnormal exit (non-zero status, kill signal, panic or worker error);
    /// the coordinator treats that as "its shards will be stolen", not as a
    /// fatal condition.
    pub fn join(self) -> Result<(), String> {
        match self.0 {
            HandleInner::Process(mut child) => match child.wait() {
                Ok(status) if status.success() => Ok(()),
                Ok(status) => Err(format!("worker process exited with {status}")),
                Err(e) => Err(format!("could not wait for worker process: {e}")),
            },
            HandleInner::Thread(handle) => match handle.join() {
                Ok(Ok(_)) => Ok(()),
                Ok(Err(e)) => Err(format!("worker thread failed: {e}")),
                Err(_) => Err("worker thread panicked".to_string()),
            },
        }
    }
}

/// Where a spawned worker should attach.
///
/// The file-based protocol hands workers a shard **directory** on a shared
/// filesystem; the socket protocol hands them a service **endpoint** and
/// needs no shared filesystem at all.  Spawners declare which targets they
/// understand by accepting or rejecting them in [`WorkerSpawner::spawn`],
/// so a transport mismatch is a typed error, never a silent misread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerTarget {
    /// A shard directory containing a grid manifest (file transport).
    Dir(PathBuf),
    /// A `caem-serve` daemon address such as `127.0.0.1:7171` (socket
    /// transport; workers connect instead of scanning a directory).
    Endpoint(String),
}

/// The worker transport: how a coordinator (or the service daemon) brings
/// workers to a grid.  Implementations: [`ProcessSpawner`] (separate
/// processes — file or socket attach), [`ThreadSpawner`] (in-process
/// threads over the file protocol) and the in-memory loopback in
/// [`crate::serve`] (socket protocol semantics with no sockets, for
/// deterministic tests).
pub trait WorkerSpawner {
    /// Launch worker `index` against `target`.  `thread_budget` is the
    /// rayon thread share this worker should confine itself to (exported as
    /// `RAYON_TOTAL_THREADS` for process workers; in-process workers share
    /// the parent's budget, which already caps the total by construction).
    fn spawn(
        &self,
        target: &WorkerTarget,
        index: usize,
        thread_budget: usize,
    ) -> Result<WorkerHandle, DistribError>;
}

/// Spawn real worker **processes**: re-invokes a binary (normally
/// `std::env::current_exe()`) with `--worker-shard <dir> --store
/// <dir>/workers/worker_<index>.jsonl` appended to `base_args`, and
/// `RAYON_TOTAL_THREADS` set to the worker's thread share.
#[derive(Debug, Clone)]
pub struct ProcessSpawner {
    /// The worker binary to execute.
    pub program: PathBuf,
    /// Arguments placed before the `--worker-shard`/`--store` pair.
    pub base_args: Vec<String>,
    /// Extra environment exported to every worker (how the `experiment`
    /// binary forwards the chaos plan and fsync setting across `exec`).
    pub envs: Vec<(String, String)>,
}

impl ProcessSpawner {
    /// Spawn workers by re-invoking the current executable.
    pub fn current_exe(base_args: Vec<String>) -> Result<Self, DistribError> {
        Ok(ProcessSpawner {
            program: std::env::current_exe()?,
            base_args,
            envs: Vec::new(),
        })
    }
}

impl WorkerSpawner for ProcessSpawner {
    fn spawn(
        &self,
        target: &WorkerTarget,
        index: usize,
        thread_budget: usize,
    ) -> Result<WorkerHandle, DistribError> {
        let mut cmd = std::process::Command::new(&self.program);
        cmd.args(&self.base_args);
        match target {
            WorkerTarget::Dir(dir) => {
                let store = ShardLayout::new(dir).worker_store_path(&format!("{index:03}"));
                cmd.arg("--worker-shard").arg(dir).arg("--store").arg(store);
            }
            WorkerTarget::Endpoint(addr) => {
                cmd.arg("--connect").arg(addr);
            }
        }
        let child = cmd
            .env("RAYON_TOTAL_THREADS", thread_budget.to_string())
            .envs(self.envs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
            .spawn()?;
        Ok(WorkerHandle::from_child(child))
    }
}

/// Spawn in-process worker **threads** running [`run_worker`] directly —
/// the claim protocol is identical (same lease files, same steals), which
/// is what the integration tests and the example exercise without needing a
/// separate binary.  All threads draw from the parent's shared rayon
/// budget, so the no-oversubscription guarantee holds without an env split.
#[derive(Debug, Clone)]
pub struct ThreadSpawner {
    /// Lease TTL handed to every worker.
    pub lease_ttl: StdDuration,
    /// Test hook: each worker stops (as if killed) after this many shards.
    pub max_shards: Option<usize>,
    /// fsync every store append in each worker.
    pub fsync: bool,
}

impl Default for ThreadSpawner {
    fn default() -> Self {
        ThreadSpawner {
            lease_ttl: DEFAULT_LEASE_TTL,
            max_shards: None,
            fsync: false,
        }
    }
}

impl WorkerSpawner for ThreadSpawner {
    fn spawn(
        &self,
        target: &WorkerTarget,
        index: usize,
        _thread_budget: usize,
    ) -> Result<WorkerHandle, DistribError> {
        let dir = match target {
            WorkerTarget::Dir(dir) => dir.clone(),
            WorkerTarget::Endpoint(addr) => {
                return Err(DistribError::Format(format!(
                    "thread workers attach to shard directories, not endpoint {addr} \
                     (use the serve loopback transport for in-process socket workers)"
                )))
            }
        };
        let mut cfg = WorkerConfig::new(
            dir.clone(),
            ShardLayout::new(&dir).worker_store_path(&format!("{index:03}")),
            format!("thread_{index:03}"),
        );
        cfg.lease_ttl = self.lease_ttl;
        cfg.max_shards = self.max_shards;
        cfg.fsync = self.fsync;
        Ok(WorkerHandle::from_thread(std::thread::spawn(move || {
            run_worker(&cfg)
        })))
    }
}

/// Coordinator-side knobs of a distributed run.
#[derive(Debug, Clone)]
pub struct DistribOptions {
    /// Worker processes (or threads) to spawn.
    pub workers: usize,
    /// Shard granularity: the job list splits into `workers ×
    /// shards_per_worker` shards (clamped to the job count), so stealing
    /// rebalances in useful increments when a worker dies.
    pub shards_per_worker: usize,
    /// Lease time-to-live before an unrefreshed claim may be stolen.
    pub lease_ttl: StdDuration,
    /// Wipe the shard directory before starting (a fresh run).  Leave false
    /// to resume: done shards are skipped, valid records reused.
    pub fresh: bool,
    /// fsync every store append in the coordinator's inline worker (spawned
    /// workers receive the setting through their spawner).
    pub fsync: bool,
}

impl DistribOptions {
    /// Defaults for `workers` workers: 4 shards per worker, the default
    /// lease TTL ([`DEFAULT_LEASE_TTL`]), resume semantics (`fresh =
    /// false`), no per-append fsync.
    pub fn new(workers: usize) -> Self {
        DistribOptions {
            workers,
            shards_per_worker: 4,
            lease_ttl: DEFAULT_LEASE_TTL,
            fresh: false,
            fsync: false,
        }
    }
}

/// Everything a grid settled: the valid success records plus the jobs that
/// ended in quarantine (no success record anywhere, a standing
/// [`JobFailure`]).  A success in **any** store beats a failure in another —
/// a job another worker completed after one worker's quarantine is simply
/// complete.
#[derive(Debug, Clone, Default)]
pub struct GridOutcome {
    /// Valid success records (pre-dedup; aggregation dedupes last-wins).
    pub records: Vec<JobRecord>,
    /// Standing quarantines, one per failed job key, in canonical key order.
    pub failures: Vec<JobFailure>,
}

/// Collect every record in the given stores that belongs to `manifest`
/// (matching key, config hash and scenario label).  Records from other
/// grids, stale configurations or renamed scenarios are counted and skipped
/// with a warning — they cannot silently contaminate a merged report.
///
/// The result is deliberately **order-insensitive** downstream: records are
/// deterministic per job, so however the stores are ordered (and however
/// many duplicates worker kills and steals produced), the deduplicated
/// canonical aggregation is identical.
pub fn collect_grid_records(
    manifest: &GridManifest,
    store_paths: &[PathBuf],
) -> Result<Vec<JobRecord>, DistribError> {
    Ok(collect_grid_outcome(manifest, store_paths)?.records)
}

/// The failure-aware form of [`collect_grid_records`]: also gathers the
/// grid's standing quarantines (valid failure records whose job has no
/// valid success record in any store), deduplicated per key and sorted
/// canonically so downstream report sections are deterministic.
pub fn collect_grid_outcome(
    manifest: &GridManifest,
    store_paths: &[PathBuf],
) -> Result<GridOutcome, DistribError> {
    let mut records = Vec::new();
    let mut failures = Vec::new();
    for path in store_paths {
        let store = ExperimentStore::load(path)?;
        records.extend(store.records().iter().cloned());
        failures.extend(store.failures().iter().cloned());
    }
    Ok(merge_outcome(manifest, records, failures))
}

/// The transport-independent core of [`collect_grid_outcome`]: merge
/// already-loaded records and failures against `manifest`'s validity filter
/// (matching key, config hash and scenario label), drop quarantines that
/// any success record supersedes, and sort the survivors canonically.  The
/// service daemon feeds this with records that arrived over sockets instead
/// of from files — the merge semantics (and therefore the report bytes) are
/// identical by construction.
pub fn merge_outcome(
    manifest: &GridManifest,
    records: Vec<JobRecord>,
    failures: Vec<JobFailure>,
) -> GridOutcome {
    let filter = manifest.record_filter();
    let mut outcome = GridOutcome::default();
    let mut standing: HashMap<JobKey, JobFailure> = HashMap::new();
    let mut foreign = 0usize;
    for record in records {
        match filter.get(&record.key()) {
            Some(&(hash, label)) if record.config_hash == hash && record.scenario == label => {
                outcome.records.push(record);
            }
            _ => foreign += 1,
        }
    }
    for failure in failures {
        match filter.get(&failure.key()) {
            Some(&(hash, label)) if failure.config_hash == hash && failure.scenario == label => {
                standing.insert(failure.key(), failure);
            }
            _ => foreign += 1,
        }
    }
    // Success beats failure: a quarantine only stands while no worker ever
    // completed the job.
    let completed: std::collections::HashSet<JobKey> =
        outcome.records.iter().map(JobRecord::key).collect();
    outcome.failures = standing
        .into_values()
        .filter(|f| !completed.contains(&f.key()))
        .collect();
    outcome.failures.sort_by_key(JobFailure::key);
    if foreign > 0 {
        faults::note_events(RunEvent::ForeignRecordIgnored, foreign as u64);
        eprintln!("warning: ignored {foreign} persisted records that do not belong to this grid");
    }
    outcome
}

/// Merge a completed grid directory into its canonical report (no spec
/// needed — the offline counterpart of [`ExperimentSpec::run_distributed`],
/// analogous to [`ExperimentStore::rebuild_report`]).  Standing quarantines
/// surface in the report's degradation section.
pub fn merge_grid_report(dir: &Path) -> Result<ExperimentReport, DistribError> {
    let layout = ShardLayout::new(dir);
    let manifest = GridManifest::load(&layout)?;
    let stores = layout.discover_worker_stores()?;
    // Reading worker shard stores back is collector-path work.
    let span = caem_metrics::prof::Span::start();
    let outcome = collect_grid_outcome(&manifest, &stores)?;
    span.stop_global(
        caem_metrics::prof::ProfKey::Collector,
        outcome.records.len() as u64,
    );
    let mut report = ExperimentReport::from_records(outcome.records);
    report.failures = outcome.failures;
    Ok(report)
}

impl ExperimentSpec {
    /// Run the grid across `opts.workers` workers coordinated through the
    /// shard directory `dir`, and aggregate through the canonical
    /// [`ExperimentReport::from_records`] path.
    ///
    /// The report is **bit-identical** to [`ExperimentSpec::run`] on the
    /// same spec — whether one worker ran everything, N workers split it,
    /// workers were killed mid-run, or the whole coordinator was killed and
    /// this call resumed the directory (`opts.fresh == false`).
    pub fn run_distributed<S: WorkerSpawner>(
        &self,
        dir: &Path,
        opts: &DistribOptions,
        spawner: &S,
    ) -> Result<ExperimentReport, DistribError> {
        let outcome = self.run_distributed_outcome(dir, opts, spawner)?;
        let mut report = ExperimentReport::from_records(outcome.records);
        report.seeds = self.seeds.clone();
        report.failures = outcome.failures;
        Ok(report)
    }

    /// The success records of [`ExperimentSpec::run_distributed_outcome`]
    /// (kept for callers that only aggregate; quarantines are dropped).
    pub fn run_distributed_records<S: WorkerSpawner>(
        &self,
        dir: &Path,
        opts: &DistribOptions,
        spawner: &S,
    ) -> Result<Vec<JobRecord>, DistribError> {
        Ok(self.run_distributed_outcome(dir, opts, spawner)?.records)
    }

    /// The record-level body of [`ExperimentSpec::run_distributed`]:
    /// prepare the manifest, spawn and join workers, finish leftover shards
    /// inline, and return every settled job of the grid — success records
    /// (deduplicable, covering every non-quarantined job) plus standing
    /// quarantines.  The grid counts as complete when every job is settled
    /// one way or the other.
    pub fn run_distributed_outcome<S: WorkerSpawner>(
        &self,
        dir: &Path,
        opts: &DistribOptions,
        spawner: &S,
    ) -> Result<GridOutcome, DistribError> {
        self.assert_distinct_axes();
        assert!(opts.workers >= 1, "need at least one worker");
        assert!(
            opts.shards_per_worker >= 1,
            "need at least one shard per worker"
        );
        assert!(self.job_count() >= 1, "cannot distribute an empty grid");
        let layout = ShardLayout::new(dir);
        if opts.fresh && dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        layout.create_dirs()?;
        let shard_count = (opts.workers * opts.shards_per_worker).min(self.job_count());
        let fresh_manifest = GridManifest::from_spec(self, shard_count);
        // Resume keeps the on-disk shard partition (workers read it from the
        // manifest anyway), but only for the *same* grid: a different job
        // list is rejected rather than silently mixed in.
        let manifest = if layout.manifest_path().exists() {
            let existing = GridManifest::load(&layout)?;
            if existing.grid_hash != fresh_manifest.grid_hash {
                return Err(DistribError::ManifestMismatch {
                    expected: fresh_manifest.grid_hash,
                    found: existing.grid_hash,
                });
            }
            existing
        } else {
            fresh_manifest.write(&layout)?;
            fresh_manifest
        };

        let budget = rayon::split_thread_budget(opts.workers);
        let target = WorkerTarget::Dir(dir.to_path_buf());
        let handles: Vec<WorkerHandle> = (0..opts.workers)
            .map(|i| spawner.spawn(&target, i, budget))
            .collect::<Result<_, _>>()?;
        for handle in handles {
            if let Err(why) = handle.join() {
                faults::note_event(RunEvent::WorkerAbnormalExit);
                eprintln!("warning: {why} — its unfinished shards will be stolen");
            }
        }

        // Finish whatever the workers left behind (killed workers leave
        // stale leases; the inline pass steals and completes them).
        let mut patience = 0u32;
        while !layout.all_done(manifest.shard_count) {
            let mut inline = WorkerConfig::new(
                dir.to_path_buf(),
                layout.worker_store_path("coordinator"),
                "coordinator",
            );
            inline.lease_ttl = opts.lease_ttl;
            inline.fsync = opts.fsync;
            run_worker(&inline)?;
            if layout.all_done(manifest.shard_count) {
                break;
            }
            // Shards still leased (e.g. a worker died milliseconds ago on a
            // non-Linux host): wait a slice of the TTL and steal.
            patience += 1;
            if patience > 10_000 {
                return Err(DistribError::Format(
                    "shards never completed (live leases that refuse to expire)".into(),
                ));
            }
            std::thread::sleep(
                opts.lease_ttl
                    .div_f64(4.0)
                    .min(StdDuration::from_millis(200)),
            );
        }

        let stores = layout.discover_worker_stores()?;
        let outcome = collect_grid_outcome(&manifest, &stores)?;
        // Coverage: every job is settled by a success record or a standing
        // quarantine; anything else means records were lost, which must be
        // an error, never a silently thinner report.
        let mut keys: Vec<JobKey> = outcome
            .records
            .iter()
            .map(JobRecord::key)
            .chain(outcome.failures.iter().map(JobFailure::key))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        if keys.len() != manifest.jobs.len() {
            return Err(DistribError::Incomplete {
                missing: manifest.jobs.len() - keys.len(),
            });
        }
        Ok(outcome)
    }
}

/// Distributed CI-driven sequential stopping: the exact
/// [`ExperimentSpec::run_sequential`] loop, with each replicate batch
/// running as its own distributed grid under `dir/round_<k>/`.
///
/// Batches (and therefore rounds, replicate counts and the final report)
/// are deterministic in the spec and stopping rule, so a killed and
/// re-invoked loop resumes: completed rounds merge straight from their
/// shard directories without simulating anything.
pub fn run_sequential_distributed<S: WorkerSpawner>(
    spec: &ExperimentSpec,
    dir: &Path,
    opts: &DistribOptions,
    spawner: &S,
    stop: &SequentialStopping,
) -> Result<SequentialOutcome, DistribError> {
    stop.validate()
        .unwrap_or_else(|e| panic!("invalid sequential-stopping configuration: {e}"));
    assert!(
        !spec.seeds.is_empty(),
        "sequential stopping needs a non-empty initial seed batch"
    );
    assert!(
        stop.max_replicates >= spec.seeds.len(),
        "replicate cap {} is below the initial batch of {} seeds — the cap could never be honoured",
        stop.max_replicates,
        spec.seeds.len()
    );
    if opts.fresh && dir.exists() {
        fs::remove_dir_all(dir)?;
    }
    let round_opts = DistribOptions {
        fresh: false,
        ..opts.clone()
    };
    let mut seeds = spec.seeds.clone();
    let mut batch_start = 0usize;
    let mut all_records: Vec<JobRecord> = Vec::new();
    let mut all_failures: Vec<JobFailure> = Vec::new();
    let mut rounds = Vec::new();
    loop {
        let batch = ExperimentSpec {
            scenarios: spec.scenarios.clone(),
            policies: spec.policies.clone(),
            seeds: seeds[batch_start..].to_vec(),
        };
        let round_dir = dir.join(format!("round_{:03}", rounds.len()));
        let outcome = batch.run_distributed_outcome(&round_dir, &round_opts, spawner)?;
        all_records.extend(outcome.records);
        all_failures.extend(outcome.failures);
        let mut report = ExperimentReport::from_records(all_records.iter().cloned());
        report.seeds = seeds.clone();
        report.failures = all_failures.clone();
        let worst_half_width = worst_ci_half_width(&report, &stop.metric);
        rounds.push(SequentialRound {
            replicates: seeds.len(),
            worst_half_width,
        });
        let converged = worst_half_width <= stop.target_half_width;
        if converged || seeds.len() >= stop.max_replicates {
            return Ok(SequentialOutcome {
                report,
                rounds,
                converged,
            });
        }
        batch_start = seeds.len();
        let next = seeds.iter().copied().max().expect("non-empty seeds") + 1;
        let add = stop.batch.min(stop.max_replicates - seeds.len()) as u64;
        seeds.extend((0..add).map(|i| next + i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScenarioConfig;
    use crate::experiment::ScenarioSpec;
    use caem_simcore::time::Duration;

    fn temp_grid(name: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("caem_distrib_unit_{}_{name}", std::process::id()));
        fs::remove_dir_all(&path).ok();
        path
    }

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec::paper_policies(
            vec![ScenarioSpec::new(
                "uniform",
                ScenarioConfig::small(PolicyKind::PureLeach, 8.0, 0)
                    .with_duration(Duration::from_secs(5)),
            )],
            400,
            2,
        )
    }

    #[test]
    fn manifest_partitions_every_job_exactly_once() {
        let spec = tiny_spec();
        let manifest = GridManifest::from_spec(&spec, 4);
        assert_eq!(manifest.jobs.len(), spec.job_count());
        assert_eq!(manifest.seeds, spec.seeds);
        let mut seen = 0;
        for shard in 0..manifest.shard_count {
            seen += manifest.shard_jobs(shard).len();
        }
        assert_eq!(seen, manifest.jobs.len(), "shards cover the grid");
        // Identity follows the job list, not the partition: the same grid
        // resharded for a different worker count still resumes...
        let other = GridManifest::from_spec(&spec, 3);
        assert_eq!(manifest.grid_hash, other.grid_hash);
        // ...but any change to the jobs themselves is a different grid.
        let mut edited = spec.clone();
        edited.seeds[0] += 1;
        assert_ne!(
            manifest.grid_hash,
            GridManifest::from_spec(&edited, 4).grid_hash
        );
    }

    #[test]
    fn manifest_round_trips_through_its_file() {
        let spec = tiny_spec();
        let dir = temp_grid("manifest_roundtrip");
        let layout = ShardLayout::new(&dir);
        layout.create_dirs().unwrap();
        let manifest = GridManifest::from_spec(&spec, 2);
        manifest.write(&layout).unwrap();
        let back = GridManifest::load(&layout).unwrap();
        assert_eq!(back.grid_hash, manifest.grid_hash);
        assert_eq!(back.shard_count, 2);
        assert_eq!(back.jobs.len(), manifest.jobs.len());
        assert_eq!(back.jobs[0].key(), manifest.jobs[0].key());
        assert_eq!(back.jobs[0].config_hash, manifest.jobs[0].config_hash);
        // The persisted config hashes to the same identity after the JSON
        // round-trip — the property record validation relies on.
        assert_eq!(config_hash(&back.jobs[0].config), back.jobs[0].config_hash);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn claim_is_exclusive_and_done_wins() {
        let dir = temp_grid("claims");
        let layout = ShardLayout::new(&dir);
        layout.create_dirs().unwrap();
        let ttl = StdDuration::from_secs(60);
        let a = ShardLease::current("a");
        let b = ShardLease::current("b");
        assert_eq!(
            try_claim_shard(&layout, 0, &a, ttl).unwrap(),
            ClaimOutcome::Claimed
        );
        assert_eq!(
            try_claim_shard(&layout, 0, &b, ttl).unwrap(),
            ClaimOutcome::Busy,
            "a fresh lease is exclusive"
        );
        write_atomic(&layout.done_path(0), b"{}", true).unwrap();
        assert_eq!(
            try_claim_shard(&layout, 0, &b, ttl).unwrap(),
            ClaimOutcome::Done
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dead_owner_and_expired_leases_are_stolen() {
        let dir = temp_grid("steal");
        let layout = ShardLayout::new(&dir);
        layout.create_dirs().unwrap();
        let me = ShardLease::current("stealer");
        // A lease held by a verifiably dead process is stolen immediately.
        let ghost = ShardLease {
            worker: "ghost".into(),
            pid: u32::MAX - 1,
            pid_start: None,
        };
        write_atomic(
            &layout.lease_path(0),
            serde_json::to_string(&ghost).unwrap().as_bytes(),
            false,
        )
        .unwrap();
        assert_eq!(
            try_claim_shard(&layout, 0, &me, StdDuration::from_secs(3600)).unwrap(),
            ClaimOutcome::Claimed,
            "dead-pid lease must be stolen despite a fresh mtime"
        );
        // A live-pid lease is only stolen after its TTL expires.
        write_atomic(
            &layout.lease_path(1),
            serde_json::to_string(&me).unwrap().as_bytes(),
            false,
        )
        .unwrap();
        assert_eq!(
            try_claim_shard(&layout, 1, &me, StdDuration::from_secs(3600)).unwrap(),
            ClaimOutcome::Busy
        );
        std::thread::sleep(StdDuration::from_millis(30));
        assert_eq!(
            try_claim_shard(&layout, 1, &me, StdDuration::from_millis(10)).unwrap(),
            ClaimOutcome::Claimed,
            "an expired lease is stolen"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn released_lease_is_reclaimed_instantly() {
        let dir = temp_grid("release");
        let layout = ShardLayout::new(&dir);
        layout.create_dirs().unwrap();
        let ttl = StdDuration::from_secs(3600);
        let a = ShardLease::current("a");
        let b = ShardLease::current("b");
        assert_eq!(
            try_claim_shard(&layout, 0, &a, ttl).unwrap(),
            ClaimOutcome::Claimed
        );
        assert_eq!(
            try_claim_shard(&layout, 0, &b, ttl).unwrap(),
            ClaimOutcome::Busy
        );
        // Graceful shutdown releases the lease outright: worker b's very
        // next claim succeeds, hours before the TTL could have expired.
        release_lease(&layout, 0).unwrap();
        assert_eq!(
            try_claim_shard(&layout, 0, &b, ttl).unwrap(),
            ClaimOutcome::Claimed,
            "a released shard is re-claimed with no TTL wait"
        );
        // Releasing an already-released lease is a no-op, not an error.
        release_lease(&layout, 1).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_skips_pending_jobs_and_releases_the_shard() {
        let spec = tiny_spec();
        let dir = temp_grid("shutdown");
        let layout = ShardLayout::new(&dir);
        layout.create_dirs().unwrap();
        let manifest = GridManifest::from_spec(&spec, 1);
        manifest.write(&layout).unwrap();
        let ttl = StdDuration::from_secs(3600);
        let me = ShardLease::current("quitter");
        assert_eq!(
            try_claim_shard(&layout, 0, &me, ttl).unwrap(),
            ClaimOutcome::Claimed
        );
        let cfg = WorkerConfig::new(&dir, layout.worker_store_path("quitter"), "quitter");
        let mut store =
            ExperimentStore::open_with(&cfg.store_path, StoreOptions { fsync: false }).unwrap();
        request_shutdown();
        let mut outcome = WorkerOutcome::default();
        let completed =
            run_shard(&layout, &manifest, 0, &me, &cfg, &mut store, &mut outcome).unwrap();
        reset_shutdown();
        assert!(!completed, "shutdown leaves the shard unfinished");
        assert_eq!(outcome.jobs_run, 0, "no job started after the request");
        release_lease(&layout, 0).unwrap();
        let successor = ShardLease::current("successor");
        assert_eq!(
            try_claim_shard(&layout, 0, &successor, ttl).unwrap(),
            ClaimOutcome::Claimed,
            "the released shard is claimable immediately"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn lease_identity_detects_pid_reuse() {
        let me = ShardLease::current("self");
        assert!(
            me.pid_start.is_some(),
            "Linux leases carry the start-time identity"
        );
        assert!(!owner_verifiably_dead(&me), "own lease is never dead");
        // Same pid but a different recorded start time: the pid was
        // recycled, so the original owner is verifiably dead even though
        // /proc/<pid> exists.
        let recycled = ShardLease {
            worker: "previous-owner".into(),
            pid: std::process::id(),
            pid_start: me.pid_start.map(|t| t + 1),
        };
        // Own pid is exempt (in-process worker threads share it)...
        assert!(!owner_verifiably_dead(&recycled));
        // ...so check the start-time comparison against another live pid:
        // pid 1 always exists on Linux.
        let init_start = process_start_ticks(1).expect("pid 1 has a stat file");
        let stale_init = ShardLease {
            worker: "imposter".into(),
            pid: 1,
            pid_start: Some(init_start + 7),
        };
        assert!(
            owner_verifiably_dead(&stale_init),
            "a mismatched start time unmasks a reused pid"
        );
        let honest_init = ShardLease {
            worker: "init".into(),
            pid: 1,
            pid_start: Some(init_start),
        };
        assert!(!owner_verifiably_dead(&honest_init));
        let legacy = ShardLease {
            worker: "legacy".into(),
            pid: 1,
            pid_start: None,
        };
        assert!(
            !owner_verifiably_dead(&legacy),
            "a live pid without identity is presumed to be the owner"
        );
    }
}
