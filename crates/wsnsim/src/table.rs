//! Structure-of-arrays per-node state.
//!
//! [`NodeTable`] replaces the former `Vec<SensorNode>` (one heavyweight
//! struct per node) with parallel columns split by access pattern:
//!
//! * **Hot columns** — liveness, head flag, cluster index, queue length,
//!   remaining energy, the access generation and the per-node packet
//!   counters — are what the event loop and the per-round snapshots touch
//!   for *every* node.  Packed contiguously they stream through cache, and
//!   the metric trackers consume them as plain slices with no per-round
//!   copies into scratch buffers.
//! * **Cold columns** — position, battery ledger, MAC state machine,
//!   threshold policy, traffic source, link channel and PHY mode selector —
//!   are only touched by the single node an event addresses, so they no
//!   longer ride along every cache line of the hot path.
//!
//! The queue-length and remaining-energy columns are *mirrors* of state
//! owned by the cold buffers and batteries.  Every mutation of a buffer or
//! battery therefore goes through a table method that updates the mirror in
//! the same breath; the cold objects are never handed out mutably.  The
//! model-based test in `tests/node_table_model.rs` drives random operation
//! traces against a reference array-of-structs implementation to pin the
//! mirrors bit-exactly.

use caem::policy::ThresholdPolicy;
use caem_channel::geometry::Position;
use caem_channel::link::LinkChannel;
use caem_energy::battery::{Battery, EnergyCategory, EnergyLedger};
use caem_mac::sensor::{SensorMac, SensorMacConfig};
use caem_phy::ModeSelector;
use caem_simcore::rng::{components, RngStream};
use caem_traffic::buffer::PacketBuffer;
use caem_traffic::packet::Packet;

use crate::config::ScenarioConfig;
use crate::node::{build_policy, build_source, NodePolicy, NodeTrafficSource};

/// Sentinel in the cluster column: the node is not assigned this round.
const NO_CLUSTER: u32 = u32::MAX;

/// All per-node simulation state, as parallel hot/cold columns.
pub struct NodeTable {
    // ---- hot columns: touched by the event loop and round snapshots ----
    /// Liveness mask (battery depleted or churn-failed ⇒ `false`).
    alive: Vec<bool>,
    /// Cluster-head flag for the current round.
    is_head: Vec<bool>,
    /// Cluster index for the current round (`NO_CLUSTER` = unassigned).
    cluster: Vec<u32>,
    /// Mirror of each node's packet-buffer length.
    queue_len: Vec<u32>,
    /// Mirror of each node's remaining battery energy (J).
    remaining_j: Vec<f64>,
    /// Generation counter of MAC access attempts (bumped every round).
    access_generation: Vec<u32>,
    /// Packets generated per node.
    generated: Vec<u64>,
    /// Packets delivered per node (burst deliveries + head self-delivery).
    delivered: Vec<u64>,
    /// Packets dropped per node (overflow + abandoned retries).
    dropped: Vec<u64>,
    /// Of `delivered`, packets a node sank for free while serving as head.
    self_delivered: Vec<u64>,
    /// Number of `true` entries in `alive`.
    alive_count: usize,

    // ---- cold columns: touched only by the owning node's events ----
    positions: Vec<Position>,
    batteries: Vec<Battery>,
    buffers: Vec<PacketBuffer>,
    macs: Vec<SensorMac>,
    policies: Vec<NodePolicy>,
    sources: Vec<NodeTrafficSource>,
    links: Vec<LinkChannel>,
    selectors: Vec<ModeSelector>,
}

impl NodeTable {
    /// Deploy `cfg.node_count` nodes: place them with the scenario topology,
    /// seed every per-node random stream and charge the (possibly
    /// heterogeneous) batteries.
    ///
    /// Stream derivation is a pure function of `(component, node)`, so
    /// building column-by-column consumes exactly the random numbers the
    /// node-by-node constructor did.
    pub fn deploy(cfg: &ScenarioConfig, streams: &RngStream) -> Self {
        // Deployment happens before the run owns a profiling shard, so its
        // span lands directly in the process-wide profile.
        let span = caem_metrics::prof::Span::start();
        let n = cfg.node_count;
        let mut placement_rng = streams.derive(components::PLACEMENT, 0);
        let positions = cfg.topology.generate(&cfg.field, n, &mut placement_rng);

        let batteries: Vec<Battery> = (0..n)
            .map(|id| {
                // Heterogeneous initial charge: each node draws its spread
                // factor from its own stream, so adding heterogeneity never
                // perturbs placement or any other random sequence.
                let initial_energy = if cfg.initial_energy_spread > 0.0 {
                    let spread = cfg.initial_energy_spread;
                    let mut rng = streams.derive(components::HETEROGENEITY, id as u64);
                    cfg.initial_energy_j * (1.0 + rng.uniform(-spread, spread))
                } else {
                    cfg.initial_energy_j
                };
                Battery::new(initial_energy)
            })
            .collect();
        let remaining_j: Vec<f64> = batteries.iter().map(|b| b.remaining()).collect();

        let buffers = (0..n)
            .map(|_| match cfg.buffer_capacity {
                Some(c) => PacketBuffer::with_capacity(c),
                None => PacketBuffer::unbounded(),
            })
            .collect();
        let macs = (0..n)
            .map(|id| {
                SensorMac::new(
                    SensorMacConfig {
                        backoff: cfg.backoff,
                        burst: cfg.burst,
                    },
                    streams.derive(components::BACKOFF, id as u64),
                )
            })
            .collect();
        let policies = (0..n).map(|_| build_policy(cfg.policy, cfg)).collect();
        let sources = (0..n)
            .map(|id| {
                build_source(
                    cfg.traffic,
                    cfg.traffic_profile,
                    streams.derive(components::TRAFFIC, id as u64),
                )
            })
            .collect();
        let links = (0..n)
            .map(|id| {
                LinkChannel::with_distance(
                    cfg.field.diagonal(),
                    cfg.link_budget,
                    cfg.path_loss,
                    cfg.shadowing,
                    streams.derive(components::SHADOWING, id as u64),
                    streams.derive(components::FADING, id as u64),
                )
            })
            .collect();

        let table = NodeTable {
            alive: vec![true; n],
            is_head: vec![false; n],
            cluster: vec![NO_CLUSTER; n],
            queue_len: vec![0; n],
            remaining_j,
            access_generation: vec![0; n],
            generated: vec![0; n],
            delivered: vec![0; n],
            dropped: vec![0; n],
            self_delivered: vec![0; n],
            alive_count: n,
            positions,
            batteries,
            buffers,
            macs,
            policies,
            sources,
            links,
            selectors: (0..n).map(|_| ModeSelector::default()).collect(),
        };
        span.stop_global(caem_metrics::prof::ProfKey::Deploy, n as u64);
        table
    }

    /// Number of nodes (alive or dead).
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// True when the table holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Number of live nodes.
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Is `node` alive?
    #[inline]
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// The liveness column — feeds the LEACH election and cluster formation
    /// directly, with no per-round copy.
    #[inline]
    pub fn alive_slice(&self) -> &[bool] {
        &self.alive
    }

    /// Every node's position (cold, but contiguous by construction).
    #[inline]
    pub fn positions(&self) -> &[Position] {
        &self.positions
    }

    /// Is `node` serving as cluster head this round?
    #[inline]
    pub fn is_head(&self, node: usize) -> bool {
        self.is_head[node]
    }

    /// The cluster `node` belongs to this round, if any.
    #[inline]
    pub fn cluster(&self, node: usize) -> Option<usize> {
        let c = self.cluster[node];
        (c != NO_CLUSTER).then_some(c as usize)
    }

    /// Mirror of `node`'s packet-buffer length.
    #[inline]
    pub fn queue_len(&self, node: usize) -> usize {
        self.queue_len[node] as usize
    }

    /// The queue-length column (fairness snapshots read it wholesale).
    #[inline]
    pub fn queue_len_slice(&self) -> &[u32] {
        &self.queue_len
    }

    /// The head-flag column.
    #[inline]
    pub fn is_head_slice(&self) -> &[bool] {
        &self.is_head
    }

    /// Mirror of `node`'s remaining battery energy (J).
    #[inline]
    pub fn remaining(&self, node: usize) -> f64 {
        self.remaining_j[node]
    }

    /// The remaining-energy column — the energy tracker snapshots it
    /// directly, with no per-snapshot copy.
    #[inline]
    pub fn remaining_slice(&self) -> &[f64] {
        &self.remaining_j
    }

    /// `node`'s access generation (bumped by [`NodeTable::begin_round`]).
    #[inline]
    pub fn access_generation(&self, node: usize) -> u32 {
        self.access_generation[node]
    }

    // ------------------------------------------------------------------
    // Round bookkeeping
    // ------------------------------------------------------------------

    /// Install `node`'s role for a new round: head flag, cluster assignment,
    /// policy round notification and access-generation bump.
    pub fn begin_round(&mut self, node: usize, is_head: bool, cluster: Option<usize>) {
        self.is_head[node] = is_head;
        self.cluster[node] = match cluster {
            Some(c) => c as u32,
            None => NO_CLUSTER,
        };
        self.policies[node].on_round_change();
        self.access_generation[node] = self.access_generation[node].wrapping_add(1);
    }

    // ------------------------------------------------------------------
    // Battery (with remaining-energy mirror)
    // ------------------------------------------------------------------

    /// Draw `joules` from `node`'s battery.  Returns `true` when this draw
    /// depleted the battery (the node is marked dead); the caller records
    /// the death time.  Draws on dead nodes are ignored.
    pub fn draw_energy(&mut self, node: usize, category: EnergyCategory, joules: f64) -> bool {
        if !self.alive[node] {
            return false;
        }
        let died = self.batteries[node].draw(category, joules);
        self.remaining_j[node] = self.batteries[node].remaining();
        if died {
            self.alive[node] = false;
            self.alive_count -= 1;
        }
        died
    }

    /// Kill `node` for a non-energy reason (churn): the battery keeps its
    /// charge, the node simply stops participating.  Returns `true` when the
    /// node was alive.
    pub fn fail_node(&mut self, node: usize) -> bool {
        if !self.alive[node] {
            return false;
        }
        self.alive[node] = false;
        self.alive_count -= 1;
        true
    }

    /// Merge every node's energy ledger into one network-wide ledger.
    pub fn merged_ledger(&self) -> EnergyLedger {
        let mut ledger = EnergyLedger::new();
        for battery in &self.batteries {
            ledger.merge(battery.ledger());
        }
        ledger
    }

    // ------------------------------------------------------------------
    // Packet buffer (with queue-length mirror)
    // ------------------------------------------------------------------

    /// Try to enqueue a packet on `node`'s buffer.  Returns `false` on
    /// overflow.
    pub fn enqueue(&mut self, node: usize, packet: Packet) -> bool {
        let accepted = self.buffers[node].enqueue(packet);
        self.queue_len[node] = self.buffers[node].len() as u32;
        accepted
    }

    /// Dequeue `node`'s head-of-line packet.
    pub fn dequeue(&mut self, node: usize) -> Option<Packet> {
        let p = self.buffers[node].dequeue();
        self.queue_len[node] = self.buffers[node].len() as u32;
        p
    }

    /// Dequeue up to `count` packets from `node`, appending them to `out`.
    pub fn dequeue_burst_into(&mut self, node: usize, count: usize, out: &mut Vec<Packet>) {
        self.buffers[node].dequeue_burst_into(count, out);
        self.queue_len[node] = self.buffers[node].len() as u32;
    }

    /// Return an aborted burst's packets to the *front* of `node`'s buffer,
    /// draining `packets` in place.
    pub fn requeue_front_drain(&mut self, node: usize, packets: &mut Vec<Packet>) {
        self.buffers[node].requeue_front_drain(packets);
        self.queue_len[node] = self.buffers[node].len() as u32;
    }

    // ------------------------------------------------------------------
    // Per-node packet counters
    // ------------------------------------------------------------------

    /// Count one generated packet.
    #[inline]
    pub fn record_generated(&mut self, node: usize) {
        self.generated[node] += 1;
    }

    /// Count one packet delivered over the air.
    #[inline]
    pub fn record_delivered(&mut self, node: usize) {
        self.delivered[node] += 1;
    }

    /// Count `count` packets a serving head sank for free (its own data
    /// reaches the sink without using the shared channel).
    #[inline]
    pub fn record_self_delivered(&mut self, node: usize, count: u64) {
        self.delivered[node] += count;
        self.self_delivered[node] += count;
    }

    /// Count one dropped packet (overflow or abandoned retry).
    #[inline]
    pub fn record_dropped(&mut self, node: usize) {
        self.dropped[node] += 1;
    }

    /// Packets generated by `node`.
    #[inline]
    pub fn generated(&self, node: usize) -> u64 {
        self.generated[node]
    }

    /// Packets delivered by `node`.
    #[inline]
    pub fn delivered(&self, node: usize) -> u64 {
        self.delivered[node]
    }

    /// Packets dropped by `node`.
    #[inline]
    pub fn dropped(&self, node: usize) -> u64 {
        self.dropped[node]
    }

    /// Of [`NodeTable::delivered`], the packets sunk while serving as head.
    #[inline]
    pub fn self_delivered(&self, node: usize) -> u64 {
        self.self_delivered[node]
    }

    // ------------------------------------------------------------------
    // Cold-state accessors
    // ------------------------------------------------------------------

    /// `node`'s MAC state machine (read-only).
    #[inline]
    pub fn mac(&self, node: usize) -> &SensorMac {
        &self.macs[node]
    }

    /// `node`'s MAC state machine.
    #[inline]
    pub fn mac_mut(&mut self, node: usize) -> &mut SensorMac {
        &mut self.macs[node]
    }

    /// `node`'s MAC and link channel together — the lazy-CSI observation
    /// closures borrow the link while the MAC decides, which the split
    /// columns permit without any struct-destructuring dance.
    #[inline]
    pub fn mac_link_mut(&mut self, node: usize) -> (&mut SensorMac, &mut LinkChannel) {
        (&mut self.macs[node], &mut self.links[node])
    }

    /// `node`'s threshold policy (read-only).
    #[inline]
    pub fn policy(&self, node: usize) -> &NodePolicy {
        &self.policies[node]
    }

    /// `node`'s threshold policy.
    #[inline]
    pub fn policy_mut(&mut self, node: usize) -> &mut NodePolicy {
        &mut self.policies[node]
    }

    /// `node`'s traffic source.
    #[inline]
    pub fn source_mut(&mut self, node: usize) -> &mut NodeTrafficSource {
        &mut self.sources[node]
    }

    /// `node`'s link channel.
    #[inline]
    pub fn link_mut(&mut self, node: usize) -> &mut LinkChannel {
        &mut self.links[node]
    }

    /// `node`'s PHY mode selector.
    #[inline]
    pub fn selector_mut(&mut self, node: usize) -> &mut ModeSelector {
        &mut self.selectors[node]
    }

    /// Check every mirror column against the cold state it shadows.
    /// Test-support: the model-based suite calls this after each operation.
    pub fn assert_mirrors_consistent(&self) {
        let mut live = 0usize;
        for i in 0..self.len() {
            assert_eq!(
                self.queue_len[i] as usize,
                self.buffers[i].len(),
                "queue_len mirror drifted at node {i}"
            );
            assert_eq!(
                self.remaining_j[i].to_bits(),
                self.batteries[i].remaining().to_bits(),
                "remaining_j mirror drifted at node {i}"
            );
            if self.alive[i] {
                live += 1;
                assert!(
                    !self.batteries[i].is_depleted(),
                    "node {i} alive with a depleted battery"
                );
            }
        }
        assert_eq!(live, self.alive_count, "alive_count drifted");
    }
}

impl std::fmt::Debug for NodeTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeTable")
            .field("nodes", &self.len())
            .field("alive", &self.alive_count)
            .finish()
    }
}
