//! Declarative experiment specs: a serializable [`GridSpec`] document that
//! fully describes an experiment grid — scenarios (topology, traffic model +
//! diurnal profile, churn, energy spread, duration, buffers), policies,
//! seeds/replicates and sequential-stopping settings — and resolves
//! **deterministically** into an [`ExperimentSpec`].
//!
//! Until this module, every scenario was hard-coded Rust in the `experiment`
//! binary: adding a grid cell meant recompiling, and a grid definition could
//! not be shipped to another machine.  A spec file is the serializable front
//! door the engine was missing:
//!
//! * **Exact**: a committed spec resolves to the same fully resolved
//!   [`crate::ScenarioConfig`]s (hence the same
//!   [`crate::persist::config_hash`]es, the same store records and the same
//!   byte-identical report) as the equivalent code-built grid.  The
//!   committed `specs/zoo.json` reproduces the binary's code-defined
//!   scenario zoo bit-for-bit, in both full and `--quick` mode.
//! * **Strict**: parsing rejects unknown or misspelled fields, wrong types,
//!   out-of-range values and conflicting axes with a typed
//!   [`ConfigError`] carrying the dotted path of the offending field —
//!   nothing is silently ignored.
//! * **Canonical**: [`GridSpec::to_json`] re-serializes the parsed document
//!   such that parse → resolve → re-serialize → re-parse is a fixed point
//!   (property-tested), and [`ResolvedSpec`] dumps the *resolved* grid —
//!   per-scenario config hashes included — which is exactly what a remote
//!   spawner would ship to another machine and what
//!   `experiment --print-spec` prints.
//!
//! Quick mode is part of the document, not a code path: grid- and
//! scenario-level `quick` blocks carry the reduced values, so one file
//! describes both the full grid and its CI smoke variant.

use serde::Value;

use crate::config::{ConfigError, ScenarioConfig, Topology, TrafficModel, TrafficProfile};
use crate::experiment::{ExperimentSpec, ScenarioSpec, SequentialStopping, METRIC_NAMES};
use crate::persist::config_hash;
use crate::sweep::PAPER_POLICIES;
use caem::policy::PolicyKind;
use caem_simcore::time::Duration;

/// Spec-document format version this build reads and writes.
pub const SPEC_VERSION: u64 = 1;

/// The policy names a spec's `policies` axis accepts (the serde variant
/// names of [`PolicyKind`], matching report JSON).
pub const POLICY_NAMES: [&str; 3] = ["PureLeach", "Scheme1Adaptive", "Scheme2Fixed"];

fn policy_from_name(name: &str) -> Option<PolicyKind> {
    match name {
        "PureLeach" => Some(PolicyKind::PureLeach),
        "Scheme1Adaptive" => Some(PolicyKind::Scheme1Adaptive),
        "Scheme2Fixed" => Some(PolicyKind::Scheme2Fixed),
        _ => None,
    }
}

fn policy_name(policy: PolicyKind) -> &'static str {
    match policy {
        PolicyKind::PureLeach => "PureLeach",
        PolicyKind::Scheme1Adaptive => "Scheme1Adaptive",
        PolicyKind::Scheme2Fixed => "Scheme2Fixed",
    }
}

// ---------------------------------------------------------------------------
// Field-path-aware decoding helpers over the self-describing `Value` tree.
// ---------------------------------------------------------------------------

/// A map value together with its dotted path, checking off the fields the
/// schema consumes so anything left over is reported as
/// [`ConfigError::UnknownField`] — misspelled keys can never be silently
/// ignored.
struct Fields<'a> {
    path: String,
    entries: &'a [(String, Value)],
    consumed: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(path: &str, value: &'a Value) -> Result<Self, ConfigError> {
        match value {
            Value::Map(entries) => Ok(Fields {
                path: path.to_string(),
                entries,
                consumed: vec![false; entries.len()],
            }),
            _ => Err(ConfigError::WrongType {
                path: path.to_string(),
                expected: "object",
            }),
        }
    }

    fn child_path(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    /// Look up `key`, marking it consumed.  Duplicate keys in the document
    /// are a [`ConfigError::DuplicateEntry`].
    fn take(&mut self, key: &str) -> Result<Option<&'a Value>, ConfigError> {
        let mut found = None;
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if k == key {
                if found.is_some() {
                    return Err(ConfigError::DuplicateEntry {
                        path: self.path.clone(),
                        value: format!("`{key}`"),
                    });
                }
                self.consumed[i] = true;
                found = Some(v);
            }
        }
        Ok(found)
    }

    /// After all schema fields were taken: any remaining key is unknown.
    fn finish(self) -> Result<(), ConfigError> {
        for (i, (k, _)) in self.entries.iter().enumerate() {
            if !self.consumed[i] {
                return Err(ConfigError::UnknownField {
                    path: self.child_path(k),
                });
            }
        }
        Ok(())
    }

    fn required(&mut self, key: &str) -> Result<&'a Value, ConfigError> {
        self.take(key)?.ok_or_else(|| ConfigError::MissingField {
            path: self.child_path(key),
        })
    }

    fn f64_of(&self, key: &str, v: &Value) -> Result<f64, ConfigError> {
        v.as_f64().ok_or_else(|| ConfigError::WrongType {
            path: self.child_path(key),
            expected: "number",
        })
    }

    fn u64_of(&self, key: &str, v: &Value) -> Result<u64, ConfigError> {
        v.as_u64().ok_or_else(|| ConfigError::WrongType {
            path: self.child_path(key),
            expected: "non-negative integer",
        })
    }

    fn str_of<'v>(&self, key: &str, v: &'v Value) -> Result<&'v str, ConfigError> {
        match v {
            Value::Str(s) => Ok(s),
            _ => Err(ConfigError::WrongType {
                path: self.child_path(key),
                expected: "string",
            }),
        }
    }

    fn opt_f64(&mut self, key: &str) -> Result<Option<f64>, ConfigError> {
        match self.take(key)? {
            Some(v) => Ok(Some(self.f64_of(key, v)?)),
            None => Ok(None),
        }
    }

    fn opt_u64(&mut self, key: &str) -> Result<Option<u64>, ConfigError> {
        match self.take(key)? {
            Some(v) => Ok(Some(self.u64_of(key, v)?)),
            None => Ok(None),
        }
    }

    fn opt_usize(&mut self, key: &str) -> Result<Option<usize>, ConfigError> {
        Ok(self.opt_u64(key)?.map(|u| u as usize))
    }
}

// ---------------------------------------------------------------------------
// The document model.
// ---------------------------------------------------------------------------

/// Per-node traffic as a spec document writes it.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficSpec {
    /// Poisson arrivals at the given rate (the `rate_pps` shorthand).
    Poisson(f64),
    /// Constant bit rate arrivals.
    Cbr(f64),
    /// Two-state bursty arrivals.
    Bursty {
        /// Rate while quiet (packets/second).
        quiet_rate_pps: f64,
        /// Rate while bursting (packets/second).
        burst_rate_pps: f64,
        /// Mean quiet sojourn (seconds).
        mean_quiet_s: f64,
        /// Mean burst sojourn (seconds).
        mean_burst_s: f64,
    },
}

impl TrafficSpec {
    fn to_model(&self) -> TrafficModel {
        match *self {
            TrafficSpec::Poisson(rate_pps) => TrafficModel::Poisson { rate_pps },
            TrafficSpec::Cbr(rate_pps) => TrafficModel::Cbr { rate_pps },
            TrafficSpec::Bursty {
                quiet_rate_pps,
                burst_rate_pps,
                mean_quiet_s,
                mean_burst_s,
            } => TrafficModel::Bursty {
                quiet_rate_pps,
                burst_rate_pps,
                mean_quiet_s,
                mean_burst_s,
            },
        }
    }
}

/// The numeric overrides a scenario's `quick` block may carry — the values
/// that replace their full-mode counterparts when the grid resolves in
/// quick mode.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioQuick {
    /// Quick-mode churn mean time to failure (seconds).
    pub churn_mttf_s: Option<f64>,
    /// Quick-mode diurnal profile.
    pub diurnal: Option<(f64, f64)>,
    /// Quick-mode scenario duration (seconds).
    pub duration_s: Option<f64>,
    /// Quick-mode node count.
    pub node_count: Option<usize>,
}

impl ScenarioQuick {
    fn is_empty(&self) -> bool {
        *self == ScenarioQuick::default()
    }
}

/// One scenario of a [`GridSpec`]: a label plus overrides layered onto the
/// paper's Table II defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpecDoc {
    /// The scenario's label (report cell key; must be unique in the grid).
    pub label: String,
    /// Per-node traffic.
    pub traffic: TrafficSpec,
    /// Deployment topology (`None` = the paper's uniform deployment).
    pub topology: Option<Topology>,
    /// Diurnal traffic profile as `(period_s, relative_amplitude)`.
    pub diurnal: Option<(f64, f64)>,
    /// Per-node initial-energy spread fraction.
    pub energy_spread: Option<f64>,
    /// Random node-failure mean time to failure (seconds).
    pub churn_mttf_s: Option<f64>,
    /// Scenario-level node-count override.
    pub node_count: Option<usize>,
    /// Scenario-level duration override (seconds).
    pub duration_s: Option<f64>,
    /// Buffer capacity; `Some(None)` = explicitly unbounded (`null` in the
    /// document), `None` = the paper default.
    pub buffer_capacity: Option<Option<usize>>,
    /// Initial battery energy override (joules).
    pub initial_energy_j: Option<f64>,
    /// Quick-mode overrides.
    pub quick: ScenarioQuick,
}

/// Grid-level quick-mode overrides.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GridQuick {
    /// Quick-mode replicate count.
    pub replicates: Option<usize>,
    /// Quick-mode node count applied to every scenario.
    pub node_count: Option<usize>,
    /// Quick-mode duration applied to every scenario (seconds).
    pub duration_s: Option<f64>,
}

impl GridQuick {
    fn is_empty(&self) -> bool {
        *self == GridQuick::default()
    }
}

/// Distributed-run tuning as a spec document writes it: the shard-lease
/// TTL and worker heartbeat interval that used to be hard-coded constants
/// in the distribution layer.  Both optional; [`GridSpec::resolve`] fills
/// in the layer defaults ([`crate::distrib::DEFAULT_LEASE_TTL`],
/// [`crate::distrib::DEFAULT_HEARTBEAT`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistribSpec {
    /// Shard-lease TTL in seconds before an unrefreshed claim may be
    /// stolen (strictly positive).
    pub lease_ttl_s: Option<f64>,
    /// Socket-worker heartbeat interval in seconds (strictly positive).
    pub heartbeat_s: Option<f64>,
}

/// Resolved distributed-run tuning: [`DistribSpec`] with defaults applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistribTuning {
    /// Shard-lease TTL before an unrefreshed claim may be stolen.
    pub lease_ttl: std::time::Duration,
    /// Socket-worker heartbeat interval.
    pub heartbeat: std::time::Duration,
}

impl Default for DistribTuning {
    fn default() -> Self {
        DistribTuning {
            lease_ttl: crate::distrib::DEFAULT_LEASE_TTL,
            heartbeat: crate::distrib::DEFAULT_HEARTBEAT,
        }
    }
}

/// Sequential-stopping settings as a spec document writes them; resolved
/// into a [`SequentialStopping`] with the grid's replicate batch as the
/// default batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialSpec {
    /// The driving metric (a [`METRIC_NAMES`] entry).
    pub metric: String,
    /// Target worst-cell 95 % CI half-width.
    pub target_half_width: f64,
    /// Replicates appended per round (`None` = the grid's replicate count).
    pub batch: Option<usize>,
    /// Hard cap on replicates per cell.
    pub max_replicates: usize,
}

/// How a grid's seed axis is written: a replicate count (consecutive seeds
/// from the base seed) or an explicit seed list.  Giving both is a
/// [`ConfigError::ConflictingFields`].
#[derive(Debug, Clone, PartialEq)]
pub enum SeedAxis {
    /// `replicates`: consecutive seeds `base_seed .. base_seed + n`.
    Replicates(usize),
    /// `seeds`: the exact list.
    Explicit(Vec<u64>),
}

/// A fully declarative experiment grid: everything the `experiment` binary
/// used to hard-code, as one serializable document.
///
/// Parse with [`GridSpec::parse`] (strict, typed errors), resolve with
/// [`GridSpec::resolve`] (deterministic), re-serialize with
/// [`GridSpec::to_json`] (canonical; parse ∘ serialize is the identity).
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Human-readable grid name.
    pub name: Option<String>,
    /// Base seed (`None` = the caller's default, e.g. the bench harness
    /// seed).
    pub base_seed: Option<u64>,
    /// The seed axis.
    pub seeds: SeedAxis,
    /// Grid-wide scenario duration (seconds; `None` = Table II's 600 s).
    pub duration_s: Option<f64>,
    /// Grid-wide node count (`None` = Table II's 100).
    pub node_count: Option<usize>,
    /// The policy axis (`None` = the paper's three protocols).
    pub policies: Option<Vec<PolicyKind>>,
    /// The scenario axis.
    pub scenarios: Vec<ScenarioSpecDoc>,
    /// Optional sequential-stopping settings.
    pub sequential: Option<SequentialSpec>,
    /// Optional distributed-run tuning (lease TTL, heartbeat interval).
    pub distrib: Option<DistribSpec>,
    /// Grid-level quick-mode overrides.
    pub quick: GridQuick,
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

impl GridSpec {
    /// Parse a spec document from JSON text.  Strict: unknown fields, wrong
    /// types, out-of-range values and conflicting axes are all typed
    /// [`ConfigError`]s carrying the offending field's dotted path.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let value = serde_json::parse(text).map_err(|e| ConfigError::WrongType {
            path: format!("<document: {e}>"),
            expected: "JSON object",
        })?;
        Self::from_value(&value)
    }

    /// Parse a spec document from an already-parsed [`Value`] tree.
    pub fn from_value(value: &Value) -> Result<Self, ConfigError> {
        let mut doc = Fields::new("", value)?;
        let version_value = doc.required("caem_grid_spec")?;
        let version = doc.u64_of("caem_grid_spec", version_value)?;
        if version != SPEC_VERSION {
            return Err(ConfigError::UnsupportedVersion {
                path: "caem_grid_spec".to_string(),
                found: version,
                supported: SPEC_VERSION,
            });
        }
        let name = match doc.take("name")? {
            Some(v) => Some(doc.str_of("name", v)?.to_string()),
            None => None,
        };
        let base_seed = doc.opt_u64("base_seed")?;
        let replicates = doc.opt_usize("replicates")?;
        let explicit_seeds = match doc.take("seeds")? {
            Some(Value::Seq(items)) => {
                let mut seeds = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let seed = item.as_u64().ok_or_else(|| ConfigError::WrongType {
                        path: format!("seeds[{i}]"),
                        expected: "non-negative integer",
                    })?;
                    if seeds.contains(&seed) {
                        return Err(ConfigError::DuplicateEntry {
                            path: "seeds".to_string(),
                            value: seed.to_string(),
                        });
                    }
                    seeds.push(seed);
                }
                Some(seeds)
            }
            Some(_) => {
                return Err(ConfigError::WrongType {
                    path: "seeds".to_string(),
                    expected: "array of integers",
                })
            }
            None => None,
        };
        let seeds = match (replicates, explicit_seeds) {
            (Some(_), Some(_)) => {
                // Two definitions of the same axis cannot coexist.
                return Err(ConfigError::ConflictingFields {
                    path: "replicates".to_string(),
                    other: "seeds".to_string(),
                });
            }
            (Some(n), None) => {
                if n == 0 {
                    return Err(ConfigError::NonPositive {
                        path: "replicates".to_string(),
                        value: 0.0,
                    });
                }
                SeedAxis::Replicates(n)
            }
            (None, Some(list)) => {
                if list.is_empty() {
                    return Err(ConfigError::EmptyAxis {
                        path: "seeds".to_string(),
                    });
                }
                if base_seed.is_some() {
                    // An explicit list leaves nothing for a base seed to do;
                    // accepting both would invite silent disagreement.
                    return Err(ConfigError::ConflictingFields {
                        path: "base_seed".to_string(),
                        other: "seeds".to_string(),
                    });
                }
                SeedAxis::Explicit(list)
            }
            (None, None) => {
                return Err(ConfigError::MissingField {
                    path: "replicates".to_string(),
                })
            }
        };
        let duration_s = doc.opt_f64("duration_s")?;
        let node_count = doc.opt_usize("node_count")?;
        let policies = match doc.take("policies")? {
            Some(Value::Seq(items)) => {
                if items.is_empty() {
                    return Err(ConfigError::EmptyAxis {
                        path: "policies".to_string(),
                    });
                }
                let mut policies = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let path = format!("policies[{i}]");
                    let name = match item {
                        Value::Str(s) => s.as_str(),
                        _ => {
                            return Err(ConfigError::WrongType {
                                path,
                                expected: "string",
                            })
                        }
                    };
                    let policy =
                        policy_from_name(name).ok_or_else(|| ConfigError::UnknownVariant {
                            path,
                            value: name.to_string(),
                            expected: &POLICY_NAMES,
                        })?;
                    if policies.contains(&policy) {
                        return Err(ConfigError::DuplicateEntry {
                            path: "policies".to_string(),
                            value: format!("`{name}`"),
                        });
                    }
                    policies.push(policy);
                }
                Some(policies)
            }
            Some(_) => {
                return Err(ConfigError::WrongType {
                    path: "policies".to_string(),
                    expected: "array of policy names",
                })
            }
            None => None,
        };
        let quick = match doc.take("quick")? {
            Some(v) => parse_grid_quick(v)?,
            None => GridQuick::default(),
        };
        if matches!(seeds, SeedAxis::Explicit(_)) && quick.replicates.is_some() {
            // An explicit seed list is the whole axis in both modes; a quick
            // replicate count would be silently ignored.
            return Err(ConfigError::ConflictingFields {
                path: "quick.replicates".to_string(),
                other: "seeds".to_string(),
            });
        }
        let sequential = match doc.take("sequential")? {
            Some(v) => Some(parse_sequential(v)?),
            None => None,
        };
        let distrib = match doc.take("distrib")? {
            Some(v) => Some(parse_distrib(v)?),
            None => None,
        };
        let scenarios = match doc.required("scenarios")? {
            Value::Seq(items) => {
                if items.is_empty() {
                    return Err(ConfigError::EmptyAxis {
                        path: "scenarios".to_string(),
                    });
                }
                let mut scenarios: Vec<ScenarioSpecDoc> = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let scenario = parse_scenario(&format!("scenarios[{i}]"), item)?;
                    if scenarios.iter().any(|s| s.label == scenario.label) {
                        return Err(ConfigError::DuplicateEntry {
                            path: "scenarios".to_string(),
                            value: format!("label `{}`", scenario.label),
                        });
                    }
                    scenarios.push(scenario);
                }
                scenarios
            }
            _ => {
                return Err(ConfigError::WrongType {
                    path: "scenarios".to_string(),
                    expected: "array of scenario objects",
                })
            }
        };
        doc.finish()?;
        Ok(GridSpec {
            name,
            base_seed,
            seeds,
            duration_s,
            node_count,
            policies,
            scenarios,
            sequential,
            distrib,
            quick,
        })
    }
}

fn parse_grid_quick(value: &Value) -> Result<GridQuick, ConfigError> {
    let mut f = Fields::new("quick", value)?;
    let quick = GridQuick {
        replicates: f.opt_usize("replicates")?,
        node_count: f.opt_usize("node_count")?,
        duration_s: f.opt_f64("duration_s")?,
    };
    f.finish()?;
    Ok(quick)
}

fn parse_sequential(value: &Value) -> Result<SequentialSpec, ConfigError> {
    let mut f = Fields::new("sequential", value)?;
    let metric_value = f.required("metric")?;
    let metric = f.str_of("metric", metric_value)?.to_string();
    if !METRIC_NAMES.contains(&metric.as_str()) {
        return Err(ConfigError::UnknownVariant {
            path: "sequential.metric".to_string(),
            value: metric,
            expected: &METRIC_NAMES,
        });
    }
    let target_value = f.required("target_half_width")?;
    let target_half_width = f.f64_of("target_half_width", target_value)?;
    if target_half_width < 0.0 {
        return Err(ConfigError::Negative {
            path: "sequential.target_half_width".to_string(),
            value: target_half_width,
        });
    }
    let batch = f.opt_usize("batch")?;
    let max_value = f.required("max_replicates")?;
    let max_replicates = f.u64_of("max_replicates", max_value)? as usize;
    f.finish()?;
    Ok(SequentialSpec {
        metric,
        target_half_width,
        batch,
        max_replicates,
    })
}

fn parse_distrib(value: &Value) -> Result<DistribSpec, ConfigError> {
    let mut f = Fields::new("distrib", value)?;
    let lease_ttl_s = f.opt_f64("lease_ttl_s")?;
    if let Some(v) = lease_ttl_s {
        if v <= 0.0 {
            return Err(ConfigError::NonPositive {
                path: "distrib.lease_ttl_s".to_string(),
                value: v,
            });
        }
    }
    let heartbeat_s = f.opt_f64("heartbeat_s")?;
    if let Some(v) = heartbeat_s {
        if v <= 0.0 {
            return Err(ConfigError::NonPositive {
                path: "distrib.heartbeat_s".to_string(),
                value: v,
            });
        }
    }
    f.finish()?;
    Ok(DistribSpec {
        lease_ttl_s,
        heartbeat_s,
    })
}

fn parse_diurnal(path: &str, value: &Value) -> Result<(f64, f64), ConfigError> {
    let mut f = Fields::new(path, value)?;
    let period_value = f.required("period_s")?;
    let period_s = f.f64_of("period_s", period_value)?;
    let amplitude_value = f.required("relative_amplitude")?;
    let relative_amplitude = f.f64_of("relative_amplitude", amplitude_value)?;
    f.finish()?;
    Ok((period_s, relative_amplitude))
}

fn parse_topology(path: &str, value: &Value) -> Result<Topology, ConfigError> {
    const TOPOLOGY_NAMES: [&str; 4] = ["uniform", "grid", "gaussian_clusters", "corridor"];
    match value {
        Value::Str(s) if s == "uniform" => Ok(Topology::Uniform),
        Value::Str(s) => Err(ConfigError::UnknownVariant {
            path: path.to_string(),
            value: s.clone(),
            expected: &TOPOLOGY_NAMES,
        }),
        Value::Map(entries) if entries.len() == 1 => {
            let (kind, body) = &entries[0];
            let child = format!("{path}.{kind}");
            match kind.as_str() {
                "grid" => {
                    let mut f = Fields::new(&child, body)?;
                    let jitter_value = f.required("jitter_m")?;
                    let jitter_m = f.f64_of("jitter_m", jitter_value)?;
                    f.finish()?;
                    Ok(Topology::Grid { jitter_m })
                }
                "gaussian_clusters" => {
                    let mut f = Fields::new(&child, body)?;
                    let clusters_value = f.required("clusters")?;
                    let clusters = f.u64_of("clusters", clusters_value)? as usize;
                    let sigma_value = f.required("sigma_m")?;
                    let sigma_m = f.f64_of("sigma_m", sigma_value)?;
                    f.finish()?;
                    Ok(Topology::GaussianClusters { clusters, sigma_m })
                }
                "corridor" => {
                    let mut f = Fields::new(&child, body)?;
                    let width_value = f.required("width_fraction")?;
                    let width_fraction = f.f64_of("width_fraction", width_value)?;
                    f.finish()?;
                    Ok(Topology::Corridor { width_fraction })
                }
                other => Err(ConfigError::UnknownVariant {
                    path: path.to_string(),
                    value: other.to_string(),
                    expected: &TOPOLOGY_NAMES,
                }),
            }
        }
        _ => Err(ConfigError::WrongType {
            path: path.to_string(),
            expected: "topology name or single-key object",
        }),
    }
}

fn parse_traffic(f: &mut Fields<'_>) -> Result<TrafficSpec, ConfigError> {
    let rate = f.opt_f64("rate_pps")?;
    let traffic = match f.take("traffic")? {
        Some(value) => {
            if rate.is_some() {
                // The shorthand and the full model describe the same axis.
                return Err(ConfigError::ConflictingFields {
                    path: f.child_path("rate_pps"),
                    other: f.child_path("traffic"),
                });
            }
            let path = f.child_path("traffic");
            const TRAFFIC_NAMES: [&str; 3] = ["poisson", "cbr", "bursty"];
            match value {
                Value::Map(entries) if entries.len() == 1 => {
                    let (kind, body) = &entries[0];
                    let child = format!("{path}.{kind}");
                    match kind.as_str() {
                        "poisson" | "cbr" => {
                            let mut inner = Fields::new(&child, body)?;
                            let rate_value = inner.required("rate_pps")?;
                            let rate_pps = inner.f64_of("rate_pps", rate_value)?;
                            inner.finish()?;
                            if kind == "poisson" {
                                Some(TrafficSpec::Poisson(rate_pps))
                            } else {
                                Some(TrafficSpec::Cbr(rate_pps))
                            }
                        }
                        "bursty" => {
                            let mut inner = Fields::new(&child, body)?;
                            let quiet_value = inner.required("quiet_rate_pps")?;
                            let quiet_rate_pps = inner.f64_of("quiet_rate_pps", quiet_value)?;
                            let burst_value = inner.required("burst_rate_pps")?;
                            let burst_rate_pps = inner.f64_of("burst_rate_pps", burst_value)?;
                            let mq_value = inner.required("mean_quiet_s")?;
                            let mean_quiet_s = inner.f64_of("mean_quiet_s", mq_value)?;
                            let mb_value = inner.required("mean_burst_s")?;
                            let mean_burst_s = inner.f64_of("mean_burst_s", mb_value)?;
                            inner.finish()?;
                            Some(TrafficSpec::Bursty {
                                quiet_rate_pps,
                                burst_rate_pps,
                                mean_quiet_s,
                                mean_burst_s,
                            })
                        }
                        other => {
                            return Err(ConfigError::UnknownVariant {
                                path,
                                value: other.to_string(),
                                expected: &TRAFFIC_NAMES,
                            })
                        }
                    }
                }
                _ => {
                    return Err(ConfigError::WrongType {
                        path,
                        expected: "single-key object (poisson / cbr / bursty)",
                    })
                }
            }
        }
        None => rate.map(TrafficSpec::Poisson),
    };
    traffic.ok_or_else(|| ConfigError::MissingField {
        path: f.child_path("rate_pps"),
    })
}

fn parse_scenario_quick(path: &str, value: &Value) -> Result<ScenarioQuick, ConfigError> {
    let mut f = Fields::new(path, value)?;
    let diurnal = match f.take("diurnal")? {
        Some(v) => Some(parse_diurnal(&f.child_path("diurnal"), v)?),
        None => None,
    };
    let quick = ScenarioQuick {
        churn_mttf_s: f.opt_f64("churn_mttf_s")?,
        diurnal,
        duration_s: f.opt_f64("duration_s")?,
        node_count: f.opt_usize("node_count")?,
    };
    f.finish()?;
    Ok(quick)
}

fn parse_scenario(path: &str, value: &Value) -> Result<ScenarioSpecDoc, ConfigError> {
    let mut f = Fields::new(path, value)?;
    let label_value = f.required("label")?;
    let label = f.str_of("label", label_value)?.to_string();
    if label.is_empty() {
        return Err(ConfigError::EmptyAxis {
            path: f.child_path("label"),
        });
    }
    let traffic = parse_traffic(&mut f)?;
    let topology = match f.take("topology")? {
        Some(v) => Some(parse_topology(&f.child_path("topology"), v)?),
        None => None,
    };
    let diurnal = match f.take("diurnal")? {
        Some(v) => Some(parse_diurnal(&f.child_path("diurnal"), v)?),
        None => None,
    };
    let energy_spread = f.opt_f64("energy_spread")?;
    let churn_mttf_s = f.opt_f64("churn_mttf_s")?;
    let node_count = f.opt_usize("node_count")?;
    let duration_s = f.opt_f64("duration_s")?;
    let buffer_capacity = match f.take("buffer_capacity")? {
        Some(Value::Null) => Some(None), // explicitly unbounded
        Some(v) => Some(Some(f.u64_of("buffer_capacity", v)? as usize)),
        None => None,
    };
    let initial_energy_j = f.opt_f64("initial_energy_j")?;
    let quick = match f.take("quick")? {
        Some(v) => parse_scenario_quick(&f.child_path("quick"), v)?,
        None => ScenarioQuick::default(),
    };
    f.finish()?;
    Ok(ScenarioSpecDoc {
        label,
        traffic,
        topology,
        diurnal,
        energy_spread,
        churn_mttf_s,
        node_count,
        duration_s,
        buffer_capacity,
        initial_energy_j,
        quick,
    })
}

// ---------------------------------------------------------------------------
// Canonical re-serialization.
// ---------------------------------------------------------------------------

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn topology_to_value(topology: &Topology) -> Value {
    match *topology {
        Topology::Uniform => Value::Str("uniform".to_string()),
        Topology::Grid { jitter_m } => map(vec![(
            "grid",
            map(vec![("jitter_m", Value::Float(jitter_m))]),
        )]),
        Topology::GaussianClusters { clusters, sigma_m } => map(vec![(
            "gaussian_clusters",
            map(vec![
                ("clusters", Value::UInt(clusters as u64)),
                ("sigma_m", Value::Float(sigma_m)),
            ]),
        )]),
        Topology::Corridor { width_fraction } => map(vec![(
            "corridor",
            map(vec![("width_fraction", Value::Float(width_fraction))]),
        )]),
    }
}

fn diurnal_to_value((period_s, relative_amplitude): (f64, f64)) -> Value {
    map(vec![
        ("period_s", Value::Float(period_s)),
        ("relative_amplitude", Value::Float(relative_amplitude)),
    ])
}

impl GridSpec {
    /// Serialize the document canonically: fixed field order, no defaults
    /// materialised, so `parse(to_json(spec).to_string()) == spec` — the
    /// fixed-point property the round-trip tests pin down.
    pub fn to_json(&self) -> Value {
        let mut entries: Vec<(&str, Value)> = vec![("caem_grid_spec", Value::UInt(SPEC_VERSION))];
        if let Some(name) = &self.name {
            entries.push(("name", Value::Str(name.clone())));
        }
        if let Some(seed) = self.base_seed {
            entries.push(("base_seed", Value::UInt(seed)));
        }
        match &self.seeds {
            SeedAxis::Replicates(n) => entries.push(("replicates", Value::UInt(*n as u64))),
            SeedAxis::Explicit(seeds) => entries.push((
                "seeds",
                Value::Seq(seeds.iter().map(|&s| Value::UInt(s)).collect()),
            )),
        }
        if let Some(d) = self.duration_s {
            entries.push(("duration_s", Value::Float(d)));
        }
        if let Some(n) = self.node_count {
            entries.push(("node_count", Value::UInt(n as u64)));
        }
        if let Some(policies) = &self.policies {
            entries.push((
                "policies",
                Value::Seq(
                    policies
                        .iter()
                        .map(|&p| Value::Str(policy_name(p).to_string()))
                        .collect(),
                ),
            ));
        }
        if !self.quick.is_empty() {
            let mut q: Vec<(&str, Value)> = Vec::new();
            if let Some(r) = self.quick.replicates {
                q.push(("replicates", Value::UInt(r as u64)));
            }
            if let Some(n) = self.quick.node_count {
                q.push(("node_count", Value::UInt(n as u64)));
            }
            if let Some(d) = self.quick.duration_s {
                q.push(("duration_s", Value::Float(d)));
            }
            entries.push(("quick", map(q)));
        }
        if let Some(seq) = &self.sequential {
            let mut s: Vec<(&str, Value)> = vec![
                ("metric", Value::Str(seq.metric.clone())),
                ("target_half_width", Value::Float(seq.target_half_width)),
            ];
            if let Some(batch) = seq.batch {
                s.push(("batch", Value::UInt(batch as u64)));
            }
            s.push(("max_replicates", Value::UInt(seq.max_replicates as u64)));
            entries.push(("sequential", map(s)));
        }
        if let Some(d) = &self.distrib {
            let mut v: Vec<(&str, Value)> = Vec::new();
            if let Some(ttl) = d.lease_ttl_s {
                v.push(("lease_ttl_s", Value::Float(ttl)));
            }
            if let Some(hb) = d.heartbeat_s {
                v.push(("heartbeat_s", Value::Float(hb)));
            }
            entries.push(("distrib", map(v)));
        }
        entries.push((
            "scenarios",
            Value::Seq(self.scenarios.iter().map(scenario_to_value).collect()),
        ));
        map(entries)
    }
}

fn scenario_to_value(s: &ScenarioSpecDoc) -> Value {
    let mut entries: Vec<(&str, Value)> = vec![("label", Value::Str(s.label.clone()))];
    match &s.traffic {
        TrafficSpec::Poisson(rate) => entries.push(("rate_pps", Value::Float(*rate))),
        TrafficSpec::Cbr(rate) => entries.push((
            "traffic",
            map(vec![("cbr", map(vec![("rate_pps", Value::Float(*rate))]))]),
        )),
        TrafficSpec::Bursty {
            quiet_rate_pps,
            burst_rate_pps,
            mean_quiet_s,
            mean_burst_s,
        } => entries.push((
            "traffic",
            map(vec![(
                "bursty",
                map(vec![
                    ("quiet_rate_pps", Value::Float(*quiet_rate_pps)),
                    ("burst_rate_pps", Value::Float(*burst_rate_pps)),
                    ("mean_quiet_s", Value::Float(*mean_quiet_s)),
                    ("mean_burst_s", Value::Float(*mean_burst_s)),
                ]),
            )]),
        )),
    }
    if let Some(topology) = &s.topology {
        entries.push(("topology", topology_to_value(topology)));
    }
    if let Some(diurnal) = s.diurnal {
        entries.push(("diurnal", diurnal_to_value(diurnal)));
    }
    if let Some(spread) = s.energy_spread {
        entries.push(("energy_spread", Value::Float(spread)));
    }
    if let Some(mttf) = s.churn_mttf_s {
        entries.push(("churn_mttf_s", Value::Float(mttf)));
    }
    if let Some(n) = s.node_count {
        entries.push(("node_count", Value::UInt(n as u64)));
    }
    if let Some(d) = s.duration_s {
        entries.push(("duration_s", Value::Float(d)));
    }
    if let Some(capacity) = &s.buffer_capacity {
        entries.push((
            "buffer_capacity",
            match capacity {
                Some(c) => Value::UInt(*c as u64),
                None => Value::Null,
            },
        ));
    }
    if let Some(e) = s.initial_energy_j {
        entries.push(("initial_energy_j", Value::Float(e)));
    }
    if !s.quick.is_empty() {
        let mut q: Vec<(&str, Value)> = Vec::new();
        if let Some(mttf) = s.quick.churn_mttf_s {
            q.push(("churn_mttf_s", Value::Float(mttf)));
        }
        if let Some(diurnal) = s.quick.diurnal {
            q.push(("diurnal", diurnal_to_value(diurnal)));
        }
        if let Some(d) = s.quick.duration_s {
            q.push(("duration_s", Value::Float(d)));
        }
        if let Some(n) = s.quick.node_count {
            q.push(("node_count", Value::UInt(n as u64)));
        }
        entries.push(("quick", map(q)));
    }
    map(entries)
}

// ---------------------------------------------------------------------------
// Resolution.
// ---------------------------------------------------------------------------

/// What a [`GridSpec`] resolves to: the runnable [`ExperimentSpec`] plus the
/// sequential-stopping rule the document carried (if any).
#[derive(Debug, Clone)]
pub struct ResolvedGrid {
    /// The runnable grid.
    pub spec: ExperimentSpec,
    /// The document's sequential-stopping rule, batch defaulted to the
    /// grid's replicate count.
    pub sequential: Option<SequentialStopping>,
    /// Lease/heartbeat tuning for distributed runs, defaulted from
    /// [`crate::distrib::DEFAULT_LEASE_TTL`] / [`DEFAULT_HEARTBEAT`].
    ///
    /// [`DEFAULT_HEARTBEAT`]: crate::distrib::DEFAULT_HEARTBEAT
    pub distrib: DistribTuning,
}

impl GridSpec {
    /// Resolve the document into a runnable grid, **deterministically**:
    /// the same document, `default_seed` and `quick` flag always produce
    /// field-identical [`ScenarioConfig`]s (hence identical
    /// [`config_hash`]es, store records and reports).
    ///
    /// `default_seed` is used when the document pins no `base_seed`.
    /// Every resolved configuration is validated; a violation surfaces as
    /// the underlying typed error wrapped in
    /// [`ConfigError::InScenario`] with the scenario's label.
    pub fn resolve(&self, default_seed: u64, quick: bool) -> Result<ResolvedGrid, ConfigError> {
        let base_seed = self.base_seed.unwrap_or(default_seed);
        let seeds: Vec<u64> = match &self.seeds {
            SeedAxis::Replicates(n) => {
                let n = if quick {
                    self.quick.replicates.unwrap_or(*n)
                } else {
                    *n
                };
                (0..n as u64).map(|i| base_seed + i).collect()
            }
            SeedAxis::Explicit(seeds) => seeds.clone(),
        };
        let policies = self
            .policies
            .clone()
            .unwrap_or_else(|| PAPER_POLICIES.to_vec());
        let mut scenarios = Vec::with_capacity(self.scenarios.len());
        for doc in &self.scenarios {
            let config = self.resolve_scenario(doc, base_seed, quick)?;
            config.validate().map_err(|e| e.in_scenario(&doc.label))?;
            scenarios.push(ScenarioSpec::new(doc.label.clone(), config));
        }
        let sequential = self.sequential.as_ref().map(|seq| SequentialStopping {
            metric: seq.metric.clone(),
            target_half_width: seq.target_half_width,
            batch: seq.batch.unwrap_or(seeds.len()),
            max_replicates: seq.max_replicates,
        });
        if let Some(stop) = &sequential {
            stop.validate()?;
            if stop.max_replicates < seeds.len() {
                return Err(ConfigError::OutOfRange {
                    path: "sequential.max_replicates".to_string(),
                    value: stop.max_replicates as f64,
                    expected: "[initial replicate count, ∞)",
                });
            }
        }
        let distrib = DistribTuning {
            lease_ttl: self
                .distrib
                .as_ref()
                .and_then(|d| d.lease_ttl_s)
                .map(std::time::Duration::from_secs_f64)
                .unwrap_or(crate::distrib::DEFAULT_LEASE_TTL),
            heartbeat: self
                .distrib
                .as_ref()
                .and_then(|d| d.heartbeat_s)
                .map(std::time::Duration::from_secs_f64)
                .unwrap_or(crate::distrib::DEFAULT_HEARTBEAT),
        };
        Ok(ResolvedGrid {
            spec: ExperimentSpec {
                scenarios,
                policies,
                seeds,
            },
            sequential,
            distrib,
        })
    }

    /// Layer one scenario's overrides onto the paper defaults, mirroring
    /// exactly what the code-built zoo does (`paper_default` + builders), so
    /// a spec file and the equivalent Rust produce identical configs.
    fn resolve_scenario(
        &self,
        doc: &ScenarioSpecDoc,
        base_seed: u64,
        quick: bool,
    ) -> Result<ScenarioConfig, ConfigError> {
        let mut cfg = ScenarioConfig::paper_default(
            PolicyKind::PureLeach,
            doc.traffic.to_model().mean_rate_pps(),
            base_seed,
        );
        cfg.traffic = doc.traffic.to_model();
        // Grid-wide overrides first, then per-scenario, then quick blocks —
        // most specific wins.
        if let Some(n) = self.node_count {
            cfg.node_count = n;
        }
        if let Some(d) = self.duration_s {
            cfg.duration = Duration::from_secs_f64(d);
        }
        if quick {
            if let Some(n) = self.quick.node_count {
                cfg.node_count = n;
            }
            if let Some(d) = self.quick.duration_s {
                cfg.duration = Duration::from_secs_f64(d);
            }
        }
        if let Some(topology) = doc.topology {
            cfg.topology = topology;
        }
        let diurnal = if quick {
            doc.quick.diurnal.or(doc.diurnal)
        } else {
            doc.diurnal
        };
        if let Some((period_s, relative_amplitude)) = diurnal {
            cfg.traffic_profile = TrafficProfile::Diurnal {
                period_s,
                relative_amplitude,
            };
        }
        if let Some(spread) = doc.energy_spread {
            cfg.initial_energy_spread = spread;
        }
        let churn = if quick {
            doc.quick.churn_mttf_s.or(doc.churn_mttf_s)
        } else {
            doc.churn_mttf_s
        };
        if let Some(mttf) = churn {
            cfg = cfg.with_churn_mttf_s(mttf);
        }
        if let Some(n) = doc.node_count {
            cfg.node_count = n;
        }
        let duration = if quick {
            doc.quick.duration_s.or(doc.duration_s)
        } else {
            doc.duration_s
        };
        if let Some(d) = duration {
            cfg.duration = Duration::from_secs_f64(d);
        }
        if quick {
            if let Some(n) = doc.quick.node_count {
                cfg.node_count = n;
            }
        }
        if let Some(capacity) = doc.buffer_capacity {
            cfg.buffer_capacity = capacity;
        }
        if let Some(e) = doc.initial_energy_j {
            cfg.initial_energy_j = e;
        }
        Ok(cfg)
    }
}

// ---------------------------------------------------------------------------
// The canonical resolved form (what `--print-spec` dumps and a remote
// spawner would ship).
// ---------------------------------------------------------------------------

/// The canonical, fully resolved description of a grid: every scenario's
/// label, [`config_hash`] and complete [`ScenarioConfig`], plus the policy
/// and seed axes.  This is the ground truth the persistence layer's config
/// hashes and the distributed manifest are derived from, serialized — so
/// diffing two `--print-spec` dumps proves two grid definitions identical
/// without simulating anything.
#[derive(Debug, Clone)]
pub struct ResolvedSpec {
    /// Per-scenario `(label, config_hash, config)` in grid order.
    pub scenarios: Vec<(String, u64, ScenarioConfig)>,
    /// The policy axis.
    pub policies: Vec<PolicyKind>,
    /// The seed axis.
    pub seeds: Vec<u64>,
}

impl ResolvedSpec {
    /// The canonical resolved form of an experiment spec.
    pub fn of(spec: &ExperimentSpec) -> Self {
        ResolvedSpec {
            scenarios: spec
                .scenarios
                .iter()
                .map(|s| (s.label.clone(), config_hash(&s.base), s.base.clone()))
                .collect(),
            policies: spec.policies.clone(),
            seeds: spec.seeds.clone(),
        }
    }

    /// Serialize for `--print-spec`: scenario labels, per-scenario config
    /// hashes (hex), the full resolved configs, axes and job count.
    pub fn to_json(&self) -> Value {
        let scenarios: Vec<Value> = self
            .scenarios
            .iter()
            .map(|(label, hash, config)| {
                map(vec![
                    ("label", Value::Str(label.clone())),
                    ("config_hash", Value::Str(format!("{hash:016x}"))),
                    ("config", serde::Serialize::to_value(config)),
                ])
            })
            .collect();
        map(vec![
            (
                "policies",
                Value::Seq(
                    self.policies
                        .iter()
                        .map(|&p| Value::Str(policy_name(p).to_string()))
                        .collect(),
                ),
            ),
            (
                "seeds",
                Value::Seq(self.seeds.iter().map(|&s| Value::UInt(s)).collect()),
            ),
            (
                "job_count",
                Value::UInt((self.scenarios.len() * self.policies.len() * self.seeds.len()) as u64),
            ),
            ("scenarios", Value::Seq(scenarios)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{
        "caem_grid_spec": 1,
        "replicates": 2,
        "scenarios": [ { "label": "uniform_5pps", "rate_pps": 5.0 } ]
    }"#;

    #[test]
    fn minimal_spec_parses_and_resolves_to_paper_defaults() {
        let spec = GridSpec::parse(MINIMAL).expect("minimal spec parses");
        let resolved = spec.resolve(42, false).expect("resolves");
        assert_eq!(resolved.spec.seeds, vec![42, 43]);
        assert_eq!(resolved.spec.policies, PAPER_POLICIES.to_vec());
        assert_eq!(resolved.spec.scenarios.len(), 1);
        let cfg = &resolved.spec.scenarios[0].base;
        let paper = ScenarioConfig::paper_default(PolicyKind::PureLeach, 5.0, 42);
        assert_eq!(config_hash(cfg), config_hash(&paper));
    }

    #[test]
    fn unknown_field_is_rejected_with_its_path() {
        let text = r#"{
            "caem_grid_spec": 1,
            "replicates": 2,
            "scenarios": [ { "label": "a", "rate_pps": 5.0, "chrun_mttf_s": 100.0 } ]
        }"#;
        assert_eq!(
            GridSpec::parse(text),
            Err(ConfigError::UnknownField {
                path: "scenarios[0].chrun_mttf_s".to_string()
            })
        );
    }

    #[test]
    fn quick_replicates_conflict_with_an_explicit_seed_list() {
        let text = r#"{
            "caem_grid_spec": 1,
            "seeds": [1, 2, 3],
            "quick": { "replicates": 2 },
            "scenarios": [ { "label": "a", "rate_pps": 5.0 } ]
        }"#;
        assert_eq!(
            GridSpec::parse(text),
            Err(ConfigError::ConflictingFields {
                path: "quick.replicates".to_string(),
                other: "seeds".to_string()
            })
        );
    }

    #[test]
    fn conflicting_seed_axes_are_rejected() {
        let text = r#"{
            "caem_grid_spec": 1,
            "replicates": 2,
            "seeds": [1, 2],
            "scenarios": [ { "label": "a", "rate_pps": 5.0 } ]
        }"#;
        assert_eq!(
            GridSpec::parse(text),
            Err(ConfigError::ConflictingFields {
                path: "replicates".to_string(),
                other: "seeds".to_string()
            })
        );
    }

    #[test]
    fn out_of_range_resolved_value_carries_scenario_and_path() {
        let text = r#"{
            "caem_grid_spec": 1,
            "replicates": 1,
            "scenarios": [ { "label": "bad", "rate_pps": 5.0, "energy_spread": 1.5 } ]
        }"#;
        let spec = GridSpec::parse(text).expect("structurally fine");
        let err = spec.resolve(1, false).expect_err("spread out of range");
        assert_eq!(
            err,
            ConfigError::OutOfRange {
                path: "initial_energy_spread".to_string(),
                value: 1.5,
                expected: "[0, 1)",
            }
            .in_scenario("bad")
        );
    }

    #[test]
    fn quick_overrides_stack_most_specific_last() {
        let text = r#"{
            "caem_grid_spec": 1,
            "replicates": 10,
            "duration_s": 400.0,
            "quick": { "replicates": 5, "node_count": 30, "duration_s": 120.0 },
            "scenarios": [
                { "label": "churny", "rate_pps": 5.0, "churn_mttf_s": 4000.0,
                  "quick": { "churn_mttf_s": 1200.0 } }
            ]
        }"#;
        let spec = GridSpec::parse(text).unwrap();
        let full = spec.resolve(7, false).unwrap().spec;
        let quick = spec.resolve(7, true).unwrap().spec;
        assert_eq!(full.seeds.len(), 10);
        assert_eq!(quick.seeds.len(), 5);
        let f = &full.scenarios[0].base;
        let q = &quick.scenarios[0].base;
        assert_eq!(f.node_count, 100);
        assert_eq!(q.node_count, 30);
        assert_eq!(f.duration, Duration::from_secs(400));
        assert_eq!(q.duration, Duration::from_secs(120));
        assert_eq!(f.churn.unwrap().mean_time_to_failure_s, 4000.0);
        assert_eq!(q.churn.unwrap().mean_time_to_failure_s, 1200.0);
    }

    #[test]
    fn canonical_serialization_is_a_fixed_point() {
        let text = r#"{
            "caem_grid_spec": 1,
            "name": "demo",
            "base_seed": 99,
            "replicates": 3,
            "duration_s": 50.0,
            "quick": { "replicates": 2 },
            "sequential": { "metric": "delivery_rate", "target_half_width": 0.01,
                            "max_replicates": 12 },
            "scenarios": [
                { "label": "corridor", "rate_pps": 8.0,
                  "topology": { "corridor": { "width_fraction": 0.25 } },
                  "buffer_capacity": null },
                { "label": "bursty_grid",
                  "traffic": { "bursty": { "quiet_rate_pps": 2.0, "burst_rate_pps": 30.0,
                                           "mean_quiet_s": 9.0, "mean_burst_s": 1.0 } },
                  "topology": { "grid": { "jitter_m": 3.0 } },
                  "diurnal": { "period_s": 100.0, "relative_amplitude": 0.5 } }
            ]
        }"#;
        let spec = GridSpec::parse(text).unwrap();
        let reserialized = serde_json::to_string_pretty(&spec.to_json()).unwrap();
        let back = GridSpec::parse(&reserialized).unwrap();
        assert_eq!(back, spec);
        // And the resolved grids are hash-identical.
        let a = spec.resolve(1, false).unwrap().spec;
        let b = back.resolve(1, false).unwrap().spec;
        for (sa, sb) in a.scenarios.iter().zip(&b.scenarios) {
            assert_eq!(config_hash(&sa.base), config_hash(&sb.base));
        }
    }

    #[test]
    fn resolved_spec_json_carries_config_hashes() {
        let spec = GridSpec::parse(MINIMAL).unwrap();
        let resolved = spec.resolve(5, false).unwrap();
        let dump = ResolvedSpec::of(&resolved.spec).to_json();
        let scenarios = match dump.get("scenarios") {
            Some(Value::Seq(items)) => items,
            other => panic!("expected scenario list, got {other:?}"),
        };
        let hash = scenarios[0]
            .get("config_hash")
            .and_then(|v| match v {
                Value::Str(s) => Some(s.clone()),
                _ => None,
            })
            .expect("hash present");
        assert_eq!(
            hash,
            format!("{:016x}", config_hash(&resolved.spec.scenarios[0].base))
        );
    }
}
