//! Lock-free result plumbing: per-worker buffered sinks draining through a
//! channel collector that owns the store file.
//!
//! The old parallel record path funneled every completed job through a
//! `Mutex<&mut File>` — workers serialized **and** wrote under one lock, so
//! at high core counts the grid's tail is workers queueing on the sink
//! rather than simulating.  This module inverts the ownership:
//!
//! * every worker thread encodes its records into a **thread-local byte
//!   buffer** (serialization runs fully parallel, no shared state), which
//! * ships complete JSONL lines over a lock-free MPSC channel (`std`'s
//!   `mpsc` channel — a lock-free linked queue with `Sender: Sync`, so one
//!   handle is shared by reference across the fan-out), to
//! * a single **drainer thread** that owns the `&mut File` outright and
//!   writes batches through the same [`StoreIo`] seam, retry policy and
//!   fsync discipline as the serial path.
//!
//! Crash semantics are unchanged.  The drainer coalesces whatever lines are
//! already queued into one `write_all`, and a torn batch tears at a single
//! point exactly like a torn line: complete lines before the tear load
//! normally, the line at the tear is skipped by the loader, and nothing
//! after it exists.  Retries newline-terminate the file before rewriting
//! the whole batch, so a half-written fragment can never fuse with the
//! rewrite (duplicate whole lines are harmless — the store is
//! last-record-wins and aggregation is canonically ordered).
//!
//! Report identity is also unchanged: the collector only moves bytes.
//! Records still feed `ExperimentReport::from_records`, which sorts by the
//! canonical (scenario, policy, seed) key before folding, so fresh, resumed,
//! distributed, mutex-written and collector-written stores all aggregate to
//! bit-identical reports.
//!
//! ## Threading contract
//!
//! Buffered lines are flushed when the buffer crosses the sink's flush
//! threshold, when the owning thread exits (thread-local destructor), and
//! explicitly for the calling thread before the collector shuts down.  Every
//! thread that appends must therefore either exit before
//! [`ExperimentStore::with_parallel_sink`] returns (scoped fan-out workers
//! do) or *be* the calling thread — both hold for every call site in this
//! crate.
//!
//! [`StoreIo`]: crate::faults::StoreIo
//! [`ExperimentStore::with_parallel_sink`]: crate::persist::ExperimentStore::with_parallel_sink

use std::cell::RefCell;
use std::fs::File;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

use crate::faults::{RetryPolicy, StoreIo};
use crate::persist::{
    append_line_with_recovery, encode_failure_line, encode_line, JobFailure, JobRecord, StoreError,
};

/// Coalesce queued lines into writes of at most this many bytes: large
/// enough to amortize the syscall under saturation, small enough that a
/// torn batch loses little.
pub(crate) const GATHER_BYTES: usize = 64 * 1024;

/// Distinguishes collectors so a thread-local buffer left over from one
/// collector can never leak lines into the next.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static LOCAL: RefCell<LocalBuffer> = const { RefCell::new(LocalBuffer::new()) };
}

/// One thread's private line buffer plus its clone of the channel sender.
/// Dropped (and therefore flushed) when the thread exits.
struct LocalBuffer {
    generation: u64,
    bytes: Vec<u8>,
    tx: Option<Sender<Vec<u8>>>,
}

impl LocalBuffer {
    const fn new() -> Self {
        LocalBuffer {
            generation: 0,
            bytes: Vec::new(),
            tx: None,
        }
    }

    /// Ship the buffered lines to the drainer.  A send failure means the
    /// drainer already shut down on a fatal IO error; the error surfaces
    /// from the collector itself, so the lines are dropped silently here.
    fn flush(&mut self) {
        if !self.bytes.is_empty() {
            if let Some(tx) = &self.tx {
                let _ = tx.send(std::mem::take(&mut self.bytes));
            }
            self.bytes.clear();
        }
    }

    /// Flush and disconnect from the current collector entirely.
    fn detach(&mut self) {
        self.flush();
        self.tx = None;
        self.generation = 0;
    }
}

impl Drop for LocalBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

/// The worker-facing handle of the lock-free record collector: shared by
/// reference across a parallel fan-out, appends never block on other
/// workers.  Obtained through
/// [`ExperimentStore::with_parallel_sink`](crate::persist::ExperimentStore::with_parallel_sink).
pub struct CollectorSink {
    tx: Sender<Vec<u8>>,
    generation: u64,
    /// Worker-side buffer threshold in bytes; 0 ships every line as soon as
    /// it is encoded (the engine default — a finished job is on its way to
    /// disk immediately, minimizing the loss window on a crash).
    flush_bytes: usize,
}

impl CollectorSink {
    /// Stream one record to the drainer (never blocks on other workers).
    ///
    /// IO errors surface from the enclosing
    /// [`with_parallel_sink`](crate::persist::ExperimentStore::with_parallel_sink)
    /// call once the fan-out finishes.
    pub fn append(&self, record: &JobRecord) {
        let line = encode_line(record).expect("job records always serialize");
        self.push_line(&line);
    }

    /// Stream one quarantine record, same discipline as [`Self::append`].
    pub fn append_failure(&self, failure: &JobFailure) {
        let line = encode_failure_line(failure).expect("job failures always serialize");
        self.push_line(&line);
    }

    fn push_line(&self, line: &[u8]) {
        LOCAL.with(|slot| {
            let mut buf = slot.borrow_mut();
            if buf.generation != self.generation {
                // Leftovers from an earlier collector (already flushed when
                // it shut down, but be safe) must not travel on our channel.
                buf.detach();
                buf.generation = self.generation;
                buf.tx = Some(self.tx.clone());
            }
            buf.bytes.extend_from_slice(line);
            if buf.bytes.len() > self.flush_bytes {
                buf.flush();
            }
        });
    }

    /// Flush the calling thread's buffer and drop its channel handle.  The
    /// collector calls this for the spawning thread on shutdown (covering
    /// serial-inline fan-out fallbacks); worker threads flush via their
    /// thread-local destructors when they exit.
    pub fn flush_thread(&self) {
        LOCAL.with(|slot| {
            let mut buf = slot.borrow_mut();
            if buf.generation == self.generation {
                buf.detach();
            }
        });
    }
}

/// Run `f` with a live collector: spawns the drainer thread around the
/// store file, hands `f` the worker-facing sink, and joins the drainer
/// before returning.  Panics in `f` still shut the collector down cleanly
/// (buffered lines are written, the drainer is joined) and then resume.
pub(crate) fn run_collector<R>(
    io: Arc<dyn StoreIo>,
    retry: RetryPolicy,
    fsync: bool,
    flush_bytes: usize,
    file: &mut File,
    f: impl FnOnce(&CollectorSink) -> R,
) -> Result<R, StoreError> {
    let (tx, rx) = channel::<Vec<u8>>();
    let sink = CollectorSink {
        tx,
        generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
        flush_bytes,
    };
    let io: &dyn StoreIo = &*io;
    let retry_ref = &retry;
    std::thread::scope(|scope| {
        let drainer = scope.spawn(move || drain(rx, io, retry_ref, file, fsync));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&sink)));
        // Close the channel: flush + drop the calling thread's sender
        // clone, then the sink's own. Fan-out workers have already exited
        // (their thread-local destructors flushed their buffers), so the
        // drainer sees a disconnect once the queue is empty.
        sink.flush_thread();
        drop(sink);
        let outcome = drainer.join().expect("record collector drainer panicked");
        match result {
            Ok(value) => outcome.map(|()| value),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// Drainer loop: receive line batches, coalesce whatever else is already
/// queued (up to [`GATHER_BYTES`]), and write each gathered batch through
/// the store's IO seam with the usual retry/torn-write/fsync discipline.
/// A fatal IO error stops the loop immediately — dropping the receiver
/// turns every later send into a silent no-op — and is reported once from
/// the collector.
fn drain(
    rx: Receiver<Vec<u8>>,
    io: &dyn StoreIo,
    retry: &RetryPolicy,
    file: &mut File,
    fsync: bool,
) -> Result<(), StoreError> {
    let mut pending: Vec<u8> = Vec::with_capacity(GATHER_BYTES);
    while let Ok(first) = rx.recv() {
        pending.clear();
        pending.extend_from_slice(&first);
        while pending.len() < GATHER_BYTES {
            match rx.try_recv() {
                Ok(more) => pending.extend_from_slice(&more),
                Err(_) => break,
            }
        }
        // The drainer runs off the simulation threads, so its span goes
        // straight into the process-wide profile (atomic adds).
        let span = caem_metrics::prof::Span::start();
        append_line_with_recovery(io, retry, file, &pending, fsync)?;
        span.stop_global(caem_metrics::prof::ProfKey::Collector, 1);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::experiment::METRIC_NAMES;
    use crate::persist::{ExperimentStore, JobRecord};
    use caem::policy::PolicyKind;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("caem_collect_unit_{}_{name}", std::process::id()))
    }

    fn tiny_record(seed: u64) -> JobRecord {
        JobRecord {
            scenario_index: 0,
            scenario: "uniform".into(),
            policy_index: 1,
            policy: PolicyKind::Scheme1Adaptive,
            seed,
            config_hash: 0xfeed_beef,
            metrics: vec![Some(0.5); METRIC_NAMES.len()],
            generated: 10,
            delivered: 8,
            events_processed: 1_000,
            end_time_nanos: 5_000_000_000,
            delay_p50_ms: Some(12.5),
            delay_p95_ms: None,
            delay_p99_ms: None,
        }
    }

    #[test]
    fn collector_round_trips_records_from_many_threads() {
        let path = temp_path("roundtrip");
        std::fs::remove_file(&path).ok();
        let threads = 8usize;
        let per_thread = 50u64;
        {
            let mut store = ExperimentStore::open(&path).unwrap();
            store
                .with_parallel_sink(|sink| {
                    std::thread::scope(|scope| {
                        for t in 0..threads as u64 {
                            scope.spawn(move || {
                                for i in 0..per_thread {
                                    sink.append(&tiny_record(t * per_thread + i));
                                }
                            });
                        }
                    });
                })
                .unwrap();
        }
        let store = ExperimentStore::load(&path).unwrap();
        assert_eq!(store.len(), threads * per_thread as usize);
        assert_eq!(store.skipped_lines(), 0);
        let mut seeds: Vec<u64> = store.records().iter().map(|r| r.seed).collect();
        seeds.sort_unstable();
        assert_eq!(seeds, (0..threads as u64 * per_thread).collect::<Vec<_>>());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn buffered_collector_flushes_worker_exit_and_calling_thread() {
        let path = temp_path("buffered");
        std::fs::remove_file(&path).ok();
        {
            let mut store = ExperimentStore::open(&path).unwrap();
            // A huge threshold: nothing flushes until the worker threads
            // exit (thread-local destructor) and the calling thread is
            // flushed by the collector's shutdown.
            store
                .with_buffered_sink(1 << 20, |sink| {
                    std::thread::scope(|scope| {
                        for t in 0..4u64 {
                            scope.spawn(move || {
                                for i in 0..25 {
                                    sink.append(&tiny_record(100 + t * 25 + i));
                                }
                            });
                        }
                    });
                    // And some lines from the calling thread itself.
                    for seed in 0..10 {
                        sink.append(&tiny_record(seed));
                    }
                })
                .unwrap();
        }
        let store = ExperimentStore::load(&path).unwrap();
        assert_eq!(store.len(), 110);
        assert_eq!(store.skipped_lines(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn collector_survives_a_panicking_closure() {
        let path = temp_path("panic");
        std::fs::remove_file(&path).ok();
        {
            let mut store = ExperimentStore::open(&path).unwrap();
            let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = store.with_parallel_sink(|sink| {
                    sink.append(&tiny_record(7));
                    panic!("fan-out blew up");
                });
            }));
            assert!(unwound.is_err(), "the panic must propagate");
            // The store handle stays usable: the drainer was joined, the
            // file is not wedged behind a dead thread.
            store.append(tiny_record(8)).unwrap();
        }
        let store = ExperimentStore::load(&path).unwrap();
        assert_eq!(store.len(), 2, "pre-panic and post-panic records persist");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn collector_and_mutex_sink_write_equivalent_stores() {
        // The thread-fuzz equivalence check: the same records pushed
        // through the lock-free path and the mutex baseline from racing
        // threads load back as identical record sets after canonical sort.
        let seeds: Vec<u64> = (0..200).collect();
        let canonical = |mut records: Vec<JobRecord>| {
            records.sort_by_key(JobRecord::key);
            records
        };
        let lockfree_path = temp_path("fuzz_lockfree");
        let mutex_path = temp_path("fuzz_mutex");
        std::fs::remove_file(&lockfree_path).ok();
        std::fs::remove_file(&mutex_path).ok();
        {
            let mut store = ExperimentStore::open(&lockfree_path).unwrap();
            store
                .with_parallel_sink(|sink| {
                    std::thread::scope(|scope| {
                        for chunk in seeds.chunks(13) {
                            scope.spawn(move || {
                                for &seed in chunk {
                                    sink.append(&tiny_record(seed));
                                    if seed % 3 == 0 {
                                        std::thread::yield_now();
                                    }
                                }
                            });
                        }
                    });
                })
                .unwrap();
        }
        {
            let mut store = ExperimentStore::open(&mutex_path).unwrap();
            let sink = store.mutex_sink();
            std::thread::scope(|scope| {
                for chunk in seeds.chunks(13) {
                    let sink = &sink;
                    scope.spawn(move || {
                        for &seed in chunk {
                            sink.append(&tiny_record(seed)).unwrap();
                            if seed % 3 == 0 {
                                std::thread::yield_now();
                            }
                        }
                    });
                }
            });
        }
        let lockfree = canonical(
            ExperimentStore::load(&lockfree_path)
                .unwrap()
                .records()
                .to_vec(),
        );
        let mutex = canonical(
            ExperimentStore::load(&mutex_path)
                .unwrap()
                .records()
                .to_vec(),
        );
        assert_eq!(lockfree, mutex);
        assert_eq!(lockfree.len(), seeds.len());
        std::fs::remove_file(&lockfree_path).ok();
        std::fs::remove_file(&mutex_path).ok();
    }
}
