//! # caem-wsnsim
//!
//! The full cluster-based wireless-sensor-network simulator: LEACH rounds,
//! the CAEM tone-signalled MAC, the adaptive PHY, the time-varying channel
//! and the Table II energy model, all driven by one deterministic
//! discrete-event loop.
//!
//! This crate is what the figure binaries and the examples run.  The flow of
//! one simulation:
//!
//! 1. [`config::ScenarioConfig`] describes the scenario (node count, field,
//!    traffic load, protocol variant, seed, …) — `paper_default` reproduces
//!    Table II.
//! 2. [`runner::SimulationRun::new`] deploys the nodes, seeds every random
//!    stream and primes the event queue.
//! 3. [`runner::SimulationRun::run`] executes the event loop until the
//!    configured horizon (or until the whole network is dead) and returns a
//!    [`result::SimulationResult`] holding the Fig. 8–12 metric trackers.
//! 4. [`sweep`] runs protocol comparisons and traffic-load sweeps, and
//!    [`experiment`] generalises them: any (scenario × policy × seed) grid is
//!    enumerated into one flat job list, fanned out in a single parallel
//!    layer, and aggregated into mean ± 95 % CI summaries per cell.
//! 5. [`persist`] makes grids durable: completed jobs stream to a JSONL
//!    [`persist::ExperimentStore`], interrupted grids resume with
//!    [`experiment::ExperimentSpec::run_with_store`] (bit-identical reports),
//!    historical stores re-aggregate offline, and
//!    [`experiment::ExperimentSpec::run_sequential`] adds replicates per cell
//!    until a CI-half-width target is met.
//!
//! Scenario diversity beyond the paper's single uniform deployment lives in
//! [`config::Topology`] (grid / Gaussian hotspots / corridor layouts),
//! [`config::ScenarioConfig::initial_energy_spread`] (heterogeneous
//! batteries) and [`config::ChurnConfig`] (random node-failure injection).
//!
//! Grids can be defined **declaratively**: a [`spec::GridSpec`] document
//! (JSON, strict parsing with typed field-path [`config::ConfigError`]s)
//! fully describes scenarios, policies, seeds and sequential-stopping
//! settings, and resolves deterministically into an
//! [`experiment::ExperimentSpec`] — the committed `specs/zoo.json`
//! reproduces the `experiment` binary's code-defined zoo byte-for-byte.
//!
//! ## Simplifications (documented substitutions)
//!
//! * Tone pulses are not simulated individually; a monitoring sensor samples
//!   the head's advertised state and the link CSI every idle-pulse period and
//!   is charged the corresponding tone-radio duty-cycle energy.
//! * Cluster-head data-radio receive energy is charged for actual burst
//!   airtime (the LEACH-style per-bit accounting the paper follows), not for
//!   idle listening; the head's tone broadcasts are charged at their duty
//!   cycle for the whole round.
//! * Inter-cluster interference is absent by construction (the paper assumes
//!   distinct frequency bands per cluster).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collect;
pub mod config;
pub mod distrib;
pub mod events;
pub mod experiment;
pub mod faults;
pub mod node;
pub mod persist;
pub mod result;
pub mod runner;
pub mod serve;
pub mod spec;
pub mod sweep;
pub mod table;

pub use collect::CollectorSink;
pub use config::{
    ChurnConfig, ConfigError, ScenarioConfig, Topology, TrafficModel, TrafficProfile,
};
pub use distrib::{
    merge_grid_report, merge_outcome, request_shutdown, reset_shutdown, run_sequential_distributed,
    run_worker, shutdown_requested, DistribError, DistribOptions, GridManifest, ProcessSpawner,
    ShardLayout, ThreadSpawner, WorkerConfig, WorkerSpawner, WorkerTarget,
};
pub use experiment::{
    run_configs, ExperimentCell, ExperimentJob, ExperimentReport, ExperimentSpec, ScenarioSpec,
    SequentialOutcome, SequentialRound, SequentialStopping,
};
pub use faults::{
    classify_io_error, ErrorClass, FaultKind, FaultPlan, FaultPlanConfig, FaultRole, RetryPolicy,
    RunEvent,
};
pub use persist::{
    config_hash, ExperimentStore, JobFailure, JobRecord, MutexSink, StoreError, StoreOptions,
};
pub use result::{NodeSummary, SimulationResult};
pub use runner::SimulationRun;
pub use serve::{
    run_socket_worker, serve_connection, LoopbackSpawner, ServiceClient, ServiceConfig,
    ServiceState, SocketWorkerOptions, TcpLink, WorkerExit,
};
pub use spec::{DistribSpec, DistribTuning, GridSpec, ResolvedGrid, ResolvedSpec};
pub use sweep::{compare_policies, load_sweep, load_sweep_spec, LoadSweepPoint, PolicyComparison};
pub use table::NodeTable;
