//! The experiment service: a long-lived daemon that accepts grid-spec
//! submissions and multiplexes their shards across a fleet of workers
//! attached over a pluggable transport.
//!
//! The file-based runner in [`crate::distrib`] coordinates workers through
//! a shared shard directory; this module removes that requirement.  The
//! same shard/lease semantics are spoken over length-prefixed JSON frames
//! ([`proto`]): a worker handshakes (protocol version, optional pinned
//! manifest hash), claims a shard and receives its jobs inline, heartbeats
//! while running, streams record lines back in coalesced batches, and
//! reconciles completion by count so lost frames are detected and resent.
//! Reports are finalized daemon-side through the canonical
//! [`ExperimentReport::from_records`](crate::experiment::ExperimentReport::from_records)
//! pipeline, so a fetched report is **byte-identical** to a single-process
//! [`ExperimentSpec::run`](crate::experiment::ExperimentSpec::run) of the
//! same spec.
//!
//! Transports:
//!
//! | transport | worker attach | filesystem | used by |
//! |---|---|---|---|
//! | file ([`crate::distrib`]) | shard directory | shared | `--workers N` runs |
//! | TCP socket | `--connect ADDR` | none | `caem-serve` fleets |
//! | loopback ([`LoopbackSpawner`]) | in-memory channels | none | deterministic tests |
//!
//! The loopback transport carries the *same* frames as TCP but over
//! channels, and is the only place the chaos plan's frame faults (drop,
//! duplicate, delay, truncate) are injected — the protocol's recovery
//! machinery is exercised deterministically in-process, while CI exercises
//! the real sockets with a mid-grid `kill -9`.

pub mod client;
pub mod daemon;
pub mod proto;
pub mod transport;
pub mod worker;

pub use client::{ServiceClient, ServiceStatus, Submission};
pub use daemon::{serve_connection, ServiceConfig, ServiceState};
pub use proto::{GridProgress, Message, ProtoError, MAX_FRAME_BYTES, PROTOCOL_VERSION};
pub use transport::{loopback_pair, FrameLink, LoopbackLink, TcpLink};
pub use worker::{run_socket_worker, SocketWorkerOptions, WorkerExit};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::distrib::{DistribError, WorkerHandle, WorkerSpawner, WorkerTarget};

/// Spawn in-process socket workers wired to an in-process daemon over
/// loopback links — the service counterpart of
/// [`crate::distrib::ThreadSpawner`].  Each spawn starts a daemon
/// connection thread and a worker thread joined by a [`loopback_pair`];
/// no listener, no sockets, fully deterministic.
pub struct LoopbackSpawner {
    state: Arc<Mutex<ServiceState>>,
    stop: Arc<AtomicBool>,
}

impl LoopbackSpawner {
    /// A spawner attaching workers to the given daemon state.
    pub fn new(state: Arc<Mutex<ServiceState>>) -> Self {
        LoopbackSpawner {
            state,
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Open a client connection to the daemon (for submit/status/fetch).
    pub fn connect(&self) -> LoopbackLink {
        let (client, mut served) = loopback_pair();
        let state = self.state.clone();
        std::thread::spawn(move || serve_connection(&mut served, &state));
        client
    }

    /// The stop flag shared by every worker this spawner started.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    /// Ask every spawned worker to exit gracefully: finish or release the
    /// shard in hand, then hang up.
    pub fn stop_workers(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl WorkerSpawner for LoopbackSpawner {
    fn spawn(
        &self,
        target: &WorkerTarget,
        index: usize,
        _thread_budget: usize,
    ) -> Result<WorkerHandle, DistribError> {
        match target {
            WorkerTarget::Endpoint(_) => {}
            WorkerTarget::Dir(dir) => {
                return Err(DistribError::Format(format!(
                    "LoopbackSpawner serves endpoints, not shard directories \
                     (got {}); use ThreadSpawner for the file transport",
                    dir.display()
                )));
            }
        }
        let (worker_link, mut served) = loopback_pair();
        let state = self.state.clone();
        std::thread::spawn(move || serve_connection(&mut served, &state));
        let stop = self.stop.clone();
        let handle = std::thread::spawn(move || {
            let mut link = worker_link;
            let mut opts = SocketWorkerOptions::new(format!("loopback_{index:03}"));
            opts.stop = stop;
            match run_socket_worker(&mut link, &opts) {
                Ok(WorkerExit::Finished(outcome)) => Ok(outcome),
                Ok(WorkerExit::Rejected(reason)) => Err(DistribError::Format(format!(
                    "worker {index} rejected by daemon: {reason}"
                ))),
                Err(e) => Err(DistribError::Format(format!(
                    "worker {index} transport failure: {e}"
                ))),
            }
        });
        Ok(WorkerHandle::from_thread(handle))
    }
}
