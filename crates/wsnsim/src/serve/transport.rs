//! Frame transports: a buffered TCP link for real sockets and an
//! in-memory loopback link for deterministic tests.
//!
//! Both implement [`FrameLink`] — send/receive whole frames with an
//! optional receive timeout.  The TCP link reads incrementally into an
//! internal buffer (never `read_exact`), so a timeout that fires mid-frame
//! keeps the partial bytes and stays byte-synchronized; EOF inside a frame
//! is a typed [`ProtoError::Torn`].  The loopback link carries discrete
//! frames over channels and is the only place frame faults are injected
//! (see [`crate::faults::FaultPlan`]): dropping, duplicating, delaying or
//! truncating frames there exercises the protocol's recovery paths without
//! desynchronizing a real byte stream.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::time::Duration;

use crate::faults::{self, FrameFault, RunEvent};

use super::proto::{encode_frame, ProtoError, MAX_FRAME_BYTES};

/// A bidirectional frame pipe.  `recv` returns `Ok(None)` on timeout and
/// [`ProtoError::Closed`] once the peer has hung up at a frame boundary.
pub trait FrameLink: Send {
    /// Send one frame payload.
    fn send(&mut self, payload: &[u8]) -> Result<(), ProtoError>;
    /// Receive the next frame payload, waiting at most `timeout`
    /// (indefinitely when `None`).
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Vec<u8>>, ProtoError>;
}

/// [`FrameLink`] over a TCP stream with an internal reassembly buffer.
pub struct TcpLink {
    stream: TcpStream,
    buffer: Vec<u8>,
    eof: bool,
}

impl TcpLink {
    /// Wrap a connected stream.
    pub fn new(stream: TcpStream) -> Self {
        TcpLink {
            stream,
            buffer: Vec::new(),
            eof: false,
        }
    }

    /// Try to pop one complete frame off the reassembly buffer.
    fn try_extract(&mut self) -> Result<Option<Vec<u8>>, ProtoError> {
        if self.buffer.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([
            self.buffer[0],
            self.buffer[1],
            self.buffer[2],
            self.buffer[3],
        ]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(ProtoError::Oversize { len });
        }
        if self.buffer.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buffer[4..4 + len].to_vec();
        self.buffer.drain(..4 + len);
        Ok(Some(payload))
    }
}

impl FrameLink for TcpLink {
    fn send(&mut self, payload: &[u8]) -> Result<(), ProtoError> {
        let frame = encode_frame(payload);
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        Ok(())
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Vec<u8>>, ProtoError> {
        loop {
            if let Some(frame) = self.try_extract()? {
                return Ok(Some(frame));
            }
            if self.eof {
                if self.buffer.is_empty() {
                    return Err(ProtoError::Closed);
                }
                return Err(ProtoError::Torn {
                    expected: 4,
                    got: self.buffer.len(),
                });
            }
            self.stream.set_read_timeout(timeout)?;
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buffer.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(ProtoError::Io(e)),
            }
        }
    }
}

/// In-memory [`FrameLink`]: crossed channels of discrete frames.  The send
/// side consults the installed [`faults::FaultPlan`] and may drop,
/// duplicate, delay or truncate the frame, noting
/// [`RunEvent::FaultInjected`] each time — the deterministic stand-in for a
/// lossy network.
pub struct LoopbackLink {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl LoopbackLink {
    fn apply_fault(&self, payload: &[u8]) -> Result<(), ProtoError> {
        match faults::active_plan().and_then(|plan| plan.frame_fault()) {
            None => self
                .tx
                .send(payload.to_vec())
                .map_err(|_| ProtoError::Closed),
            Some(FrameFault::Drop) => {
                faults::note_event(RunEvent::FaultInjected);
                Ok(())
            }
            Some(FrameFault::Duplicate) => {
                faults::note_event(RunEvent::FaultInjected);
                self.tx
                    .send(payload.to_vec())
                    .map_err(|_| ProtoError::Closed)?;
                self.tx
                    .send(payload.to_vec())
                    .map_err(|_| ProtoError::Closed)
            }
            Some(FrameFault::Delay(d)) => {
                faults::note_event(RunEvent::FaultInjected);
                std::thread::sleep(d);
                self.tx
                    .send(payload.to_vec())
                    .map_err(|_| ProtoError::Closed)
            }
            Some(FrameFault::Truncate) => {
                faults::note_event(RunEvent::FaultInjected);
                self.tx
                    .send(payload[..payload.len() / 2].to_vec())
                    .map_err(|_| ProtoError::Closed)
            }
        }
    }
}

impl FrameLink for LoopbackLink {
    fn send(&mut self, payload: &[u8]) -> Result<(), ProtoError> {
        self.apply_fault(payload)
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Vec<u8>>, ProtoError> {
        match timeout {
            Some(t) => match self.rx.recv_timeout(t) {
                Ok(frame) => Ok(Some(frame)),
                Err(RecvTimeoutError::Timeout) => Ok(None),
                Err(RecvTimeoutError::Disconnected) => Err(ProtoError::Closed),
            },
            None => self.rx.recv().map(Some).map_err(|_| ProtoError::Closed),
        }
    }
}

impl LoopbackLink {
    /// Drain without blocking (used by tests).
    pub fn try_recv(&mut self) -> Result<Option<Vec<u8>>, ProtoError> {
        match self.rx.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(ProtoError::Closed),
        }
    }
}

/// Build a connected pair of loopback links (client end, server end).
pub fn loopback_pair() -> (LoopbackLink, LoopbackLink) {
    let (a_tx, a_rx) = mpsc::channel();
    let (b_tx, b_rx) = mpsc::channel();
    (
        LoopbackLink { tx: a_tx, rx: b_rx },
        LoopbackLink { tx: b_tx, rx: a_rx },
    )
}

/// How long a requester waits for its response before retransmitting.
const REQUEST_TIMEOUT: Duration = Duration::from_millis(400);

/// Retransmissions before a request is declared unanswerable.
const REQUEST_ATTEMPTS: usize = 25;

/// Send a request and wait for the response echoing its sequence number.
///
/// This is the sender half of the protocol's at-most-once discipline: on
/// timeout the *same* frame (same `seq`) is retransmitted — the receiver's
/// response cache makes re-execution impossible — and responses carrying a
/// stale sequence number or an undecodable payload are discarded while the
/// wait continues.  Every retransmission and discarded frame is noted as
/// [`RunEvent::FrameRetried`].
pub(crate) fn request(
    link: &mut dyn FrameLink,
    msg: &super::proto::Message,
    what: &'static str,
) -> Result<super::proto::Message, ProtoError> {
    use super::proto::Message;
    use std::time::Instant;
    let bytes = msg.encode();
    let seq = msg.seq();
    for attempt in 0..REQUEST_ATTEMPTS {
        if attempt > 0 {
            faults::note_event(RunEvent::FrameRetried);
        }
        link.send(&bytes)?;
        let deadline = Instant::now() + REQUEST_TIMEOUT;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match link.recv(Some(left))? {
                None => break,
                Some(frame) => match Message::decode(&frame) {
                    Ok(response) if response.seq() == seq => return Ok(response),
                    Ok(_) | Err(_) => {
                        faults::note_event(RunEvent::FrameRetried);
                    }
                },
            }
        }
    }
    Err(ProtoError::NoResponse(what))
}
