//! The experiment-service daemon: grid queueing, shard leasing over the
//! wire, record absorption and canonical report finalization.
//!
//! The daemon is transport-agnostic — one [`serve_connection`] loop per
//! connected peer (worker or client), all sharing a [`ServiceState`]
//! behind a mutex.  Shard leasing mirrors the lock-file protocol of
//! [`crate::distrib`]: a granted shard is leased to one connection,
//! heartbeats refresh the lease, a lease whose heartbeat is older than the
//! TTL is evicted at the next claim (noting
//! [`RunEvent::WorkerEvicted`] and [`RunEvent::LeaseStolen`]), and a
//! connection that drops releases its leases immediately (noting
//! [`RunEvent::WorkerAbnormalExit`]).  Completed grids are finalized
//! through the exact pipeline of
//! [`crate::distrib` `run_distributed`](crate::experiment::ExperimentSpec::run_distributed)
//! — [`merge_outcome`] then [`ExperimentReport::from_records`] — and the
//! report is rendered to text once, daemon-side, so every client fetches
//! byte-identical output.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::distrib::{
    merge_outcome, GridManifest, ManifestJob, DEFAULT_HEARTBEAT, DEFAULT_LEASE_TTL,
};
use crate::experiment::ExperimentReport;
use crate::faults::{self, RunEvent};
use crate::persist::{decode_line, DecodedLine, JobFailure, JobKey, JobRecord};
use crate::spec::GridSpec;

use super::proto::{GridProgress, Message, PROTOCOL_VERSION};
use super::transport::FrameLink;

/// How long a connection loop waits for a frame before re-checking state.
const RECV_TICK: Duration = Duration::from_millis(200);

/// Suggested claim-retry delay when the daemon has nothing to grant.
const NO_WORK_RETRY_MS: u64 = 100;

/// Daemon-wide tuning.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Shards a submitted grid is split into (clamped to its job count).
    pub shards_per_grid: usize,
    /// Operator override for the shard-lease TTL.  `None` defers to each
    /// spec's `distrib` block (and then to
    /// [`DEFAULT_LEASE_TTL`]).
    pub lease_ttl: Option<Duration>,
    /// Operator override for the worker heartbeat interval, with the same
    /// precedence as `lease_ttl`.
    pub heartbeat: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards_per_grid: 8,
            lease_ttl: None,
            heartbeat: None,
        }
    }
}

/// A lease on one shard of the active grid.
struct Lease {
    conn: u64,
    last_beat: Instant,
}

/// A completed grid retained for `fetch`.
struct CompletedGrid {
    report: String,
}

/// A submitted grid: its manifest, absorbed results and lease table.
/// The queue's front entry is the one being worked.
struct ActiveGrid {
    name: String,
    manifest: GridManifest,
    /// Every job key of the manifest (membership filter for absorbed lines).
    job_keys: HashSet<JobKey>,
    records: Vec<JobRecord>,
    failures: Vec<JobFailure>,
    /// Keys with a decoded success or quarantine line.
    settled: HashSet<JobKey>,
    quarantined: u64,
    shard_done: Vec<bool>,
    leases: HashMap<usize, Lease>,
    /// Decoded-line count per (connection, shard) — the receiver side of
    /// the [`Message::ShardDone`] reconciliation.
    received: HashMap<(u64, usize), u64>,
    lease_ttl: Duration,
    heartbeat: Duration,
}

impl ActiveGrid {
    fn progress(&self) -> GridProgress {
        GridProgress {
            name: self.name.clone(),
            jobs: self.manifest.jobs.len() as u64,
            settled: self.settled.len() as u64,
            quarantined: self.quarantined,
            shards_done: self.shard_done.iter().filter(|d| **d).count() as u64,
            shard_count: self.manifest.shard_count as u64,
        }
    }
}

/// Shared state of one daemon process.
pub struct ServiceState {
    cfg: ServiceConfig,
    queue: VecDeque<ActiveGrid>,
    completed: Vec<CompletedGrid>,
    next_conn: u64,
    workers: HashMap<u64, String>,
}

/// What a handled message asks the connection loop to do.
enum Reply {
    /// Fire-and-forget message: nothing to send.
    None,
    /// Send the response and keep serving.
    Send(Message),
    /// Send the response, then hang up (handshake rejections).
    Close(Message),
}

impl ServiceState {
    /// Fresh state under the given tuning.
    pub fn new(cfg: ServiceConfig) -> Self {
        ServiceState {
            cfg,
            queue: VecDeque::new(),
            completed: Vec::new(),
            next_conn: 0,
            workers: HashMap::new(),
        }
    }

    /// Fresh state wrapped for sharing across connection threads.
    pub fn shared(cfg: ServiceConfig) -> Arc<Mutex<ServiceState>> {
        Arc::new(Mutex::new(ServiceState::new(cfg)))
    }

    /// Grids finished so far (tests and the daemon's idle logging).
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Grids submitted and not yet finished.
    pub fn pending_count(&self) -> usize {
        self.queue.len()
    }

    fn allocate_conn(&mut self) -> u64 {
        self.next_conn += 1;
        self.next_conn
    }

    /// The lease tuning a fresh worker should run with: the active grid's
    /// if one exists, otherwise the daemon defaults.
    fn tuning(&self) -> (Duration, Duration) {
        match self.queue.front() {
            Some(grid) => (grid.heartbeat, grid.lease_ttl),
            None => (
                self.cfg.heartbeat.unwrap_or(DEFAULT_HEARTBEAT),
                self.cfg.lease_ttl.unwrap_or(DEFAULT_LEASE_TTL),
            ),
        }
    }

    fn handle(&mut self, conn: u64, msg: Message) -> Reply {
        match msg {
            Message::Hello {
                seq,
                protocol,
                worker,
                threads: _,
                expect_hash,
            } => {
                if protocol != PROTOCOL_VERSION {
                    return Reply::Close(Message::Reject {
                        seq,
                        reason: format!(
                            "protocol version {protocol} not supported (daemon speaks {PROTOCOL_VERSION})"
                        ),
                    });
                }
                if let Some(hash) = expect_hash {
                    let active = self.queue.front().map(|g| g.manifest.grid_hash);
                    match active {
                        Some(actual) if actual == hash => {}
                        Some(actual) => {
                            return Reply::Close(Message::Reject {
                                seq,
                                reason: format!(
                                    "manifest hash mismatch: active grid is {actual:016x}, worker pinned {hash:016x}"
                                ),
                            });
                        }
                        None => {
                            return Reply::Close(Message::Reject {
                                seq,
                                reason: "no active grid to pin a manifest hash against".to_string(),
                            });
                        }
                    }
                }
                self.workers.insert(conn, worker);
                let (heartbeat, lease_ttl) = self.tuning();
                Reply::Send(Message::HelloAck {
                    seq,
                    heartbeat_ms: heartbeat.as_millis() as u64,
                    lease_ttl_ms: lease_ttl.as_millis() as u64,
                })
            }
            Message::Claim { seq } => Reply::Send(self.claim(conn, seq)),
            Message::Records { grid, shard, lines } => {
                self.absorb(conn, grid, shard as usize, lines);
                Reply::None
            }
            Message::Heartbeat { grid, shard } => {
                if let Some(active) = self.queue.front_mut() {
                    if active.manifest.grid_hash == grid {
                        if let Some(lease) = active.leases.get_mut(&(shard as usize)) {
                            if lease.conn == conn {
                                lease.last_beat = Instant::now();
                            }
                        }
                    }
                }
                Reply::None
            }
            Message::ShardDone {
                seq,
                grid,
                shard,
                sent,
            } => Reply::Send(self.shard_done(conn, seq, grid, shard as usize, sent)),
            Message::Release { seq, grid, shard } => {
                if let Some(active) = self.queue.front_mut() {
                    if active.manifest.grid_hash == grid {
                        let shard = shard as usize;
                        if active.leases.get(&shard).is_some_and(|l| l.conn == conn) {
                            active.leases.remove(&shard);
                        }
                    }
                }
                Reply::Send(Message::ReleaseAck { seq })
            }
            Message::Submit {
                seq,
                spec,
                quick,
                seed,
            } => Reply::Send(self.submit(seq, &spec, quick, seed)),
            Message::Status { seq } => Reply::Send(Message::StatusReply {
                seq,
                queued: (self.queue.len() as u64).saturating_sub(1),
                active: self.queue.front().map(ActiveGrid::progress),
                completed: self.completed.len() as u64,
                workers: self.workers.len() as u64,
                events: faults::event_summary(),
            }),
            Message::Fetch { seq } => {
                let report = self.completed.last();
                Reply::Send(Message::FetchReply {
                    seq,
                    ready: report.is_some(),
                    report: report.map(|c| c.report.clone()).unwrap_or_default(),
                })
            }
            // Responses have no business arriving at the daemon; a stray
            // one (reordered loopback frame) is dropped.
            _ => Reply::None,
        }
    }

    fn submit(&mut self, seq: u64, spec_text: &str, quick: bool, seed: u64) -> Message {
        let parsed = match GridSpec::parse(spec_text) {
            Ok(p) => p,
            Err(e) => {
                return Message::SubmitErr {
                    seq,
                    reason: e.to_string(),
                }
            }
        };
        let resolved = match parsed.resolve(seed, quick) {
            Ok(r) => r,
            Err(e) => {
                return Message::SubmitErr {
                    seq,
                    reason: e.to_string(),
                }
            }
        };
        if resolved.sequential.is_some() {
            return Message::SubmitErr {
                seq,
                reason: "sequential stopping is not supported by the service; run the spec locally"
                    .to_string(),
            };
        }
        let job_count = resolved.spec.job_count();
        let shards = self.cfg.shards_per_grid.clamp(1, job_count.max(1));
        let manifest = GridManifest::from_spec(&resolved.spec, shards);
        let name = parsed.name.clone().unwrap_or_else(|| "grid".to_string());
        let grid_hash = manifest.grid_hash;
        let job_keys = manifest.jobs.iter().map(ManifestJob::key).collect();
        let shard_count = manifest.shard_count;
        self.queue.push_back(ActiveGrid {
            name: name.clone(),
            manifest,
            job_keys,
            records: Vec::new(),
            failures: Vec::new(),
            settled: HashSet::new(),
            quarantined: 0,
            shard_done: vec![false; shard_count],
            leases: HashMap::new(),
            received: HashMap::new(),
            lease_ttl: self.cfg.lease_ttl.unwrap_or(resolved.distrib.lease_ttl),
            heartbeat: self.cfg.heartbeat.unwrap_or(resolved.distrib.heartbeat),
        });
        Message::SubmitAck {
            seq,
            grid: grid_hash,
            name,
            jobs: job_count as u64,
        }
    }

    fn claim(&mut self, conn: u64, seq: u64) -> Message {
        loop {
            let Some(grid) = self.queue.front_mut() else {
                return Message::NoWork {
                    seq,
                    retry_ms: NO_WORK_RETRY_MS,
                };
            };
            // Evict leases whose worker has gone silent past the TTL so a
            // hung (but still connected) worker can't wedge the grid.
            let ttl = grid.lease_ttl;
            let stale: Vec<usize> = grid
                .leases
                .iter()
                .filter(|(_, lease)| lease.last_beat.elapsed() > ttl)
                .map(|(shard, _)| *shard)
                .collect();
            for shard in stale {
                grid.leases.remove(&shard);
                faults::note_event(RunEvent::WorkerEvicted);
                faults::note_event(RunEvent::LeaseStolen);
            }
            for shard in 0..grid.manifest.shard_count {
                if grid.shard_done[shard] || grid.leases.contains_key(&shard) {
                    continue;
                }
                let pending: Vec<ManifestJob> = grid
                    .manifest
                    .shard_jobs(shard)
                    .into_iter()
                    .filter(|job| !grid.settled.contains(&job.key()))
                    .cloned()
                    .collect();
                if pending.is_empty() {
                    // Every job already settled (a dead worker streamed its
                    // lines before dropping): nothing left to re-run.
                    grid.shard_done[shard] = true;
                    continue;
                }
                grid.leases.insert(
                    shard,
                    Lease {
                        conn,
                        last_beat: Instant::now(),
                    },
                );
                return Message::Grant {
                    seq,
                    grid: grid.manifest.grid_hash,
                    shard: shard as u64,
                    jobs: pending,
                };
            }
            if grid.shard_done.iter().all(|done| *done) {
                // The auto-marking above may have completed the grid; try
                // to finalize and claim from the next one.
                self.try_finish_active();
                continue;
            }
            return Message::NoWork {
                seq,
                retry_ms: NO_WORK_RETRY_MS,
            };
        }
    }

    fn absorb(&mut self, conn: u64, grid_hash: u64, shard: usize, lines: Vec<String>) {
        let Some(grid) = self.queue.front_mut() else {
            return;
        };
        if grid.manifest.grid_hash != grid_hash {
            faults::note_event(RunEvent::ForeignRecordIgnored);
            return;
        }
        // A streaming worker is alive by definition.
        if let Some(lease) = grid.leases.get_mut(&shard) {
            if lease.conn == conn {
                lease.last_beat = Instant::now();
            }
        }
        let count = grid.received.entry((conn, shard)).or_insert(0);
        for line in lines {
            match decode_line(&line) {
                Ok(DecodedLine::Record(record)) => {
                    *count += 1;
                    let key = record.key();
                    if grid.job_keys.contains(&key) {
                        if grid.settled.insert(key) {
                            grid.records.push(record);
                        }
                    } else {
                        faults::note_event(RunEvent::ForeignRecordIgnored);
                    }
                }
                Ok(DecodedLine::Failure(failure)) => {
                    *count += 1;
                    let key = failure.key();
                    if grid.job_keys.contains(&key) {
                        if grid.settled.insert(key) {
                            grid.quarantined += 1;
                            grid.failures.push(failure);
                        }
                    } else {
                        faults::note_event(RunEvent::ForeignRecordIgnored);
                    }
                }
                Err(_) => faults::note_event(RunEvent::TornLineSkipped),
            }
        }
    }

    fn shard_done(
        &mut self,
        conn: u64,
        seq: u64,
        grid_hash: u64,
        shard: usize,
        sent: u64,
    ) -> Message {
        let Some(grid) = self.queue.front_mut() else {
            // The grid already finalized (a duplicated late frame).
            return Message::DoneAck { seq };
        };
        if grid.manifest.grid_hash != grid_hash {
            return Message::DoneAck { seq };
        }
        let received = grid.received.get(&(conn, shard)).copied().unwrap_or(0);
        if received < sent {
            // Records frames were lost in flight: ask the worker to resend
            // its retained lines before the shard can complete.
            faults::note_event(RunEvent::FrameRetried);
            return Message::DoneNack { seq, received };
        }
        if shard < grid.shard_done.len() {
            grid.shard_done[shard] = true;
        }
        grid.leases.remove(&shard);
        if grid.shard_done.iter().all(|done| *done) {
            self.try_finish_active();
        }
        Message::DoneAck { seq }
    }

    /// Finalize the front grid if every job is settled; otherwise reopen
    /// the shards still holding unsettled jobs so they get re-granted.
    fn try_finish_active(&mut self) {
        let Some(grid) = self.queue.front_mut() else {
            return;
        };
        let open_shards: HashSet<usize> = grid
            .manifest
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, job)| !grid.settled.contains(&job.key()))
            .map(|(index, _)| index % grid.manifest.shard_count)
            .collect();
        if !open_shards.is_empty() {
            for shard in open_shards {
                grid.shard_done[shard] = false;
            }
            return;
        }
        let grid = self.queue.pop_front().expect("front grid exists");
        // The exact finalization of `run_distributed`, so a fetched report
        // is byte-identical to a single-process run of the same spec.
        let outcome = merge_outcome(&grid.manifest, grid.records, grid.failures);
        let mut report = ExperimentReport::from_records(outcome.records);
        report.seeds = grid.manifest.seeds.clone();
        report.failures = outcome.failures;
        let text =
            serde_json::to_string_pretty(&report.to_json()).expect("report JSON always renders");
        self.completed.push(CompletedGrid { report: text });
    }

    fn drop_connection(&mut self, conn: u64) {
        self.workers.remove(&conn);
        if let Some(grid) = self.queue.front_mut() {
            let held: Vec<usize> = grid
                .leases
                .iter()
                .filter(|(_, lease)| lease.conn == conn)
                .map(|(shard, _)| *shard)
                .collect();
            if !held.is_empty() {
                faults::note_event(RunEvent::WorkerAbnormalExit);
                for shard in held {
                    grid.leases.remove(&shard);
                    faults::note_event(RunEvent::LeaseStolen);
                }
            }
        }
    }
}

/// Serve one peer until it hangs up.  Runs the request/response loop with
/// at-most-once semantics: a retransmitted request (same non-zero `seq`)
/// gets the cached response bytes instead of being re-executed, and a
/// malformed frame is skipped (the sender retransmits on timeout) — both
/// noted as [`RunEvent::FrameRetried`].
pub fn serve_connection(link: &mut dyn FrameLink, state: &Arc<Mutex<ServiceState>>) {
    let conn = state.lock().expect("service lock").allocate_conn();
    let mut cache: Option<(u64, Vec<u8>)> = None;
    loop {
        let frame = match link.recv(Some(RECV_TICK)) {
            Ok(Some(frame)) => frame,
            Ok(None) => continue,
            Err(_) => break,
        };
        let msg = match Message::decode(&frame) {
            Ok(msg) => msg,
            Err(_) => {
                faults::note_event(RunEvent::FrameRetried);
                continue;
            }
        };
        let seq = msg.seq();
        if seq != 0 {
            if let Some((cached_seq, bytes)) = &cache {
                if *cached_seq == seq {
                    faults::note_event(RunEvent::FrameRetried);
                    if link.send(bytes).is_err() {
                        break;
                    }
                    continue;
                }
            }
        }
        let reply = state.lock().expect("service lock").handle(conn, msg);
        match reply {
            Reply::None => {}
            Reply::Send(response) => {
                let bytes = response.encode();
                if seq != 0 {
                    cache = Some((seq, bytes.clone()));
                }
                if link.send(&bytes).is_err() {
                    break;
                }
            }
            Reply::Close(response) => {
                let _ = link.send(&response.encode());
                break;
            }
        }
    }
    state.lock().expect("service lock").drop_connection(conn);
}
