//! The wire protocol of the experiment service: length-prefixed JSON
//! frames carrying a small, explicitly-typed message vocabulary.
//!
//! A frame is a `u32` little-endian payload length followed by that many
//! bytes of JSON text.  Every message is a JSON object with a `"type"`
//! field (the vendored serde derive has no `#[serde(tag)]`, so the
//! discriminator is explicit, exactly like the store's `caem_job_failure`
//! marker) and a `"seq"` field.  Requests carry a fresh sequence number and
//! their response echoes it; a retransmitted request reuses its number, so
//! duplicated or reordered frames are detected by comparing `seq` instead
//! of trusting transport ordering.  Fire-and-forget messages ([`Records`],
//! [`Heartbeat`]) carry `seq = 0`.
//!
//! Everything here is total: torn frames, oversized lengths, malformed
//! JSON and unknown message types decode to a typed [`ProtoError`], never a
//! panic — the property the wire-protocol proptests pin down.
//!
//! [`Records`]: Message::Records
//! [`Heartbeat`]: Message::Heartbeat

use std::io::Read;

use serde::Value;

use crate::distrib::ManifestJob;

/// Protocol version spoken by this build.  A daemon rejects a worker whose
/// hello names any other version (exit 2 at the worker binary boundary).
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on a frame's payload length.  A length prefix beyond this is
/// treated as garbage (a desynchronized or hostile peer), not an allocation
/// request.
pub const MAX_FRAME_BYTES: usize = 32 * 1024 * 1024;

/// Errors raised by the frame codec and message decoder.
#[derive(Debug)]
pub enum ProtoError {
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// Transport failure.
    Io(std::io::Error),
    /// The stream ended inside a frame (a torn frame).
    Torn {
        /// Bytes the frame header promised.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// A frame header names a payload longer than [`MAX_FRAME_BYTES`].
    Oversize {
        /// The advertised payload length.
        len: usize,
    },
    /// A frame's payload is not a well-formed message.
    Malformed(String),
    /// The peer rejected this endpoint (handshake refused).
    Rejected(String),
    /// A request was retransmitted past its retry budget with no response.
    NoResponse(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed by peer"),
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::Torn { expected, got } => {
                write!(f, "torn frame: {got} of {expected} payload bytes")
            }
            ProtoError::Oversize { len } => {
                write!(
                    f,
                    "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
            ProtoError::Rejected(reason) => write!(f, "rejected by peer: {reason}"),
            ProtoError::NoResponse(what) => {
                write!(f, "no response to {what} within the retry budget")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Prefix `payload` with its `u32` little-endian length.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Read one length-prefixed frame from `reader`.  EOF at a frame boundary
/// is [`ProtoError::Closed`]; EOF inside a frame is [`ProtoError::Torn`];
/// an absurd length prefix is [`ProtoError::Oversize`].
pub fn read_frame(reader: &mut impl Read) -> Result<Vec<u8>, ProtoError> {
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < header.len() {
        match reader.read(&mut header[filled..])? {
            0 if filled == 0 => return Err(ProtoError::Closed),
            0 => {
                return Err(ProtoError::Torn {
                    expected: header.len(),
                    got: filled,
                })
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::Oversize { len });
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match reader.read(&mut payload[filled..])? {
            0 => {
                return Err(ProtoError::Torn {
                    expected: len,
                    got: filled,
                })
            }
            n => filled += n,
        }
    }
    Ok(payload)
}

/// Progress of the grid a [`Message::StatusReply`] describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridProgress {
    /// The grid's display name.
    pub name: String,
    /// Total jobs in the grid.
    pub jobs: u64,
    /// Jobs settled so far (success records plus quarantines).
    pub settled: u64,
    /// Jobs settled in quarantine.
    pub quarantined: u64,
    /// Shards completed so far.
    pub shards_done: u64,
    /// Total shards of the grid.
    pub shard_count: u64,
}

/// Every message of the experiment-service protocol.
///
/// No `PartialEq`: [`ManifestJob`] payloads carry a full scenario config
/// (floats, no equality). Round-trip tests compare re-encoded bytes
/// instead, which is stronger anyway.
#[derive(Debug, Clone)]
pub enum Message {
    /// Worker handshake: protocol version, identity, rayon thread share and
    /// an optional pinned grid hash (refused if the daemon's active grid
    /// differs — the CI manifest-mismatch negative check).
    Hello {
        /// Request sequence number.
        seq: u64,
        /// Protocol version the worker speaks.
        protocol: u64,
        /// The worker's display label.
        worker: String,
        /// Rayon threads the worker will use.
        threads: u64,
        /// Require the daemon's active grid to carry this manifest hash.
        expect_hash: Option<u64>,
    },
    /// Handshake accepted; carries the daemon's lease tuning.
    HelloAck {
        /// Echoed request sequence number.
        seq: u64,
        /// Heartbeat interval the worker should honour, in milliseconds.
        heartbeat_ms: u64,
        /// Lease TTL after which a silent worker is evicted, in milliseconds.
        lease_ttl_ms: u64,
    },
    /// Handshake refused (version skew or manifest-hash mismatch); the
    /// worker binary exits 2.
    Reject {
        /// Echoed request sequence number.
        seq: u64,
        /// Why the worker was refused.
        reason: String,
    },
    /// Worker asks for a shard.
    Claim {
        /// Request sequence number.
        seq: u64,
    },
    /// A shard granted to the claiming worker, with its still-pending jobs
    /// inlined (socket workers have no shared filesystem to read a
    /// manifest from).
    Grant {
        /// Echoed request sequence number.
        seq: u64,
        /// Manifest hash of the grid the shard belongs to.
        grid: u64,
        /// The granted shard index.
        shard: u64,
        /// The shard's unsettled jobs, fully resolved.
        jobs: Vec<ManifestJob>,
    },
    /// Nothing to grant right now; retry after the given delay.
    NoWork {
        /// Echoed request sequence number.
        seq: u64,
        /// Suggested delay before the next claim, in milliseconds.
        retry_ms: u64,
    },
    /// A batch of completed-job JSONL lines (the collector's coalesced
    /// ≤ 64 KiB batches, shipped over the wire instead of a file).
    /// Fire-and-forget: losses are reconciled by the [`Message::ShardDone`]
    /// line count.
    Records {
        /// Manifest hash of the grid the lines belong to.
        grid: u64,
        /// The shard the lines settle jobs of.
        shard: u64,
        /// Encoded store lines (no trailing newlines).
        lines: Vec<String>,
    },
    /// Keep-alive for a long-running shard (fire-and-forget).
    Heartbeat {
        /// Manifest hash of the grid being worked.
        grid: u64,
        /// The shard being worked.
        shard: u64,
    },
    /// All of a shard's granted jobs are settled and their lines sent.
    ShardDone {
        /// Request sequence number.
        seq: u64,
        /// Manifest hash of the grid.
        grid: u64,
        /// The completed shard.
        shard: u64,
        /// Lines this worker sent for the shard (the reconciliation count).
        sent: u64,
    },
    /// Shard completion acknowledged; the worker may drop its retained
    /// lines.
    DoneAck {
        /// Echoed request sequence number.
        seq: u64,
    },
    /// The daemon received fewer lines than the worker sent (dropped
    /// frames); the worker must resend its retained lines.
    DoneNack {
        /// Echoed request sequence number.
        seq: u64,
        /// Lines the daemon actually decoded for the shard.
        received: u64,
    },
    /// Graceful-shutdown release of an unfinished shard: the daemon
    /// re-grants it to the next claimer immediately, no TTL wait.
    Release {
        /// Request sequence number.
        seq: u64,
        /// Manifest hash of the grid.
        grid: u64,
        /// The shard being handed back.
        shard: u64,
    },
    /// Release acknowledged.
    ReleaseAck {
        /// Echoed request sequence number.
        seq: u64,
    },
    /// Client submits a grid: the spec document text plus the resolve
    /// inputs ([`crate::spec::GridSpec::resolve`]'s `default_seed` and
    /// `quick`), validated daemon-side through the typed
    /// [`crate::config::ConfigError`] path.
    Submit {
        /// Request sequence number.
        seq: u64,
        /// The grid-spec document text.
        spec: String,
        /// Resolve in quick mode.
        quick: bool,
        /// Default seed when the document pins no `base_seed`.
        seed: u64,
    },
    /// Submission accepted and queued.
    SubmitAck {
        /// Echoed request sequence number.
        seq: u64,
        /// Manifest hash identifying the queued grid.
        grid: u64,
        /// The grid's display name.
        name: String,
        /// Total jobs the grid enumerates to.
        jobs: u64,
    },
    /// Submission refused (spec parse/validation failure, rendered from
    /// the typed error); the client binary exits 2.
    SubmitErr {
        /// Echoed request sequence number.
        seq: u64,
        /// The rendered [`crate::config::ConfigError`].
        reason: String,
    },
    /// Client asks for service progress.
    Status {
        /// Request sequence number.
        seq: u64,
    },
    /// Service progress: queue depth, active-grid progress, worker count
    /// and the counted [`crate::faults::RunEvent`] summary.
    StatusReply {
        /// Echoed request sequence number.
        seq: u64,
        /// Grids queued behind the active one.
        queued: u64,
        /// Progress of the grid currently being worked, if any.
        active: Option<GridProgress>,
        /// Grids completed so far.
        completed: u64,
        /// Workers currently registered.
        workers: u64,
        /// [`crate::faults::event_summary`] of the daemon process.
        events: Option<String>,
    },
    /// Client asks for the most recent completed report.
    Fetch {
        /// Request sequence number.
        seq: u64,
    },
    /// The report, pre-rendered daemon-side with the canonical
    /// `to_string_pretty(report.to_json())` so the client writes the exact
    /// bytes a single-process run would (no client-side float re-rendering).
    FetchReply {
        /// Echoed request sequence number.
        seq: u64,
        /// Whether a completed report exists yet.
        ready: bool,
        /// The rendered report text (empty until `ready`).
        report: String,
    },
}

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl Message {
    /// The message's `"type"` discriminator.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::HelloAck { .. } => "hello_ack",
            Message::Reject { .. } => "reject",
            Message::Claim { .. } => "claim",
            Message::Grant { .. } => "grant",
            Message::NoWork { .. } => "no_work",
            Message::Records { .. } => "records",
            Message::Heartbeat { .. } => "heartbeat",
            Message::ShardDone { .. } => "shard_done",
            Message::DoneAck { .. } => "done_ack",
            Message::DoneNack { .. } => "done_nack",
            Message::Release { .. } => "release",
            Message::ReleaseAck { .. } => "release_ack",
            Message::Submit { .. } => "submit",
            Message::SubmitAck { .. } => "submit_ack",
            Message::SubmitErr { .. } => "submit_err",
            Message::Status { .. } => "status",
            Message::StatusReply { .. } => "status_reply",
            Message::Fetch { .. } => "fetch",
            Message::FetchReply { .. } => "fetch_reply",
        }
    }

    /// The sequence number the message carries (0 for fire-and-forget).
    pub fn seq(&self) -> u64 {
        match *self {
            Message::Hello { seq, .. }
            | Message::HelloAck { seq, .. }
            | Message::Reject { seq, .. }
            | Message::Claim { seq }
            | Message::Grant { seq, .. }
            | Message::NoWork { seq, .. }
            | Message::ShardDone { seq, .. }
            | Message::DoneAck { seq }
            | Message::DoneNack { seq, .. }
            | Message::Release { seq, .. }
            | Message::ReleaseAck { seq }
            | Message::Submit { seq, .. }
            | Message::SubmitAck { seq, .. }
            | Message::SubmitErr { seq, .. }
            | Message::Status { seq }
            | Message::StatusReply { seq, .. }
            | Message::Fetch { seq }
            | Message::FetchReply { seq, .. } => seq,
            Message::Records { .. } | Message::Heartbeat { .. } => 0,
        }
    }

    /// Encode the message as a frame payload (JSON text bytes).
    pub fn encode(&self) -> Vec<u8> {
        let value = self.to_value();
        serde_json::to_string(&value)
            .expect("protocol messages always serialize")
            .into_bytes()
    }

    fn to_value(&self) -> Value {
        let mut entries: Vec<(&str, Value)> = vec![
            ("type", Value::Str(self.kind().to_string())),
            ("seq", Value::UInt(self.seq())),
        ];
        match self {
            Message::Hello {
                protocol,
                worker,
                threads,
                expect_hash,
                ..
            } => {
                entries.push(("protocol", Value::UInt(*protocol)));
                entries.push(("worker", Value::Str(worker.clone())));
                entries.push(("threads", Value::UInt(*threads)));
                if let Some(hash) = expect_hash {
                    entries.push(("expect_hash", Value::UInt(*hash)));
                }
            }
            Message::HelloAck {
                heartbeat_ms,
                lease_ttl_ms,
                ..
            } => {
                entries.push(("heartbeat_ms", Value::UInt(*heartbeat_ms)));
                entries.push(("lease_ttl_ms", Value::UInt(*lease_ttl_ms)));
            }
            Message::Reject { reason, .. } | Message::SubmitErr { reason, .. } => {
                entries.push(("reason", Value::Str(reason.clone())));
            }
            Message::Claim { .. }
            | Message::DoneAck { .. }
            | Message::ReleaseAck { .. }
            | Message::Status { .. }
            | Message::Fetch { .. } => {}
            Message::Grant {
                grid, shard, jobs, ..
            } => {
                entries.push(("grid", Value::UInt(*grid)));
                entries.push(("shard", Value::UInt(*shard)));
                let jobs: Vec<Value> = jobs
                    .iter()
                    .map(|job| serde_json::to_value(job).expect("manifest jobs always serialize"))
                    .collect();
                entries.push(("jobs", Value::Seq(jobs)));
            }
            Message::NoWork { retry_ms, .. } => {
                entries.push(("retry_ms", Value::UInt(*retry_ms)));
            }
            Message::Records { grid, shard, lines } => {
                entries.push(("grid", Value::UInt(*grid)));
                entries.push(("shard", Value::UInt(*shard)));
                entries.push((
                    "lines",
                    Value::Seq(lines.iter().map(|l| Value::Str(l.clone())).collect()),
                ));
            }
            Message::Heartbeat { grid, shard } => {
                entries.push(("grid", Value::UInt(*grid)));
                entries.push(("shard", Value::UInt(*shard)));
            }
            Message::ShardDone {
                grid, shard, sent, ..
            } => {
                entries.push(("grid", Value::UInt(*grid)));
                entries.push(("shard", Value::UInt(*shard)));
                entries.push(("sent", Value::UInt(*sent)));
            }
            Message::DoneNack { received, .. } => {
                entries.push(("received", Value::UInt(*received)));
            }
            Message::Release { grid, shard, .. } => {
                entries.push(("grid", Value::UInt(*grid)));
                entries.push(("shard", Value::UInt(*shard)));
            }
            Message::Submit {
                spec, quick, seed, ..
            } => {
                entries.push(("spec", Value::Str(spec.clone())));
                entries.push(("quick", Value::Bool(*quick)));
                entries.push(("seed", Value::UInt(*seed)));
            }
            Message::SubmitAck {
                grid, name, jobs, ..
            } => {
                entries.push(("grid", Value::UInt(*grid)));
                entries.push(("name", Value::Str(name.clone())));
                entries.push(("jobs", Value::UInt(*jobs)));
            }
            Message::StatusReply {
                queued,
                active,
                completed,
                workers,
                events,
                ..
            } => {
                entries.push(("queued", Value::UInt(*queued)));
                if let Some(p) = active {
                    entries.push((
                        "active",
                        map(vec![
                            ("name", Value::Str(p.name.clone())),
                            ("jobs", Value::UInt(p.jobs)),
                            ("settled", Value::UInt(p.settled)),
                            ("quarantined", Value::UInt(p.quarantined)),
                            ("shards_done", Value::UInt(p.shards_done)),
                            ("shard_count", Value::UInt(p.shard_count)),
                        ]),
                    ));
                }
                entries.push(("completed", Value::UInt(*completed)));
                entries.push(("workers", Value::UInt(*workers)));
                if let Some(text) = events {
                    entries.push(("events", Value::Str(text.clone())));
                }
            }
            Message::FetchReply { ready, report, .. } => {
                entries.push(("ready", Value::Bool(*ready)));
                entries.push(("report", Value::Str(report.clone())));
            }
        }
        map(entries)
    }

    /// Decode a frame payload.  Any malformation — bad JSON, a missing or
    /// mistyped field, an unknown `"type"` — is a typed
    /// [`ProtoError::Malformed`], never a panic.
    pub fn decode(payload: &[u8]) -> Result<Message, ProtoError> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| ProtoError::Malformed("frame payload is not UTF-8".into()))?;
        let value =
            serde_json::parse(text).map_err(|e| ProtoError::Malformed(format!("bad JSON: {e}")))?;
        let kind = str_field(&value, "type")?;
        let seq = uint_field(&value, "seq")?;
        let msg =
            match kind.as_str() {
                "hello" => Message::Hello {
                    seq,
                    protocol: uint_field(&value, "protocol")?,
                    worker: str_field(&value, "worker")?,
                    threads: uint_field(&value, "threads")?,
                    expect_hash: opt_uint_field(&value, "expect_hash")?,
                },
                "hello_ack" => Message::HelloAck {
                    seq,
                    heartbeat_ms: uint_field(&value, "heartbeat_ms")?,
                    lease_ttl_ms: uint_field(&value, "lease_ttl_ms")?,
                },
                "reject" => Message::Reject {
                    seq,
                    reason: str_field(&value, "reason")?,
                },
                "claim" => Message::Claim { seq },
                "grant" => {
                    let jobs = match value.get("jobs") {
                        Some(Value::Seq(items)) => items
                            .iter()
                            .map(|item| {
                                serde_json::from_value::<ManifestJob>(item.clone()).map_err(|e| {
                                    ProtoError::Malformed(format!("undecodable grant job: {e}"))
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                        _ => return Err(ProtoError::Malformed("grant without a jobs list".into())),
                    };
                    Message::Grant {
                        seq,
                        grid: uint_field(&value, "grid")?,
                        shard: uint_field(&value, "shard")?,
                        jobs,
                    }
                }
                "no_work" => Message::NoWork {
                    seq,
                    retry_ms: uint_field(&value, "retry_ms")?,
                },
                "records" => {
                    let lines = match value.get("lines") {
                        Some(Value::Seq(items)) => items
                            .iter()
                            .map(|item| {
                                item.as_str().map(str::to_string).ok_or_else(|| {
                                    ProtoError::Malformed("non-string record line".into())
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                        _ => return Err(ProtoError::Malformed("records without lines".into())),
                    };
                    Message::Records {
                        grid: uint_field(&value, "grid")?,
                        shard: uint_field(&value, "shard")?,
                        lines,
                    }
                }
                "heartbeat" => Message::Heartbeat {
                    grid: uint_field(&value, "grid")?,
                    shard: uint_field(&value, "shard")?,
                },
                "shard_done" => Message::ShardDone {
                    seq,
                    grid: uint_field(&value, "grid")?,
                    shard: uint_field(&value, "shard")?,
                    sent: uint_field(&value, "sent")?,
                },
                "done_ack" => Message::DoneAck { seq },
                "done_nack" => Message::DoneNack {
                    seq,
                    received: uint_field(&value, "received")?,
                },
                "release" => Message::Release {
                    seq,
                    grid: uint_field(&value, "grid")?,
                    shard: uint_field(&value, "shard")?,
                },
                "release_ack" => Message::ReleaseAck { seq },
                "submit" => Message::Submit {
                    seq,
                    spec: str_field(&value, "spec")?,
                    quick: bool_field(&value, "quick")?,
                    seed: uint_field(&value, "seed")?,
                },
                "submit_ack" => Message::SubmitAck {
                    seq,
                    grid: uint_field(&value, "grid")?,
                    name: str_field(&value, "name")?,
                    jobs: uint_field(&value, "jobs")?,
                },
                "submit_err" => Message::SubmitErr {
                    seq,
                    reason: str_field(&value, "reason")?,
                },
                "status" => Message::Status { seq },
                "status_reply" => {
                    let active = match value.get("active") {
                        None | Some(Value::Null) => None,
                        Some(progress) => Some(GridProgress {
                            name: str_field(progress, "name")?,
                            jobs: uint_field(progress, "jobs")?,
                            settled: uint_field(progress, "settled")?,
                            quarantined: uint_field(progress, "quarantined")?,
                            shards_done: uint_field(progress, "shards_done")?,
                            shard_count: uint_field(progress, "shard_count")?,
                        }),
                    };
                    Message::StatusReply {
                        seq,
                        queued: uint_field(&value, "queued")?,
                        active,
                        completed: uint_field(&value, "completed")?,
                        workers: uint_field(&value, "workers")?,
                        events: match value.get("events") {
                            None | Some(Value::Null) => None,
                            Some(v) => Some(v.as_str().map(str::to_string).ok_or_else(|| {
                                ProtoError::Malformed("non-string events".into())
                            })?),
                        },
                    }
                }
                "fetch" => Message::Fetch { seq },
                "fetch_reply" => Message::FetchReply {
                    seq,
                    ready: bool_field(&value, "ready")?,
                    report: str_field(&value, "report")?,
                },
                other => {
                    return Err(ProtoError::Malformed(format!(
                        "unknown message type `{other}`"
                    )))
                }
            };
        Ok(msg)
    }
}

fn uint_field(value: &Value, name: &str) -> Result<u64, ProtoError> {
    value
        .get(name)
        .and_then(Value::as_u64)
        .ok_or_else(|| ProtoError::Malformed(format!("missing or non-integer `{name}`")))
}

fn opt_uint_field(value: &Value, name: &str) -> Result<Option<u64>, ProtoError> {
    match value.get(name) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtoError::Malformed(format!("non-integer `{name}`"))),
    }
}

fn str_field(value: &Value, name: &str) -> Result<String, ProtoError> {
    value
        .get(name)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtoError::Malformed(format!("missing or non-string `{name}`")))
}

fn bool_field(value: &Value, name: &str) -> Result<bool, ProtoError> {
    match value.get(name) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(ProtoError::Malformed(format!(
            "missing or non-boolean `{name}`"
        ))),
    }
}
