//! The socket-transport worker loop: handshake, claim, run, stream,
//! reconcile — the service counterpart of [`crate::distrib::run_worker`].
//!
//! A socket worker needs no shared filesystem: it receives each granted
//! shard's jobs inline with the grant, runs them through the same
//! [`run_job_guarded`] retry/quarantine path as a file worker, and streams
//! the resulting store lines back in [`Message::Records`] batches coalesced
//! to the collector's gather threshold.  While the shard's rayon fan-out is
//! running, the connection thread keeps the lease alive with
//! [`Message::Heartbeat`] frames.  Shard completion is reconciled by count:
//! if the daemon decoded fewer lines than the worker sent (frames lost to
//! faults), the worker resends every retained line and asks again.
//!
//! **Graceful shutdown** mirrors the file worker: once the worker's stop
//! flag (or the process-wide [`shutdown_requested`]) is raised, unstarted
//! jobs are skipped, buffered lines are flushed, the unfinished shard is
//! released back to the daemon — instantly re-claimable, no TTL wait — and
//! the loop returns cleanly.  The daemon closing the connection is also a
//! clean exit, so draining a fleet is as simple as stopping the daemon.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

use rayon::prelude::*;

use crate::distrib::{run_job_guarded, shutdown_requested, ManifestJob, WorkerOutcome};
use crate::persist::{encode_failure_line, encode_line, JobFailure, JobRecord};

use super::proto::{Message, ProtoError, PROTOCOL_VERSION};
use super::transport::{request, FrameLink};

/// Batch threshold for streamed record lines — the collector's gather
/// threshold, applied to wire frames instead of file writes.
const GATHER_BYTES: usize = crate::collect::GATHER_BYTES;

/// Cap on ShardDone→DoneNack resend rounds before giving up on a link.
const MAX_DONE_ROUNDS: usize = 10;

/// Tuning and identity of one socket worker.
#[derive(Debug, Clone)]
pub struct SocketWorkerOptions {
    /// Display label reported in the handshake.
    pub label: String,
    /// Protocol version to claim (overridable so version-skew rejection is
    /// testable; defaults to [`PROTOCOL_VERSION`]).
    pub protocol: u64,
    /// Refuse to work unless the daemon's active grid has this manifest
    /// hash.
    pub expect_hash: Option<u64>,
    /// Attempts per job before quarantine (the file worker's default is 2).
    pub job_attempts: u32,
    /// Wall-clock budget per job attempt.
    pub job_wall_budget: Option<Duration>,
    /// Worker-local graceful-stop flag: raised by the embedding test or
    /// signal handler; checked between jobs alongside the process-wide
    /// [`shutdown_requested`].
    pub stop: Arc<AtomicBool>,
}

impl SocketWorkerOptions {
    /// Defaults for a worker labelled `label`.
    pub fn new(label: impl Into<String>) -> Self {
        SocketWorkerOptions {
            label: label.into(),
            protocol: PROTOCOL_VERSION,
            expect_hash: None,
            job_attempts: 2,
            job_wall_budget: None,
            stop: Arc::new(AtomicBool::new(false)),
        }
    }
}

/// How a socket worker's run ended.
#[derive(Debug)]
pub enum WorkerExit {
    /// Clean exit (work drained, stop requested, or daemon hung up).
    Finished(WorkerOutcome),
    /// The daemon refused the handshake; the reason should reach stderr
    /// and the process should exit 2.
    Rejected(String),
}

/// What one granted shard's execution produced.
struct ShardRun {
    /// Every encoded line, retained for DoneNack resends.
    lines: Vec<String>,
    records: usize,
    quarantined: usize,
    /// All granted jobs settled (false when a stop skipped some).
    complete: bool,
}

/// Run the worker loop over `link` until the work (or the daemon) goes
/// away.  Transport failures surface as [`ProtoError`]; a peer hang-up is
/// **not** an error — it resolves to [`WorkerExit::Finished`].
pub fn run_socket_worker(
    link: &mut dyn FrameLink,
    opts: &SocketWorkerOptions,
) -> Result<WorkerExit, ProtoError> {
    let mut seq: u64 = 1;
    let hello = Message::Hello {
        seq,
        protocol: opts.protocol,
        worker: opts.label.clone(),
        threads: rayon::process_thread_cap() as u64,
        expect_hash: opts.expect_hash,
    };
    let heartbeat = match request(link, &hello, "hello") {
        Ok(Message::HelloAck { heartbeat_ms, .. }) => Duration::from_millis(heartbeat_ms.max(1)),
        Ok(Message::Reject { reason, .. }) => return Ok(WorkerExit::Rejected(reason)),
        Ok(other) => {
            return Err(ProtoError::Malformed(format!(
                "unexpected {} in response to hello",
                other.kind()
            )))
        }
        Err(ProtoError::Closed) => return Ok(WorkerExit::Finished(WorkerOutcome::default())),
        Err(e) => return Err(e),
    };
    let stopping = || opts.stop.load(Ordering::Relaxed) || shutdown_requested();
    let mut outcome = WorkerOutcome::default();
    loop {
        if stopping() {
            return Ok(WorkerExit::Finished(outcome));
        }
        seq += 1;
        let grant = match request(link, &Message::Claim { seq }, "claim") {
            Ok(msg) => msg,
            Err(ProtoError::Closed) => return Ok(WorkerExit::Finished(outcome)),
            Err(e) => return Err(e),
        };
        let (grid, shard, jobs) = match grant {
            Message::Grant {
                grid, shard, jobs, ..
            } => (grid, shard, jobs),
            Message::NoWork { retry_ms, .. } => {
                // Sleep in short slices so a stop request is honoured
                // promptly even under a long retry hint.
                let mut left = retry_ms.clamp(10, 1_000);
                while left > 0 && !stopping() {
                    let slice = left.min(20);
                    std::thread::sleep(Duration::from_millis(slice));
                    left -= slice;
                }
                continue;
            }
            other => {
                return Err(ProtoError::Malformed(format!(
                    "unexpected {} in response to claim",
                    other.kind()
                )))
            }
        };
        let run = match run_shard(link, opts, grid, shard, &jobs, heartbeat) {
            Ok(run) => run,
            Err(ProtoError::Closed) => return Ok(WorkerExit::Finished(outcome)),
            Err(e) => return Err(e),
        };
        outcome.jobs_run += run.records;
        outcome.jobs_quarantined += run.quarantined;
        if run.complete {
            match settle_shard(link, &mut seq, grid, shard, &run) {
                Ok(()) => outcome.shards_completed += 1,
                Err(ProtoError::Closed) => return Ok(WorkerExit::Finished(outcome)),
                Err(e) => return Err(e),
            }
        } else {
            // Stop requested mid-shard: hand the lease back so another
            // worker re-claims it without waiting out the TTL.
            seq += 1;
            match request(link, &Message::Release { seq, grid, shard }, "release") {
                Ok(_) | Err(ProtoError::Closed) => {}
                Err(e) => return Err(e),
            }
            return Ok(WorkerExit::Finished(outcome));
        }
    }
}

/// Run one granted shard: rayon fan-out in a scoped thread, with this
/// thread streaming coalesced record batches and heartbeats over the link.
fn run_shard(
    link: &mut dyn FrameLink,
    opts: &SocketWorkerOptions,
    grid: u64,
    shard: u64,
    jobs: &[ManifestJob],
    heartbeat: Duration,
) -> Result<ShardRun, ProtoError> {
    let (line_tx, line_rx) = mpsc::channel::<String>();
    let stop = opts.stop.clone();
    let attempts = opts.job_attempts;
    let budget = opts.job_wall_budget;
    let mut lines: Vec<String> = Vec::new();
    let mut records = 0usize;
    let mut quarantined = 0usize;
    let mut complete = true;
    let mut link_error: Option<ProtoError> = None;
    std::thread::scope(|scope| {
        let runner = scope.spawn(move || {
            let results: Vec<Option<Result<JobRecord, JobFailure>>> = jobs
                .par_iter()
                .map(|job| {
                    if stop.load(Ordering::Relaxed) || shutdown_requested() {
                        return None;
                    }
                    Some(run_job_guarded(job, attempts, budget))
                })
                .collect();
            for settled in results.iter().flatten() {
                let encoded = match settled {
                    Ok(record) => encode_line(record),
                    Err(failure) => encode_failure_line(failure),
                };
                if let Ok(bytes) = encoded {
                    let mut text = String::from_utf8(bytes).expect("store lines are UTF-8");
                    if text.ends_with('\n') {
                        text.pop();
                    }
                    // A send failure means the streamer bailed on a dead
                    // link; the results still count for the return value.
                    let _ = line_tx.send(text);
                }
            }
            drop(line_tx);
            results
        });
        // This thread owns the link: coalesce lines into Records frames
        // and keep the lease alive while the fan-out runs.
        let mut batch: Vec<String> = Vec::new();
        let mut batch_bytes = 0usize;
        loop {
            match line_rx.recv_timeout(heartbeat) {
                Ok(line) => {
                    batch_bytes += line.len();
                    lines.push(line.clone());
                    batch.push(line);
                    if batch_bytes >= GATHER_BYTES {
                        if let Err(e) = flush_batch(link, grid, shard, &mut batch) {
                            link_error = Some(e);
                            opts.stop.store(true, Ordering::Relaxed);
                            break;
                        }
                        batch_bytes = 0;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    let beat = Message::Heartbeat { grid, shard };
                    if let Err(e) = link.send(&beat.encode()) {
                        link_error = Some(e);
                        opts.stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    if let Err(e) = flush_batch(link, grid, shard, &mut batch) {
                        link_error = Some(e);
                    }
                    break;
                }
            }
        }
        let results = runner.join().expect("shard runner thread never panics");
        for settled in &results {
            match settled {
                Some(Ok(_)) => records += 1,
                Some(Err(_)) => quarantined += 1,
                None => complete = false,
            }
        }
    });
    if let Some(e) = link_error {
        return Err(e);
    }
    Ok(ShardRun {
        lines,
        records,
        quarantined,
        complete,
    })
}

/// Send one coalesced Records frame (no-op on an empty batch).
fn flush_batch(
    link: &mut dyn FrameLink,
    grid: u64,
    shard: u64,
    batch: &mut Vec<String>,
) -> Result<(), ProtoError> {
    if batch.is_empty() {
        return Ok(());
    }
    let msg = Message::Records {
        grid,
        shard,
        lines: std::mem::take(batch),
    };
    link.send(&msg.encode())
}

/// Reconcile shard completion: declare the sent-line count, and on a
/// [`Message::DoneNack`] resend every retained line before asking again.
fn settle_shard(
    link: &mut dyn FrameLink,
    seq: &mut u64,
    grid: u64,
    shard: u64,
    run: &ShardRun,
) -> Result<(), ProtoError> {
    for _ in 0..MAX_DONE_ROUNDS {
        *seq += 1;
        let done = Message::ShardDone {
            seq: *seq,
            grid,
            shard,
            sent: run.lines.len() as u64,
        };
        match request(link, &done, "shard_done")? {
            Message::DoneAck { .. } => return Ok(()),
            Message::DoneNack { .. } => {
                let mut batch: Vec<String> = Vec::new();
                let mut batch_bytes = 0usize;
                for line in &run.lines {
                    batch_bytes += line.len();
                    batch.push(line.clone());
                    if batch_bytes >= GATHER_BYTES {
                        flush_batch(link, grid, shard, &mut batch)?;
                        batch_bytes = 0;
                    }
                }
                flush_batch(link, grid, shard, &mut batch)?;
            }
            other => {
                return Err(ProtoError::Malformed(format!(
                    "unexpected {} in response to shard_done",
                    other.kind()
                )))
            }
        }
    }
    Err(ProtoError::NoResponse("shard_done"))
}
