//! Client-side operations against a running daemon: submit a grid spec,
//! poll service status, fetch the finished report.
//!
//! Clients speak the same seq-disciplined request/response protocol as
//! workers (see [`super::proto`]) but skip the handshake — submitting and
//! fetching are stateless one-shots, so there is no version or manifest to
//! pin.  The fetched report arrives pre-rendered by the daemon; callers
//! write it out verbatim to stay byte-identical with a single-process run.

use std::time::{Duration, Instant};

use super::proto::{GridProgress, Message, ProtoError};
use super::transport::{request, FrameLink};

/// A grid accepted by the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submission {
    /// Manifest hash identifying the queued grid (workers may pin it via
    /// `--expect-hash`).
    pub grid_hash: u64,
    /// The grid's display name.
    pub name: String,
    /// Total jobs the grid enumerates to.
    pub jobs: u64,
}

/// A snapshot of daemon progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStatus {
    /// Grids queued behind the active one.
    pub queued: u64,
    /// Progress of the grid being worked, if any.
    pub active: Option<GridProgress>,
    /// Grids completed so far.
    pub completed: u64,
    /// Workers currently registered.
    pub workers: u64,
    /// The daemon's counted recovery-event summary, if any events fired.
    pub events: Option<String>,
}

/// A client session over one link, numbering its requests.
pub struct ServiceClient<'a> {
    link: &'a mut dyn FrameLink,
    seq: u64,
}

impl<'a> ServiceClient<'a> {
    /// Wrap a connected link.
    pub fn new(link: &'a mut dyn FrameLink) -> Self {
        ServiceClient { link, seq: 0 }
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Submit a grid-spec document.  A daemon-side validation failure (the
    /// rendered [`crate::config::ConfigError`]) surfaces as
    /// [`ProtoError::Rejected`].
    pub fn submit(&mut self, spec: &str, quick: bool, seed: u64) -> Result<Submission, ProtoError> {
        let msg = Message::Submit {
            seq: self.next_seq(),
            spec: spec.to_string(),
            quick,
            seed,
        };
        match request(self.link, &msg, "submit")? {
            Message::SubmitAck {
                grid, name, jobs, ..
            } => Ok(Submission {
                grid_hash: grid,
                name,
                jobs,
            }),
            Message::SubmitErr { reason, .. } => Err(ProtoError::Rejected(reason)),
            other => Err(ProtoError::Malformed(format!(
                "unexpected {} in response to submit",
                other.kind()
            ))),
        }
    }

    /// Ask the daemon where things stand.
    pub fn status(&mut self) -> Result<ServiceStatus, ProtoError> {
        let msg = Message::Status {
            seq: self.next_seq(),
        };
        match request(self.link, &msg, "status")? {
            Message::StatusReply {
                queued,
                active,
                completed,
                workers,
                events,
                ..
            } => Ok(ServiceStatus {
                queued,
                active,
                completed,
                workers,
                events,
            }),
            other => Err(ProtoError::Malformed(format!(
                "unexpected {} in response to status",
                other.kind()
            ))),
        }
    }

    /// Fetch the most recent completed report, if one exists.
    pub fn try_fetch(&mut self) -> Result<Option<String>, ProtoError> {
        let msg = Message::Fetch {
            seq: self.next_seq(),
        };
        match request(self.link, &msg, "fetch")? {
            Message::FetchReply { ready, report, .. } => {
                Ok(if ready { Some(report) } else { None })
            }
            other => Err(ProtoError::Malformed(format!(
                "unexpected {} in response to fetch",
                other.kind()
            ))),
        }
    }

    /// Poll until a completed report is available or `timeout` elapses.
    pub fn fetch_report(&mut self, timeout: Duration) -> Result<String, ProtoError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(report) = self.try_fetch()? {
                return Ok(report);
            }
            if Instant::now() >= deadline {
                return Err(ProtoError::NoResponse("fetch (no completed report)"));
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    }
}
