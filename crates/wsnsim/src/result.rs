//! Simulation output: the metric trackers the figure binaries consume.

use caem::policy::PolicyKind;
use caem_energy::battery::EnergyLedger;
use caem_metrics::energy::{EnergyTracker, PerPacketEnergy};
use caem_metrics::fairness::QueueFairness;
use caem_metrics::lifetime::LifetimeTracker;
use caem_metrics::perf::NetworkPerformance;
use caem_metrics::prof::Profile;
use caem_simcore::time::SimTime;

/// A compact per-node summary included in the result.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSummary {
    /// Node index.
    pub id: usize,
    /// Remaining energy at the end of the run (J).
    pub remaining_energy_j: f64,
    /// Time of death, if the node depleted its battery.
    pub death_time: Option<SimTime>,
    /// Packets this node generated.
    pub generated: u64,
    /// Packets of this node delivered to a sink (including self-delivery
    /// while serving as head).
    pub delivered: u64,
    /// Packets dropped at this node's buffer.
    pub dropped: u64,
    /// Times this node served as cluster head.
    pub head_terms: u64,
}

/// Everything a single simulation run produces.
pub struct SimulationResult {
    /// The protocol variant that was run.
    pub policy: PolicyKind,
    /// Per-node mean traffic rate (packets/second) of the scenario.
    pub traffic_rate_pps: f64,
    /// Master seed of the run.
    pub seed: u64,
    /// Virtual time at which the run stopped.
    pub end_time: SimTime,
    /// Fig. 8: average remaining energy over time.
    pub energy: EnergyTracker,
    /// Fig. 9 / Fig. 10: node deaths and network lifetime.
    pub lifetime: LifetimeTracker,
    /// Delay / throughput / delivery-rate metrics (long-version extension).
    pub perf: NetworkPerformance,
    /// Fig. 12: queue-length fairness.
    pub fairness: QueueFairness,
    /// Network-wide energy ledger (sum of every node's ledger).
    pub ledger: EnergyLedger,
    /// Per-node summaries.
    pub nodes: Vec<NodeSummary>,
    /// Total number of MAC-level collisions observed.
    pub collisions: u64,
    /// Total number of completed bursts.
    pub bursts: u64,
    /// Nodes that left the network through churn injection (non-energy
    /// failures), as opposed to battery depletion.
    pub node_failures: u64,
    /// Number of discrete events the run's event loop processed — the
    /// denominator-free basis for the `netperf` events/sec throughput metric.
    pub events_processed: u64,
    /// Final allocated capacity of the pending-event queue.
    pub queue_capacity: usize,
    /// Peak number of simultaneously pending events.  When this stays at or
    /// below [`SimulationResult::queue_capacity`]'s initial sizing the queue
    /// never re-allocated during the run.
    pub queue_high_watermark: usize,
    /// Per-subsystem / per-event-kind profiling shard of the run.  Empty
    /// unless `caem_metrics::prof` was enabled; observability-only — it is
    /// never serialized into experiment records or report artifacts, which
    /// is what keeps profiled runs byte-identical to clean runs.
    pub profile: Profile,
}

impl SimulationResult {
    /// Fig. 11's metric: average energy per successfully delivered packet.
    pub fn per_packet_energy(&self) -> PerPacketEnergy {
        PerPacketEnergy::new(self.ledger.total(), self.perf.delivered())
    }

    /// Network lifetime (seconds) under the given dead-fraction rule, if the
    /// network died within the simulated horizon.
    pub fn network_lifetime_secs(&self, death_fraction: f64) -> Option<f64> {
        self.lifetime
            .network_lifetime(death_fraction)
            .map(|t| t.as_secs_f64())
    }

    /// Fraction of generated packets that were delivered.
    pub fn delivery_rate(&self) -> f64 {
        self.perf.delivery_rate()
    }

    /// Sum of remaining energy across all nodes at the end of the run (J).
    pub fn total_remaining_energy(&self) -> f64 {
        self.nodes.iter().map(|n| n.remaining_energy_j).sum()
    }

    /// Number of nodes still alive at the end of the run.
    pub fn nodes_alive(&self) -> usize {
        self.nodes.iter().filter(|n| n.death_time.is_none()).count()
    }
}

impl std::fmt::Debug for SimulationResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationResult")
            .field("policy", &self.policy)
            .field("traffic_rate_pps", &self.traffic_rate_pps)
            .field("end_time", &self.end_time)
            .field("delivered", &self.perf.delivered())
            .field("generated", &self.perf.generated())
            .field("nodes_alive", &self.nodes_alive())
            .field("collisions", &self.collisions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caem_simcore::time::Duration;

    fn dummy_result() -> SimulationResult {
        let mut perf = NetworkPerformance::new();
        perf.record_generated_n(100);
        for _ in 0..80 {
            perf.record_delivered(Duration::from_millis(25), 2_000);
        }
        perf.set_horizon(SimTime::from_secs(100));
        let mut ledger = EnergyLedger::new();
        ledger.record(caem_energy::battery::EnergyCategory::DataTransmit, 4.0);
        SimulationResult {
            policy: PolicyKind::Scheme1Adaptive,
            traffic_rate_pps: 5.0,
            seed: 1,
            end_time: SimTime::from_secs(100),
            energy: EnergyTracker::new(4),
            lifetime: LifetimeTracker::new(4),
            perf,
            fairness: QueueFairness::new(),
            ledger,
            nodes: vec![
                NodeSummary {
                    id: 0,
                    remaining_energy_j: 5.0,
                    death_time: None,
                    generated: 25,
                    delivered: 20,
                    dropped: 0,
                    head_terms: 1,
                },
                NodeSummary {
                    id: 1,
                    remaining_energy_j: 0.0,
                    death_time: Some(SimTime::from_secs(80)),
                    generated: 25,
                    delivered: 20,
                    dropped: 2,
                    head_terms: 2,
                },
            ],
            collisions: 3,
            bursts: 40,
            node_failures: 0,
            events_processed: 500,
            queue_capacity: 64,
            queue_high_watermark: 20,
            profile: Profile::new(),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = dummy_result();
        let ppe = r.per_packet_energy();
        assert_eq!(ppe.delivered_packets, 80);
        assert!((ppe.joules_per_packet().unwrap() - 0.05).abs() < 1e-12);
        assert!((r.delivery_rate() - 0.8).abs() < 1e-12);
        assert_eq!(r.nodes_alive(), 1);
        assert!((r.total_remaining_energy() - 5.0).abs() < 1e-12);
        assert_eq!(r.network_lifetime_secs(0.8), None);
    }
}
