//! Scenario configuration (Table II plus the protocol variant under test).

use caem::config::CaemConfig;
use caem::policy::PolicyKind;
use caem_channel::geometry::Position;
use caem_channel::link::LinkBudget;
use caem_channel::pathloss::PathLossModel;
use caem_channel::shadowing::ShadowingConfig;
use caem_channel::Field;
use caem_cluster::rounds::RoundConfig;
use caem_energy::codec::CodecEnergyModel;
use caem_energy::power::RadioPowerProfile;
use caem_mac::backoff::BackoffConfig;
use caem_mac::burst::BurstPolicy;
use caem_mac::tone::ToneSchedule;
use caem_phy::frame::FrameSpec;
use caem_simcore::rng::StreamRng;
use caem_simcore::time::Duration;
use serde::{Deserialize, Serialize};

/// A typed configuration error, carrying the path of the offending field.
///
/// Every variant names the field (as a dotted path into the serialized
/// configuration or spec document, with `[i]` indices into arrays) plus the
/// data needed to explain the violation, so CLIs can surface the error
/// verbatim and tests can assert on the *class* of mistake instead of
/// matching prose.  The first group of variants covers value-domain errors
/// ([`ScenarioConfig::validate`]); the second covers structural errors in
/// declarative spec documents ([`crate::spec::GridSpec`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A value that must be strictly positive was zero or negative.
    NonPositive {
        /// Dotted field path.
        path: String,
        /// The offending value.
        value: f64,
    },
    /// A value that must be non-negative was negative.
    Negative {
        /// Dotted field path.
        path: String,
        /// The offending value.
        value: f64,
    },
    /// A value outside its legal interval.
    OutOfRange {
        /// Dotted field path.
        path: String,
        /// The offending value.
        value: f64,
        /// The legal interval, in mathematical notation (e.g. `(0, 1]`).
        expected: &'static str,
    },
    /// A spec-document field no schema element matches (misspelled or
    /// unsupported) — never silently ignored.
    UnknownField {
        /// Dotted field path of the unknown key.
        path: String,
    },
    /// A required spec-document field is missing.
    MissingField {
        /// Dotted field path of the missing key.
        path: String,
    },
    /// A spec-document field holds the wrong JSON type.
    WrongType {
        /// Dotted field path.
        path: String,
        /// What the schema expects there (e.g. `"number"`, `"object"`).
        expected: &'static str,
    },
    /// An enumerated spec-document string matches no known variant.
    UnknownVariant {
        /// Dotted field path.
        path: String,
        /// The unrecognised value.
        value: String,
        /// The accepted variant names.
        expected: &'static [&'static str],
    },
    /// Two spec-document fields that cannot be given together (conflicting
    /// axes, e.g. `replicates` *and* an explicit `seeds` list).
    ConflictingFields {
        /// Dotted path of the field kept.
        path: String,
        /// Dotted path of the field it conflicts with.
        other: String,
    },
    /// An axis that must hold distinct entries holds a duplicate.
    DuplicateEntry {
        /// Dotted field path of the axis.
        path: String,
        /// The duplicated entry, rendered as text.
        value: String,
    },
    /// An axis that must be non-empty is empty.
    EmptyAxis {
        /// Dotted field path of the axis.
        path: String,
    },
    /// The spec document declares a format version this build cannot read.
    UnsupportedVersion {
        /// Dotted field path of the version marker.
        path: String,
        /// The version the document declares.
        found: u64,
        /// The version this build supports.
        supported: u64,
    },
    /// A value-domain error inside the configuration one spec scenario
    /// resolves to, wrapped with the scenario's label for context.
    InScenario {
        /// The scenario's label.
        label: String,
        /// The underlying error (paths are into the resolved config).
        source: Box<ConfigError>,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPositive { path, value } => {
                write!(f, "`{path}` must be positive (got {value})")
            }
            ConfigError::Negative { path, value } => {
                write!(f, "`{path}` must be non-negative (got {value})")
            }
            ConfigError::OutOfRange {
                path,
                value,
                expected,
            } => write!(f, "`{path}` must be in {expected} (got {value})"),
            ConfigError::UnknownField { path } => write!(f, "unknown field `{path}`"),
            ConfigError::MissingField { path } => write!(f, "missing required field `{path}`"),
            ConfigError::WrongType { path, expected } => {
                write!(f, "`{path}` must be a {expected}")
            }
            ConfigError::UnknownVariant {
                path,
                value,
                expected,
            } => write!(
                f,
                "`{path}` has unknown value `{value}` (expected one of {expected:?})"
            ),
            ConfigError::ConflictingFields { path, other } => {
                write!(
                    f,
                    "`{path}` conflicts with `{other}`; give one or the other"
                )
            }
            ConfigError::DuplicateEntry { path, value } => {
                write!(f, "`{path}` holds duplicate entry {value}")
            }
            ConfigError::EmptyAxis { path } => write!(f, "`{path}` must not be empty"),
            ConfigError::UnsupportedVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "`{path}` declares version {found} (this build reads version {supported})"
            ),
            ConfigError::InScenario { label, source } => {
                write!(f, "scenario `{label}`: {source}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl ConfigError {
    /// Wrap a value-domain error with the label of the scenario whose
    /// resolved configuration it was found in.
    pub fn in_scenario(self, label: &str) -> Self {
        ConfigError::InScenario {
            label: label.to_string(),
            source: Box::new(self),
        }
    }
}

/// `Ok(())` when `value > 0`, else [`ConfigError::NonPositive`] at `path`.
fn require_positive(path: &str, value: f64) -> Result<(), ConfigError> {
    if value > 0.0 {
        Ok(())
    } else {
        Err(ConfigError::NonPositive {
            path: path.to_string(),
            value,
        })
    }
}

/// `Ok(())` when `value >= 0`, else [`ConfigError::Negative`] at `path`.
fn require_non_negative(path: &str, value: f64) -> Result<(), ConfigError> {
    if value >= 0.0 {
        Ok(())
    } else {
        Err(ConfigError::Negative {
            path: path.to_string(),
            value,
        })
    }
}

/// Which traffic model each sensor runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// Homogeneous Poisson arrivals (the paper's workload).
    Poisson {
        /// Per-node packet generation rate (packets/second) — the "added
        /// traffic load" axis of Figs. 10–12.
        rate_pps: f64,
    },
    /// Constant bit rate arrivals.
    Cbr {
        /// Per-node packet rate (packets/second).
        rate_pps: f64,
    },
    /// Two-state bursty arrivals (event-driven sensing).
    Bursty {
        /// Rate while quiet (packets/second).
        quiet_rate_pps: f64,
        /// Rate while bursting (packets/second).
        burst_rate_pps: f64,
        /// Mean quiet sojourn (seconds).
        mean_quiet_s: f64,
        /// Mean burst sojourn (seconds).
        mean_burst_s: f64,
    },
}

impl TrafficModel {
    /// Long-run per-node packet rate.
    pub fn mean_rate_pps(&self) -> f64 {
        match *self {
            TrafficModel::Poisson { rate_pps } | TrafficModel::Cbr { rate_pps } => rate_pps,
            TrafficModel::Bursty {
                quiet_rate_pps,
                burst_rate_pps,
                mean_quiet_s,
                mean_burst_s,
            } => {
                (quiet_rate_pps * mean_quiet_s + burst_rate_pps * mean_burst_s)
                    / (mean_quiet_s + mean_burst_s)
            }
        }
    }
}

/// Deterministic time-of-day modulation applied to every node's traffic
/// source.  Default-off ([`TrafficProfile::Constant`]) so the paper's
/// stationary workload is untouched; [`TrafficProfile::Diurnal`] warps the
/// arrival process so the instantaneous rate follows a day/night cycle while
/// the long-run mean rate — and every random stream — stay exactly as
/// configured (see [`caem_traffic::profile`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficProfile {
    /// Stationary traffic (the paper's workload): no modulation.
    Constant,
    /// Sinusoidal diurnal cycle starting at its trough ("midnight") and
    /// peaking half a period later: instantaneous rate =
    /// `mean · (1 − a·cos(2πt/T))`.
    Diurnal {
        /// Cycle period `T` in seconds of virtual time.
        period_s: f64,
        /// Relative amplitude `a` in `[0, 1)`; 0.8 swings the rate between
        /// 0.2× and 1.8× the mean.
        relative_amplitude: f64,
    },
}

/// How the nodes are laid out in the field.
///
/// The paper evaluates a single uniform random deployment; real networks are
/// deployed on grids, around phenomena of interest, or along linear assets.
/// Every generator draws from the scenario's placement stream, so a given
/// seed fixes the deployment exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// Uniform random positions over the whole field (the paper's setup).
    Uniform,
    /// Jittered square grid covering the field.
    Grid {
        /// Maximum per-axis jitter from the grid point, in metres.
        jitter_m: f64,
    },
    /// Gaussian hotspot clusters: uniformly placed centres, normal scatter.
    GaussianClusters {
        /// Number of hotspot centres.
        clusters: usize,
        /// Isotropic standard deviation of the scatter around each centre (m).
        sigma_m: f64,
    },
    /// Uniform placement inside a horizontal corridor (pipeline / road /
    /// border-line monitoring), centred vertically.
    Corridor {
        /// Corridor height as a fraction of the field height, in (0, 1].
        width_fraction: f64,
    },
}

impl Topology {
    /// Generate `n` node positions inside `field` from the placement stream.
    pub fn generate(&self, field: &Field, n: usize, rng: &mut StreamRng) -> Vec<Position> {
        match *self {
            Topology::Uniform => field.random_deployment(n, rng),
            Topology::Grid { jitter_m } => field.grid_deployment(n, jitter_m, rng),
            Topology::GaussianClusters { clusters, sigma_m } => {
                field.gaussian_cluster_deployment(n, clusters, sigma_m, rng)
            }
            Topology::Corridor { width_fraction } => {
                field.corridor_deployment(n, width_fraction, rng)
            }
        }
    }

    /// Short machine-readable label used in experiment reports.
    pub fn label(&self) -> &'static str {
        match self {
            Topology::Uniform => "uniform",
            Topology::Grid { .. } => "grid",
            Topology::GaussianClusters { .. } => "gaussian_clusters",
            Topology::Corridor { .. } => "corridor",
        }
    }
}

/// Random node-failure (churn) injection: independent of battery depletion,
/// every node draws an exponential failure time (hardware fault, animal,
/// weather) and drops out of the network when it fires within the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Mean time to failure per node, in seconds.
    pub mean_time_to_failure_s: f64,
}

impl ChurnConfig {
    /// Churn with the given per-node mean time to failure (seconds).
    pub fn with_mttf_s(mean_time_to_failure_s: f64) -> Self {
        ChurnConfig {
            mean_time_to_failure_s,
        }
    }
}

/// Everything needed to run one simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Number of sensor nodes (Table II: 100).
    pub node_count: usize,
    /// Deployment field (Table II: 100 m × 100 m).
    pub field: Field,
    /// How node positions are generated inside the field.
    pub topology: Topology,
    /// Traffic model per node.
    pub traffic: TrafficModel,
    /// Time-of-day modulation of the traffic model (default
    /// [`TrafficProfile::Constant`], the paper's stationary workload).
    pub traffic_profile: TrafficProfile,
    /// Buffer capacity per node; `None` = unbounded (the Fig. 12 setup).
    pub buffer_capacity: Option<usize>,
    /// Initial battery energy per node in joules (Fig. 8/9: 10 J).
    pub initial_energy_j: f64,
    /// Per-node initial-energy heterogeneity: each node starts with
    /// `initial_energy_j · (1 + u)` where `u` is uniform in
    /// `[-spread, +spread]`.  `0.0` (the paper's setup) keeps all batteries
    /// identical and draws nothing from the heterogeneity stream.
    pub initial_energy_spread: f64,
    /// Optional random node-failure injection; `None` (the paper's setup)
    /// lets nodes die of battery depletion only.
    pub churn: Option<ChurnConfig>,
    /// Which protocol variant to run.
    pub policy: PolicyKind,
    /// CAEM parameters (K, Q_threshold, initial threshold).
    pub caem: CaemConfig,
    /// Virtual time horizon of the run.
    pub duration: Duration,
    /// Master random seed.
    pub seed: u64,
    /// LEACH round timing.
    pub round: RoundConfig,
    /// LEACH cluster-head probability (Table II: 5 %).
    pub ch_probability: f64,
    /// Radiated-power link budget.
    pub link_budget: LinkBudget,
    /// Path-loss model.
    pub path_loss: PathLossModel,
    /// Shadowing process parameters.
    pub shadowing: ShadowingConfig,
    /// Frame layout (Table II: 2-kbit packets).
    pub frame: FrameSpec,
    /// Burst sizing policy (min 3 / max 8).
    pub burst: BurstPolicy,
    /// Backoff parameters (CW = 10, slot 20 µs, r ≤ 6).
    pub backoff: BackoffConfig,
    /// Tone-channel pulse schedule (Table I).
    pub tone: ToneSchedule,
    /// Radio power consumption profile (Table II).
    pub power: RadioPowerProfile,
    /// FEC codec energy model (paper default: neglected).
    pub codec: CodecEnergyModel,
    /// Sensing delay before the first tone observation after wake-up
    /// (Table II: 8 ms).
    pub sensing_delay: Duration,
    /// How long the cluster head takes to detect an incoming burst and switch
    /// its tone broadcast from `idle` to `receive` pulses.  This is the
    /// collision vulnerability window of the tone-signalled CSMA scheme.
    pub ch_detection_delay: Duration,
    /// How often the energy tracker snapshots the network.
    pub energy_snapshot_interval: Duration,
    /// How often the fairness tracker snapshots the queues.
    pub fairness_snapshot_interval: Duration,
}

impl ScenarioConfig {
    /// The Table II scenario for a given protocol, traffic load and seed.
    pub fn paper_default(policy: PolicyKind, traffic_rate_pps: f64, seed: u64) -> Self {
        ScenarioConfig {
            node_count: 100,
            field: Field::paper_default(),
            topology: Topology::Uniform,
            traffic: TrafficModel::Poisson {
                rate_pps: traffic_rate_pps,
            },
            traffic_profile: TrafficProfile::Constant,
            buffer_capacity: Some(50),
            initial_energy_j: 10.0,
            initial_energy_spread: 0.0,
            churn: None,
            policy,
            caem: CaemConfig::paper_default(),
            duration: Duration::from_secs(600),
            seed,
            round: RoundConfig::default(),
            ch_probability: 0.05,
            link_budget: LinkBudget::paper_default(),
            path_loss: PathLossModel::paper_default(),
            shadowing: ShadowingConfig::default(),
            frame: FrameSpec::paper_default(),
            burst: BurstPolicy::paper_default(),
            backoff: BackoffConfig::paper_default(),
            tone: ToneSchedule::paper_default(),
            power: RadioPowerProfile::paper_default(),
            codec: CodecEnergyModel::paper_default(),
            sensing_delay: Duration::from_millis(8),
            ch_detection_delay: Duration::from_micros(500),
            energy_snapshot_interval: Duration::from_secs(5),
            fairness_snapshot_interval: Duration::from_secs(1),
        }
    }

    /// A smaller, faster scenario for unit/integration tests and the
    /// quickstart example: 20 nodes, 60 s horizon.
    pub fn small(policy: PolicyKind, traffic_rate_pps: f64, seed: u64) -> Self {
        let mut cfg = Self::paper_default(policy, traffic_rate_pps, seed);
        cfg.node_count = 20;
        cfg.duration = Duration::from_secs(60);
        cfg
    }

    /// A deployment scaled to `node_count` nodes at the paper's density.
    ///
    /// The Table II scenario is 100 nodes on a 100 m × 100 m field
    /// (0.01 nodes/m²); this keeps that density — the field side grows with
    /// `√(node_count / 100)` — and the head probability, so expected cluster
    /// size and contention per cluster stay at paper scale while the network
    /// grows.  This is the constructor the stress/soak harness and the
    /// node-count scaling benchmarks use for 10⁴–10⁶-node runs.
    pub fn scaled(node_count: usize, policy: PolicyKind, traffic_rate_pps: f64, seed: u64) -> Self {
        let mut cfg = Self::paper_default(policy, traffic_rate_pps, seed);
        assert!(node_count > 0, "scaled scenario needs nodes");
        let side = 100.0 * (node_count as f64 / 100.0).sqrt();
        cfg.node_count = node_count;
        cfg.field = Field::new(side, side);
        cfg
    }

    /// Set the simulated horizon (builder style).
    pub fn with_duration(mut self, duration: Duration) -> Self {
        self.duration = duration;
        self
    }

    /// Set the per-node traffic rate, keeping the traffic model kind.
    pub fn with_traffic_rate(mut self, rate_pps: f64) -> Self {
        self.traffic = match self.traffic {
            TrafficModel::Poisson { .. } => TrafficModel::Poisson { rate_pps },
            TrafficModel::Cbr { .. } => TrafficModel::Cbr { rate_pps },
            bursty => bursty,
        };
        self
    }

    /// Use an unbounded buffer (the Fig. 12 fairness configuration).
    pub fn with_unbounded_buffers(mut self) -> Self {
        self.buffer_capacity = None;
        self
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the protocol variant under test, keeping everything else (and in
    /// particular the seed, hence the channel/traffic realisation) fixed —
    /// the common-random-numbers pairing the experiment grid relies on.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Set the deployment topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Modulate every node's traffic with a diurnal cycle of the given
    /// period (seconds) and relative amplitude in `[0, 1)`; the cycle starts
    /// at its trough and the long-run mean rate is unchanged.
    pub fn with_diurnal_traffic(mut self, period_s: f64, relative_amplitude: f64) -> Self {
        self.traffic_profile = TrafficProfile::Diurnal {
            period_s,
            relative_amplitude,
        };
        self
    }

    /// Set the per-node initial-energy spread fraction (see
    /// [`ScenarioConfig::initial_energy_spread`]).
    pub fn with_energy_spread(mut self, spread: f64) -> Self {
        self.initial_energy_spread = spread;
        self
    }

    /// Enable random node-failure injection with the given per-node mean
    /// time to failure (seconds).
    pub fn with_churn_mttf_s(mut self, mean_time_to_failure_s: f64) -> Self {
        self.churn = Some(ChurnConfig::with_mttf_s(mean_time_to_failure_s));
        self
    }

    /// Initial capacity for the pending-event queue, sized so the queue never
    /// regrows under this scenario's load.
    ///
    /// Peak occupancy is bounded by the simultaneously pending event classes:
    /// one traffic arrival per node (sources schedule exactly one ahead), at
    /// most one MAC timer (sense or backoff) per non-head node, one
    /// transmission-completion per in-flight burst (bounded by the cluster
    /// count, itself bounded by `ch_probability`-scaled expectations), and the
    /// three periodic housekeeping events.  Heavier traffic widens the MAC
    /// duty cycle towards its one-timer-per-node bound rather than adding
    /// queue entries, so the capacity formula needs the node count, the
    /// cluster expectation, and constant slack — not the raw packet rate.
    pub fn initial_queue_capacity(&self) -> usize {
        let expected_heads = (self.node_count as f64 * self.ch_probability).ceil() as usize;
        // One arrival + one MAC timer per node, one completion per possible
        // concurrent burst, housekeeping, plus 25% headroom for transients
        // around round boundaries (stale timers coexisting with fresh ones).
        let peak = 2 * self.node_count + expected_heads + 8;
        peak + peak / 4
    }

    /// Sanity-check the configuration.  Never panics: every violation is
    /// returned as a typed [`ConfigError`] carrying the offending field's
    /// path, so CLIs surface it verbatim and callers can match on the class
    /// of mistake.  The runner validates (and panics on `Err`, since by then
    /// the configuration should have been checked) before deploying.
    pub fn validate(&self) -> Result<(), ConfigError> {
        require_positive("node_count", self.node_count as f64)?;
        require_positive("initial_energy_j", self.initial_energy_j)?;
        require_positive("traffic.mean_rate_pps", self.traffic.mean_rate_pps())?;
        if let TrafficProfile::Diurnal {
            period_s,
            relative_amplitude,
        } = self.traffic_profile
        {
            require_positive("traffic_profile.period_s", period_s)?;
            if !(0.0..1.0).contains(&relative_amplitude) {
                return Err(ConfigError::OutOfRange {
                    path: "traffic_profile.relative_amplitude".to_string(),
                    value: relative_amplitude,
                    expected: "[0, 1)",
                });
            }
        }
        if !(self.ch_probability > 0.0 && self.ch_probability <= 1.0) {
            return Err(ConfigError::OutOfRange {
                path: "ch_probability".to_string(),
                value: self.ch_probability,
                expected: "(0, 1]",
            });
        }
        if self.duration.is_zero() {
            return Err(ConfigError::NonPositive {
                path: "duration".to_string(),
                value: 0.0,
            });
        }
        if !(0.0..1.0).contains(&self.initial_energy_spread) {
            return Err(ConfigError::OutOfRange {
                path: "initial_energy_spread".to_string(),
                value: self.initial_energy_spread,
                expected: "[0, 1)",
            });
        }
        if let Some(churn) = &self.churn {
            require_positive("churn.mean_time_to_failure_s", churn.mean_time_to_failure_s)?;
        }
        match self.topology {
            Topology::Uniform => {}
            Topology::Grid { jitter_m } => {
                require_non_negative("topology.jitter_m", jitter_m)?;
            }
            Topology::GaussianClusters { clusters, sigma_m } => {
                require_positive("topology.clusters", clusters as f64)?;
                require_non_negative("topology.sigma_m", sigma_m)?;
            }
            Topology::Corridor { width_fraction } => {
                if !(width_fraction > 0.0 && width_fraction <= 1.0) {
                    return Err(ConfigError::OutOfRange {
                        path: "topology.width_fraction".to_string(),
                        value: width_fraction,
                        expected: "(0, 1]",
                    });
                }
            }
        }
        if self.energy_snapshot_interval.is_zero() {
            return Err(ConfigError::NonPositive {
                path: "energy_snapshot_interval".to_string(),
                value: 0.0,
            });
        }
        if self.fairness_snapshot_interval.is_zero() {
            return Err(ConfigError::NonPositive {
                path: "fairness_snapshot_interval".to_string(),
                value: 0.0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_ii() {
        let cfg = ScenarioConfig::paper_default(PolicyKind::Scheme1Adaptive, 5.0, 1);
        assert_eq!(cfg.node_count, 100);
        assert_eq!(cfg.field.width, 100.0);
        assert_eq!(cfg.buffer_capacity, Some(50));
        assert_eq!(cfg.initial_energy_j, 10.0);
        assert_eq!(cfg.ch_probability, 0.05);
        assert_eq!(cfg.frame.payload_bits, 2_000);
        assert_eq!(cfg.backoff.contention_window, 10);
        assert_eq!(cfg.sensing_delay, Duration::from_millis(8));
        assert_eq!(cfg.traffic.mean_rate_pps(), 5.0);
        cfg.validate().expect("Table II config is valid");
    }

    #[test]
    fn builders_modify_fields() {
        let cfg = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 2)
            .with_duration(Duration::from_secs(30))
            .with_traffic_rate(12.0)
            .with_unbounded_buffers()
            .with_seed(99);
        assert_eq!(cfg.node_count, 20);
        assert_eq!(cfg.duration, Duration::from_secs(30));
        assert_eq!(cfg.traffic.mean_rate_pps(), 12.0);
        assert_eq!(cfg.buffer_capacity, None);
        assert_eq!(cfg.seed, 99);
        cfg.validate().expect("builder output is valid");
    }

    #[test]
    fn queue_capacity_scales_with_the_deployment() {
        let small = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 1);
        let paper = ScenarioConfig::paper_default(PolicyKind::PureLeach, 5.0, 1);
        let small_cap = small.initial_queue_capacity();
        let paper_cap = paper.initial_queue_capacity();
        // At least one arrival and one MAC timer per node, plus headroom.
        assert!(small_cap > 2 * small.node_count);
        assert!(paper_cap > 2 * paper.node_count);
        assert!(paper_cap > small_cap);
    }

    #[test]
    fn bursty_mean_rate() {
        let t = TrafficModel::Bursty {
            quiet_rate_pps: 2.0,
            burst_rate_pps: 42.0,
            mean_quiet_s: 9.0,
            mean_burst_s: 1.0,
        };
        assert!((t.mean_rate_pps() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn config_serializes_round_trip() {
        let cfg = ScenarioConfig::paper_default(PolicyKind::Scheme2Fixed, 10.0, 7);
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: ScenarioConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.node_count, cfg.node_count);
        assert_eq!(back.policy, cfg.policy);
        assert_eq!(back.seed, cfg.seed);
    }

    #[test]
    fn zero_nodes_fails_validation_with_a_field_path() {
        let mut cfg = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 1);
        cfg.node_count = 0;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::NonPositive {
                path: "node_count".to_string(),
                value: 0.0
            })
        );
    }

    #[test]
    fn scenario_diversity_builders() {
        let cfg = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 3)
            .with_policy(PolicyKind::Scheme2Fixed)
            .with_topology(Topology::GaussianClusters {
                clusters: 3,
                sigma_m: 10.0,
            })
            .with_energy_spread(0.3)
            .with_churn_mttf_s(900.0);
        assert_eq!(cfg.policy, PolicyKind::Scheme2Fixed);
        assert_eq!(cfg.topology.label(), "gaussian_clusters");
        assert_eq!(cfg.initial_energy_spread, 0.3);
        assert_eq!(
            cfg.churn,
            Some(ChurnConfig {
                mean_time_to_failure_s: 900.0
            })
        );
        cfg.validate().expect("diverse config is valid");
    }

    #[test]
    fn every_topology_generates_in_field_and_deterministically() {
        use caem_simcore::rng::StreamRng;
        let field = Field::paper_default();
        for topology in [
            Topology::Uniform,
            Topology::Grid { jitter_m: 2.0 },
            Topology::GaussianClusters {
                clusters: 4,
                sigma_m: 12.0,
            },
            Topology::Corridor {
                width_fraction: 0.25,
            },
        ] {
            let a = topology.generate(&field, 60, &mut StreamRng::from_seed_u64(9));
            let b = topology.generate(&field, 60, &mut StreamRng::from_seed_u64(9));
            assert_eq!(a.len(), 60);
            assert!(a.iter().all(|p| field.contains(p)), "{topology:?}");
            assert_eq!(a, b, "{topology:?} must be seed-deterministic");
        }
    }

    #[test]
    fn diverse_config_serializes_round_trip() {
        let cfg = ScenarioConfig::paper_default(PolicyKind::Scheme1Adaptive, 8.0, 4)
            .with_topology(Topology::Corridor {
                width_fraction: 0.2,
            })
            .with_energy_spread(0.25)
            .with_churn_mttf_s(1_200.0);
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: ScenarioConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.topology, cfg.topology);
        assert_eq!(back.initial_energy_spread, cfg.initial_energy_spread);
        assert_eq!(back.churn, cfg.churn);
    }

    #[test]
    fn diurnal_builder_sets_profile_and_round_trips() {
        let cfg =
            ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 4).with_diurnal_traffic(600.0, 0.8);
        assert_eq!(
            cfg.traffic_profile,
            TrafficProfile::Diurnal {
                period_s: 600.0,
                relative_amplitude: 0.8
            }
        );
        assert_eq!(cfg.traffic.mean_rate_pps(), 5.0, "mean load unchanged");
        cfg.validate().expect("diurnal config is valid");
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: ScenarioConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.traffic_profile, cfg.traffic_profile);
    }

    #[test]
    fn diurnal_amplitude_of_one_fails_validation() {
        let mut cfg = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 1);
        cfg.traffic_profile = TrafficProfile::Diurnal {
            period_s: 600.0,
            relative_amplitude: 1.0,
        };
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::OutOfRange {
                path: "traffic_profile.relative_amplitude".to_string(),
                value: 1.0,
                expected: "[0, 1)"
            })
        );
    }

    #[test]
    fn energy_spread_of_one_fails_validation() {
        let mut cfg = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 1);
        cfg.initial_energy_spread = 1.0;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::OutOfRange {
                path: "initial_energy_spread".to_string(),
                value: 1.0,
                expected: "[0, 1)"
            })
        );
    }

    #[test]
    fn config_error_display_carries_the_field_path_verbatim() {
        let e = ConfigError::OutOfRange {
            path: "ch_probability".to_string(),
            value: 1.5,
            expected: "(0, 1]",
        };
        assert_eq!(
            e.to_string(),
            "`ch_probability` must be in (0, 1] (got 1.5)"
        );
        let wrapped = e.in_scenario("grid_5pps");
        assert_eq!(
            wrapped.to_string(),
            "scenario `grid_5pps`: `ch_probability` must be in (0, 1] (got 1.5)"
        );
        assert_eq!(
            ConfigError::UnknownField {
                path: "scenarios[2].chrun_mttf_s".to_string()
            }
            .to_string(),
            "unknown field `scenarios[2].chrun_mttf_s`"
        );
    }
}
