//! Result persistence for experiment grids: a per-grid JSONL store that
//! turns the flat job list into a durable, resumable asset.
//!
//! Every completed (scenario × policy × seed) job is streamed to disk as one
//! [`JobRecord`] line, keyed by its deterministic coordinates — scenario
//! index/label, policy index, seed — plus an FNV-1a hash of the fully
//! resolved [`ScenarioConfig`].  The hash is the staleness guard: a record
//! only counts as "already computed" if the configuration that produced it is
//! byte-identical to the one the current grid would run, so editing a
//! scenario transparently invalidates exactly the affected cells.
//!
//! The format is append-only JSONL on purpose:
//!
//! * a crash can only tear the **trailing** line, which the loader skips with
//!   a warning (the job simply re-runs on resume);
//! * duplicate keys are resolved **last-record-wins**, so re-running a stale
//!   job just appends the fresh record without rewriting history;
//! * aggregation never depends on file order — reports are always built in
//!   the canonical (scenario, policy, seed) order, so a resumed grid whose
//!   jobs completed in a different interleaving still reproduces the
//!   uninterrupted report bit-for-bit.
//!
//! Metric values are persisted as `Option<f64>` (`None` for the non-finite
//! values an undefined ratio produces) and travel through the vendored
//! `serde_json`'s shortest-round-trip float formatting, so a decoded record
//! feeds the Welford accumulators the exact bits the in-memory run would.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use caem::policy::PolicyKind;
use serde::{Deserialize, Serialize};

use crate::collect::CollectorSink;
use crate::config::ScenarioConfig;
use crate::experiment::{replicate_metrics, ExperimentJob, METRIC_NAMES};
use crate::faults::{self, retry_transient, RetryPolicy, RunEvent, StoreIo};
use crate::result::SimulationResult;

/// Store format version written into the header line.
pub const STORE_VERSION: u64 = 1;

/// Deterministic job coordinates: (scenario index, policy index, seed).
pub type JobKey = (usize, usize, u64);

/// FNV-1a 64-bit hash of a byte string.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Deterministic hash of a fully resolved scenario configuration (the JSON
/// serialization hashed with FNV-1a).  Two configs hash equal iff every
/// field — node count, topology, churn, policy, seed, … — matches, which is
/// exactly the "this persisted result is still valid" criterion.
///
/// The hash is derived from the **canonical resolved spec**: the same
/// fully resolved configs a declarative [`crate::spec::GridSpec`] resolves
/// to and `experiment --print-spec` dumps.  A spec-file grid and the
/// identical code-built grid therefore share store records (and the
/// distributed manifest's validity filter) interchangeably.
pub fn config_hash(config: &ScenarioConfig) -> u64 {
    let text = serde_json::to_string(config).expect("scenario configs always serialize");
    fnv1a64(text.as_bytes())
}

/// One persisted job result: the JSONL encoding of a [`SimulationResult`]
/// at its grid coordinates.
///
/// `metrics` holds one entry per [`METRIC_NAMES`] slot, `None` where the
/// replicate produced a non-finite value (e.g. energy-per-packet with zero
/// deliveries).  The delay quantiles are `None` when the distribution is
/// empty or the quantile falls in the delay histogram's overflow region —
/// persisting the `None` keeps "unknown, ≥ range" distinguishable from a
/// real value after a round-trip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Index of the scenario in the grid's scenario list.
    pub scenario_index: usize,
    /// The scenario's label (carried so offline re-aggregation needs no spec).
    pub scenario: String,
    /// Index of the policy in the grid's policy list.
    pub policy_index: usize,
    /// The protocol variant that was run.
    pub policy: PolicyKind,
    /// Master seed of the replicate.
    pub seed: u64,
    /// [`config_hash`] of the resolved configuration that produced this
    /// record — the staleness guard consulted on resume.
    pub config_hash: u64,
    /// One value per [`METRIC_NAMES`] entry; `None` encodes a non-finite
    /// replicate value.
    pub metrics: Vec<Option<f64>>,
    /// Packets generated in this replicate.
    pub generated: u64,
    /// Packets delivered in this replicate.
    pub delivered: u64,
    /// Discrete events the run processed.
    pub events_processed: u64,
    /// Virtual end time of the run in nanoseconds.
    pub end_time_nanos: u64,
    /// Median end-to-end delay (ms), if defined and in the histogram range.
    pub delay_p50_ms: Option<f64>,
    /// 95th-percentile delay (ms), `None` when it falls in the overflow bin.
    pub delay_p95_ms: Option<f64>,
    /// 99th-percentile delay (ms), `None` when it falls in the overflow bin.
    pub delay_p99_ms: Option<f64>,
}

impl JobRecord {
    /// Encode one completed job's result at the given grid coordinates.
    pub fn from_result(
        scenario: &str,
        policy_index: usize,
        job: &ExperimentJob,
        result: &SimulationResult,
    ) -> Self {
        let metrics = replicate_metrics(result)
            .iter()
            .map(|&v| v.is_finite().then_some(v))
            .collect();
        JobRecord {
            scenario_index: job.scenario,
            scenario: scenario.to_string(),
            policy_index,
            policy: job.policy,
            seed: job.seed,
            config_hash: config_hash(&job.config),
            metrics,
            generated: result.perf.generated(),
            delivered: result.perf.delivered(),
            events_processed: result.events_processed,
            end_time_nanos: result.end_time.as_nanos(),
            delay_p50_ms: result.perf.delay_quantile_ms(0.5),
            delay_p95_ms: result.perf.delay_quantile_ms(0.95),
            delay_p99_ms: result.perf.delay_quantile_ms(0.99),
        }
    }

    /// The record's deterministic coordinates.
    pub fn key(&self) -> JobKey {
        (self.scenario_index, self.policy_index, self.seed)
    }

    /// The replicate's metric vector in [`METRIC_NAMES`] order, with `None`
    /// (and any missing trailing slot) decoded back to NaN — the exact shape
    /// [`crate::experiment::ExperimentCell`] absorbs, which skips non-finite
    /// entries.
    pub fn metric_array(&self) -> [f64; METRIC_NAMES.len()] {
        let mut out = [f64::NAN; METRIC_NAMES.len()];
        for (slot, value) in out.iter_mut().zip(&self.metrics) {
            *slot = value.unwrap_or(f64::NAN);
        }
        out
    }
}

/// A quarantined job: one that kept panicking or blowing its wall-clock
/// budget until its retry budget ran out.  Failures persist to the store as
/// their own JSONL line type so a resumed grid neither re-runs a poison job
/// forever nor silently forgets that a cell is missing replicates — the
/// report carries them in its degradation section instead.
///
/// A failure never shadows a success: if any worker (or a later resume)
/// completes the job, the success record wins at aggregation time.
#[derive(Debug, Clone, PartialEq)]
pub struct JobFailure {
    /// Index of the scenario in the grid's scenario list.
    pub scenario_index: usize,
    /// The scenario's label.
    pub scenario: String,
    /// Index of the policy in the grid's policy list.
    pub policy_index: usize,
    /// The protocol variant that failed.
    pub policy: PolicyKind,
    /// Master seed of the failed replicate.
    pub seed: u64,
    /// [`config_hash`] of the configuration under which the job failed —
    /// the same staleness guard success records carry, so editing the
    /// scenario clears its quarantine.
    pub config_hash: u64,
    /// How many times the job was attempted before quarantine.
    pub attempts: u32,
    /// Why the final attempt failed (panic payload or budget overrun).
    pub reason: String,
}

impl JobFailure {
    /// The failure's deterministic coordinates.
    pub fn key(&self) -> JobKey {
        (self.scenario_index, self.policy_index, self.seed)
    }
}

/// The wire form of a [`JobFailure`]: the `caem_job_failure` marker field
/// lets the loader route the line before attempting a [`JobRecord`] decode
/// (the vendored derive has no `#[serde(tag)]`, so the marker is explicit).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FailureLine {
    caem_job_failure: u64,
    scenario_index: usize,
    scenario: String,
    policy_index: usize,
    policy: PolicyKind,
    seed: u64,
    config_hash: u64,
    attempts: u32,
    reason: String,
}

impl From<&JobFailure> for FailureLine {
    fn from(f: &JobFailure) -> Self {
        FailureLine {
            caem_job_failure: 1,
            scenario_index: f.scenario_index,
            scenario: f.scenario.clone(),
            policy_index: f.policy_index,
            policy: f.policy,
            seed: f.seed,
            config_hash: f.config_hash,
            attempts: f.attempts,
            reason: f.reason.clone(),
        }
    }
}

impl From<FailureLine> for JobFailure {
    fn from(l: FailureLine) -> Self {
        JobFailure {
            scenario_index: l.scenario_index,
            scenario: l.scenario,
            policy_index: l.policy_index,
            policy: l.policy,
            seed: l.seed,
            config_hash: l.config_hash,
            attempts: l.attempts,
            reason: l.reason,
        }
    }
}

/// Durability knobs for a writable store.
#[derive(Debug, Clone, Default)]
pub struct StoreOptions {
    /// fsync after every appended line (`--fsync`).  Off by default: the
    /// append-only format already confines an OS crash to a torn trailing
    /// line, so per-append fsync only buys protection against *power* loss
    /// at a large throughput cost.
    pub fsync: bool,
}

/// Header line identifying a store file: format version plus the metric
/// vocabulary the records were written under.  A store whose metric list no
/// longer matches [`METRIC_NAMES`] refuses to load instead of silently
/// mis-aggregating columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoreHeader {
    caem_experiment_store: u64,
    metric_names: Vec<String>,
}

/// Errors raised while opening, reading or appending to a store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file exists but is not a compatible experiment store.
    Format(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "experiment store I/O error: {e}"),
            StoreError::Format(m) => write!(f, "experiment store format error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// A per-grid JSONL result store: completed job records indexed by their
/// deterministic coordinates, plus (when opened writable) an append handle
/// that streams new records to disk as they finish.
pub struct ExperimentStore {
    path: PathBuf,
    /// Deduplicated records, last-record-wins per key.
    records: Vec<JobRecord>,
    index: HashMap<JobKey, usize>,
    /// Quarantined jobs, last-failure-wins per key.
    failures: Vec<JobFailure>,
    failure_index: HashMap<JobKey, usize>,
    skipped_lines: usize,
    /// The file ends in a torn (newline-less) fragment; the first append
    /// must emit a newline first or it would fuse with the fragment and
    /// corrupt itself.
    torn_tail: bool,
    /// Records appended through this handle (loads don't count).
    appended: usize,
    writer: Option<File>,
    /// The append seam: the production passthrough, or the active chaos
    /// wrapper, captured once at open time.
    io: Arc<dyn StoreIo>,
    fsync: bool,
    retry: RetryPolicy,
}

impl ExperimentStore {
    /// Open (or create) a writable store at `path`, loading every valid
    /// record already on disk.  Corrupt or torn lines — the signature of a
    /// crash mid-append — are skipped with a warning on stderr and counted
    /// in [`ExperimentStore::skipped_lines`]; the affected jobs simply
    /// re-run on resume.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(path, StoreOptions::default())
    }

    /// [`ExperimentStore::open`] with explicit durability options.
    pub fn open_with(path: impl AsRef<Path>, options: StoreOptions) -> Result<Self, StoreError> {
        let mut store = Self::read(path.as_ref())?;
        store.fsync = options.fsync;
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&store.path)?;
        if file.metadata()?.len() == 0 {
            let header = StoreHeader {
                caem_experiment_store: STORE_VERSION,
                metric_names: METRIC_NAMES.iter().map(|&m| m.to_string()).collect(),
            };
            let line = encode_line(&header)?;
            append_line_with_recovery(&*store.io, &store.retry, &mut file, &line, store.fsync)?;
        } else if store.torn_tail {
            // A crash tore the final line; terminate it so the next record
            // starts on a line of its own instead of fusing with the
            // fragment (which would corrupt the *new* record too).
            file.write_all(b"\n")?;
            store.torn_tail = false;
        }
        store.writer = Some(file);
        Ok(store)
    }

    /// Load a store read-only (offline re-aggregation).  Errors if the file
    /// does not exist; appending to a store loaded this way panics.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref();
        if !path.exists() {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no experiment store at {}", path.display()),
            )));
        }
        Self::read(path)
    }

    fn read(path: &Path) -> Result<Self, StoreError> {
        let mut store = ExperimentStore {
            path: path.to_path_buf(),
            records: Vec::new(),
            index: HashMap::new(),
            failures: Vec::new(),
            failure_index: HashMap::new(),
            skipped_lines: 0,
            torn_tail: false,
            appended: 0,
            writer: None,
            io: faults::store_io(),
            fsync: false,
            retry: RetryPolicy::default(),
        };
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(e.into()),
        };
        store.torn_tail = !text.is_empty() && !text.ends_with('\n');
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = match serde_json::parse(line) {
                Ok(value) => value,
                Err(e) => {
                    store.skip_line(lineno, &format!("unparseable line ({e})"));
                    continue;
                }
            };
            if value.get("caem_job_failure").is_some() {
                match serde_json::from_value::<FailureLine>(value) {
                    Ok(line) => store.insert_failure(line.into()),
                    Err(e) => store.skip_line(lineno, &format!("undecodable failure record ({e})")),
                }
                continue;
            }
            if value.get("caem_experiment_store").is_some() {
                let header: StoreHeader = serde_json::from_value(value)
                    .map_err(|e| StoreError::Format(format!("bad store header: {e}")))?;
                if header.caem_experiment_store != STORE_VERSION {
                    return Err(StoreError::Format(format!(
                        "store version {} (this build reads version {STORE_VERSION})",
                        header.caem_experiment_store
                    )));
                }
                if header.metric_names != METRIC_NAMES {
                    return Err(StoreError::Format(
                        "store was written under a different metric vocabulary".into(),
                    ));
                }
                continue;
            }
            match serde_json::from_value::<JobRecord>(value) {
                Ok(record) if record.metrics.len() == METRIC_NAMES.len() => {
                    store.insert(record);
                }
                Ok(record) => {
                    store.skip_line(
                        lineno,
                        &format!(
                            "record with {} metric slots (expected {})",
                            record.metrics.len(),
                            METRIC_NAMES.len()
                        ),
                    );
                }
                Err(e) => {
                    store.skip_line(lineno, &format!("undecodable record ({e})"));
                }
            }
        }
        Ok(store)
    }

    fn skip_line(&mut self, lineno: usize, why: &str) {
        self.skipped_lines += 1;
        faults::note_event(RunEvent::TornLineSkipped);
        eprintln!(
            "warning: {}:{}: skipping {} — the job will re-run",
            self.path.display(),
            lineno + 1,
            why
        );
    }

    /// Index a record in memory, last-record-wins per key (the incremental
    /// counterpart of [`dedupe_last_wins`], sharing its index shape).
    fn insert(&mut self, record: JobRecord) {
        insert_last_wins(&mut self.records, &mut self.index, record);
    }

    /// Index a failure in memory, last-failure-wins per key.
    fn insert_failure(&mut self, failure: JobFailure) {
        match self.failure_index.entry(failure.key()) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                self.failures[*slot.get()] = failure;
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(self.failures.len());
                self.failures.push(failure);
            }
        }
    }

    /// The completed record at `key`, but only if it was produced by a
    /// configuration hashing to `expected_hash` **and** carries the
    /// scenario label the spec uses now — stale records (the spec changed
    /// under the store) are ignored so the job re-runs.  The label check
    /// matters because labels live in [`crate::experiment::ScenarioSpec`],
    /// outside the hashed [`ScenarioConfig`]: without it a renamed scenario
    /// would reuse records carrying the old name and produce a report whose
    /// cells contradict the spec.
    pub fn get(&self, key: JobKey, expected_hash: u64, expected_label: &str) -> Option<&JobRecord> {
        self.index
            .get(&key)
            .map(|&i| &self.records[i])
            .filter(|r| r.config_hash == expected_hash && r.scenario == expected_label)
    }

    /// Append one record: a single JSONL line written in one `write_all`
    /// call (a crash can tear the trailing line but never interleave two),
    /// then indexed in memory.  Transient IO failures are retried with
    /// backoff; a retry first newline-terminates whatever fragment the
    /// failed attempt may have torn into the file, so the rewrite can never
    /// fuse with it (the fragment loads back as one skipped line).
    pub fn append(&mut self, record: JobRecord) -> Result<(), StoreError> {
        let line = encode_line(&record)?;
        let file = self
            .writer
            .as_mut()
            .expect("append on a store opened read-only");
        append_line_with_recovery(&*self.io, &self.retry, file, &line, self.fsync)?;
        self.appended += 1;
        self.insert(record);
        Ok(())
    }

    /// Append one quarantine record ([`JobFailure`]), with the same retry
    /// and torn-write recovery as [`ExperimentStore::append`].
    pub fn append_failure(&mut self, failure: JobFailure) -> Result<(), StoreError> {
        let line = encode_line(&FailureLine::from(&failure))?;
        let file = self
            .writer
            .as_mut()
            .expect("append on a store opened read-only");
        append_line_with_recovery(&*self.io, &self.retry, file, &line, self.fsync)?;
        self.insert_failure(failure);
        Ok(())
    }

    /// Run a parallel fan-out with a **lock-free** record sink: `f` gets a
    /// [`CollectorSink`] that workers share by reference, while a dedicated
    /// drainer thread owns the store file and writes coalesced line batches
    /// through the usual IO seam (see [`crate::collect`] for the
    /// architecture and crash-semantics argument).  Records written through
    /// the sink are **not** indexed in memory; the caller indexes them
    /// afterwards with [`ExperimentStore::note_record`].
    ///
    /// Returns `f`'s result, or the first IO error the drainer hit (every
    /// append after a fatal error is dropped — the grid re-runs those jobs
    /// on resume, exactly like a crash at that point).
    pub fn with_parallel_sink<R>(
        &mut self,
        f: impl FnOnce(&CollectorSink) -> R,
    ) -> Result<R, StoreError> {
        self.with_buffered_sink(0, f)
    }

    /// [`ExperimentStore::with_parallel_sink`] with an explicit worker-side
    /// buffer threshold: each worker thread batches encoded lines locally
    /// until they exceed `flush_bytes`, trading a larger crash-loss window
    /// for fewer channel operations.  The engine uses 0 (ship every record
    /// immediately); the saturation benchmark exercises both settings.
    pub fn with_buffered_sink<R>(
        &mut self,
        flush_bytes: usize,
        f: impl FnOnce(&CollectorSink) -> R,
    ) -> Result<R, StoreError> {
        let io = Arc::clone(&self.io);
        let retry = self.retry.clone();
        let fsync = self.fsync;
        let file = self
            .writer
            .as_mut()
            .expect("streaming into a store opened read-only");
        crate::collect::run_collector(io, retry, fsync, flush_bytes, file, f)
    }

    /// The pre-collector sink: a thread-shareable handle that serializes
    /// every append through one `Mutex<&mut File>`.  Retained as the
    /// contended **baseline** the saturation benchmark and the equivalence
    /// tests compare the lock-free path against; the engine itself streams
    /// through [`ExperimentStore::with_parallel_sink`].
    pub fn mutex_sink(&mut self) -> MutexSink<'_> {
        MutexSink {
            io: Arc::clone(&self.io),
            fsync: self.fsync,
            retry: self.retry.clone(),
            file: Mutex::new(
                self.writer
                    .as_mut()
                    .expect("streaming into a store opened read-only"),
            ),
        }
    }

    /// Index a record that was already streamed to disk through a sink.
    pub(crate) fn note_record(&mut self, record: JobRecord) {
        self.appended += 1;
        self.insert(record);
    }

    /// Index a failure that was already streamed to disk through a sink.
    pub(crate) fn note_failure(&mut self, failure: JobFailure) {
        self.insert_failure(failure);
    }

    /// Number of distinct completed jobs on record.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Number of records appended since this handle was opened — the "jobs
    /// simulated this session" figure.  Unlike `len()` deltas, this counts
    /// stale jobs that re-ran and overwrote their key in place.
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// True when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of corrupt/undecodable lines skipped while loading.
    pub fn skipped_lines(&self) -> usize {
        self.skipped_lines
    }

    /// The deduplicated records (arbitrary order; aggregation sorts
    /// canonically).
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// The deduplicated quarantine records (last failure per key).
    pub fn failures(&self) -> &[JobFailure] {
        &self.failures
    }

    /// The quarantine record at `key` under the current config hash and
    /// scenario label — the same staleness filter [`ExperimentStore::get`]
    /// applies, so an edited scenario clears its quarantine and the job
    /// re-runs.
    pub fn get_failure(
        &self,
        key: JobKey,
        expected_hash: u64,
        expected_label: &str,
    ) -> Option<&JobFailure> {
        self.failure_index
            .get(&key)
            .map(|&i| &self.failures[i])
            .filter(|f| f.config_hash == expected_hash && f.scenario == expected_label)
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rebuild an [`crate::experiment::ExperimentReport`] purely from the
    /// persisted records — no spec, no simulation.  Records are aggregated
    /// in the canonical (scenario, policy, seed) order, so the result is
    /// bit-identical to the report of the grid run that wrote the store.
    pub fn rebuild_report(&self) -> crate::experiment::ExperimentReport {
        let mut report =
            crate::experiment::ExperimentReport::from_records(self.records.iter().cloned());
        // Standing quarantines (no success record for the key) surface in
        // the rebuilt report's degradation section too.
        report.failures = self
            .failures
            .iter()
            .filter(|f| !self.index.contains_key(&f.key()))
            .cloned()
            .collect();
        report.failures.sort_by_key(JobFailure::key);
        report
    }
}

/// The single definition of the store's duplicate-key rule: keep one record
/// per [`JobKey`], the **last** one seen winning — matching append-order
/// semantics, where a re-run job's fresh record supersedes its stale one.
fn insert_last_wins(
    records: &mut Vec<JobRecord>,
    index: &mut HashMap<JobKey, usize>,
    record: JobRecord,
) {
    match index.entry(record.key()) {
        std::collections::hash_map::Entry::Occupied(slot) => {
            records[*slot.get()] = record;
        }
        std::collections::hash_map::Entry::Vacant(slot) => {
            slot.insert(records.len());
            records.push(record);
        }
    }
}

/// Collapse an arbitrary record stream to one record per job key
/// (last-record-wins, first-seen order preserved) — the batch counterpart
/// of the store's incremental indexing, used by report aggregation.
pub(crate) fn dedupe_last_wins<I: IntoIterator<Item = JobRecord>>(records: I) -> Vec<JobRecord> {
    let mut deduped = Vec::new();
    let mut index = HashMap::new();
    for record in records {
        insert_last_wins(&mut deduped, &mut index, record);
    }
    deduped
}

/// One decoded store line: a success record or a quarantine.
pub(crate) enum DecodedLine {
    /// A completed job's [`JobRecord`].
    Record(JobRecord),
    /// A quarantined job's [`JobFailure`].
    Failure(JobFailure),
}

/// Decode one JSONL store line (the inverse of [`encode_line`] /
/// [`encode_failure_line`], routing on the `caem_job_failure` marker exactly
/// like [`ExperimentStore::load`]).  The service daemon uses this to decode
/// record batches that arrived over a socket instead of from a file.
pub(crate) fn decode_line(text: &str) -> Result<DecodedLine, StoreError> {
    let value = serde_json::parse(text)
        .map_err(|e| StoreError::Format(format!("unparseable record line ({e})")))?;
    if value.get("caem_job_failure").is_some() {
        let line: FailureLine = serde_json::from_value(value)
            .map_err(|e| StoreError::Format(format!("undecodable failure record ({e})")))?;
        return Ok(DecodedLine::Failure(line.into()));
    }
    let record: JobRecord = serde_json::from_value(value)
        .map_err(|e| StoreError::Format(format!("undecodable record ({e})")))?;
    if record.metrics.len() != METRIC_NAMES.len() {
        return Err(StoreError::Format(format!(
            "record with {} metric slots (expected {})",
            record.metrics.len(),
            METRIC_NAMES.len()
        )));
    }
    Ok(DecodedLine::Record(record))
}

/// Serialize `value` as one newline-terminated JSONL line.
pub(crate) fn encode_line<T: Serialize>(value: &T) -> Result<Vec<u8>, StoreError> {
    let mut line = Vec::with_capacity(256);
    serde_json::to_writer(&mut line, value)
        .map_err(|e| StoreError::Format(format!("record serialization failed: {e}")))?;
    line.push(b'\n');
    Ok(line)
}

/// Serialize a quarantine record in its tagged on-disk framing.
pub(crate) fn encode_failure_line(failure: &JobFailure) -> Result<Vec<u8>, StoreError> {
    encode_line(&FailureLine::from(failure))
}

/// Append one encoded line through the IO seam, retrying transient failures
/// under `retry`.  Every retry attempt first newline-terminates the file:
/// a failed attempt may have torn a partial line in (short write, `ENOSPC`
/// mid-buffer), and rewriting directly after it would fuse the two into one
/// corrupt record.  Terminated fragments (and the blank lines terminating
/// clean failures) load back as skipped/ignored lines — the record itself
/// is always rewritten whole.
pub(crate) fn append_line_with_recovery(
    io: &dyn StoreIo,
    retry: &RetryPolicy,
    file: &mut File,
    line: &[u8],
    fsync: bool,
) -> Result<(), StoreError> {
    retry_transient(retry, |attempt| {
        if attempt > 0 {
            io.append_line(file, b"\n", attempt)?;
        }
        io.append_line(file, line, attempt)
    })?;
    if fsync {
        retry_transient(retry, |attempt| {
            let _ = attempt;
            io.sync(file)
        })?;
    }
    Ok(())
}

/// The mutex-serialized append handle: every record is encoded by its
/// worker, then written under one lock.  Superseded by the lock-free
/// [`CollectorSink`] on the engine's hot path and kept as the contended
/// baseline for [`ExperimentStore::mutex_sink`] callers (the saturation
/// benchmark, the sink-equivalence tests).
pub struct MutexSink<'a> {
    io: Arc<dyn StoreIo>,
    fsync: bool,
    retry: RetryPolicy,
    file: Mutex<&'a mut File>,
}

impl MutexSink<'_> {
    /// Stream one record to disk (one line per `write_all`, under the
    /// lock), with transient-failure retry and torn-write recovery.
    pub fn append(&self, record: &JobRecord) -> Result<(), StoreError> {
        let line = encode_line(record)?;
        let mut file = self.file.lock().expect("record sink lock poisoned");
        append_line_with_recovery(&*self.io, &self.retry, &mut file, &line, self.fsync)
    }

    /// Stream one quarantine record to disk, same discipline as `append`.
    pub fn append_failure(&self, failure: &JobFailure) -> Result<(), StoreError> {
        let line = encode_failure_line(failure)?;
        let mut file = self.file.lock().expect("record sink lock poisoned");
        append_line_with_recovery(&*self.io, &self.retry, &mut file, &line, self.fsync)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Topology;
    use crate::experiment::{ExperimentSpec, ScenarioSpec};
    use caem_simcore::time::Duration;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("caem_persist_unit_{}_{name}", std::process::id()))
    }

    fn tiny_record(seed: u64) -> JobRecord {
        JobRecord {
            scenario_index: 0,
            scenario: "uniform".into(),
            policy_index: 1,
            policy: PolicyKind::Scheme1Adaptive,
            seed,
            config_hash: 0xfeed_beef,
            metrics: vec![Some(0.5); METRIC_NAMES.len()],
            generated: 10,
            delivered: 8,
            events_processed: 1_000,
            end_time_nanos: 5_000_000_000,
            delay_p50_ms: Some(12.5),
            delay_p95_ms: None,
            delay_p99_ms: None,
        }
    }

    #[test]
    fn config_hash_is_sensitive_to_every_resolved_field() {
        let base = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 1);
        let h = config_hash(&base);
        assert_eq!(h, config_hash(&base.clone()), "hash must be deterministic");
        assert_ne!(h, config_hash(&base.clone().with_seed(2)));
        assert_ne!(
            h,
            config_hash(&base.clone().with_policy(PolicyKind::Scheme2Fixed))
        );
        assert_ne!(
            h,
            config_hash(&base.clone().with_topology(Topology::Corridor {
                width_fraction: 0.5
            }))
        );
        assert_ne!(h, config_hash(&base.with_duration(Duration::from_secs(61))));
    }

    #[test]
    fn store_round_trips_records_and_dedups_last_wins() {
        let path = temp_path("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let mut store = ExperimentStore::open(&path).unwrap();
            store.append(tiny_record(1)).unwrap();
            store.append(tiny_record(2)).unwrap();
            // Same key appended again with different payload: last wins.
            let mut dup = tiny_record(1);
            dup.delivered = 99;
            store.append(dup).unwrap();
            assert_eq!(store.len(), 2);
        }
        let store = ExperimentStore::load(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.skipped_lines(), 0);
        let rec = store.get((0, 1, 1), 0xfeed_beef, "uniform").unwrap();
        assert_eq!(rec.delivered, 99);
        // A stale hash — or a renamed scenario label — hides the record.
        assert!(store.get((0, 1, 1), 0xdead_beef, "uniform").is_none());
        assert!(store.get((0, 1, 1), 0xfeed_beef, "renamed").is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_trailing_line_is_skipped_with_a_warning_count() {
        let path = temp_path("torn");
        std::fs::remove_file(&path).ok();
        {
            let mut store = ExperimentStore::open(&path).unwrap();
            store.append(tiny_record(1)).unwrap();
            store.append(tiny_record(2)).unwrap();
        }
        // Simulate a crash mid-append: a partial record with no newline.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"scenario_index\":0,\"scenario\":\"uni");
        std::fs::write(&path, text).unwrap();
        let store = ExperimentStore::open(&path).unwrap();
        assert_eq!(store.len(), 2, "intact records survive");
        assert_eq!(store.skipped_lines(), 1, "the torn line is counted");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn job_failures_round_trip_and_respect_the_staleness_filter() {
        let path = temp_path("failures");
        std::fs::remove_file(&path).ok();
        let failure = JobFailure {
            scenario_index: 0,
            scenario: "uniform".into(),
            policy_index: 1,
            policy: PolicyKind::Scheme1Adaptive,
            seed: 3,
            config_hash: 0xfeed_beef,
            attempts: 2,
            reason: "panicked: poison".into(),
        };
        {
            let mut store = ExperimentStore::open(&path).unwrap();
            store.append_failure(failure.clone()).unwrap();
            let mut worse = failure.clone();
            worse.attempts = 3;
            store.append_failure(worse).unwrap();
            store.append(tiny_record(9)).unwrap();
        }
        let store = ExperimentStore::load(&path).unwrap();
        assert_eq!(store.len(), 1, "success records load independently");
        assert_eq!(store.failures().len(), 1, "last failure per key wins");
        let loaded = store
            .get_failure((0, 1, 3), 0xfeed_beef, "uniform")
            .unwrap();
        assert_eq!(loaded.attempts, 3);
        assert_eq!(loaded.reason, "panicked: poison");
        // A stale hash or relabeled scenario clears the quarantine.
        assert!(store
            .get_failure((0, 1, 3), 0xdead_beef, "uniform")
            .is_none());
        assert!(store
            .get_failure((0, 1, 3), 0xfeed_beef, "renamed")
            .is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incompatible_metric_vocabulary_refuses_to_load() {
        let path = temp_path("vocab");
        let header = "{\"caem_experiment_store\":1,\"metric_names\":[\"other_metric\"]}\n";
        std::fs::write(&path, header).unwrap();
        assert!(matches!(
            ExperimentStore::load(&path),
            Err(StoreError::Format(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_of_missing_store_errors_open_creates() {
        let path = temp_path("missing");
        std::fs::remove_file(&path).ok();
        assert!(ExperimentStore::load(&path).is_err());
        let store = ExperimentStore::open(&path).unwrap();
        assert!(store.is_empty());
        assert!(path.exists(), "open creates the file (with its header)");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_from_result_encodes_metrics_and_quantiles() {
        let spec = ExperimentSpec::paper_policies(
            vec![ScenarioSpec::new(
                "uniform",
                ScenarioConfig::small(PolicyKind::PureLeach, 8.0, 0)
                    .with_duration(Duration::from_secs(10)),
            )],
            77,
            1,
        );
        let jobs = spec.enumerate_jobs();
        let job = &jobs[0];
        let result = crate::runner::SimulationRun::new(job.config.clone()).run();
        let record = JobRecord::from_result("uniform", 0, job, &result);
        assert_eq!(record.key(), (0, 0, 77));
        assert_eq!(record.config_hash, config_hash(&job.config));
        assert_eq!(record.metrics.len(), METRIC_NAMES.len());
        let array = record.metric_array();
        assert_eq!(array[0].to_bits(), result.delivery_rate().to_bits());
        assert_eq!(record.generated, result.perf.generated());
        assert_eq!(
            record.delay_p50_ms.map(f64::to_bits),
            result.perf.delay_quantile_ms(0.5).map(f64::to_bits)
        );
    }
}
