//! The discrete-event network simulation loop.
//!
//! One [`SimulationRun`] owns every node, the LEACH election state, the
//! per-cluster channel occupancy and the metric trackers, and processes a
//! typed [`NetworkEvent`] queue until the configured horizon.  All
//! stochastic components draw from independent streams derived from the
//! scenario seed, so a run is exactly reproducible and protocol comparisons
//! use common random numbers.

use caem::policy::ThresholdPolicy;
use caem_channel::geometry::Position;
use caem_channel::link::LinkChannel;
use caem_cluster::election::{ElectionConfig, LeachElection};
use caem_cluster::formation::ClusterFormation;
use caem_cluster::rounds::RoundClock;
use caem_energy::battery::{Battery, EnergyCategory, EnergyLedger};
use caem_mac::sensor::{SensorAction, SensorMac, SensorMacConfig, SensorMacState};
use caem_mac::tone::ChannelState;
use caem_metrics::energy::EnergyTracker;
use caem_metrics::fairness::QueueFairness;
use caem_metrics::lifetime::LifetimeTracker;
use caem_metrics::perf::NetworkPerformance;
use caem_phy::ber::packet_error_rate;
use caem_phy::mode::TransmissionMode;
use caem_phy::ModeSelector;
use caem_simcore::event::EventQueue;
use caem_simcore::rng::{components, RngStream, StreamRng};
use caem_simcore::time::{Duration, SimTime};
use caem_traffic::buffer::PacketBuffer;
use caem_traffic::packet::{Packet, PacketIdAllocator};
use caem_traffic::source::TrafficSource;

use crate::config::ScenarioConfig;
use crate::events::NetworkEvent;
use crate::node::{build_policy, build_source, SensorNode};
use crate::result::{NodeSummary, SimulationResult};

/// A burst currently on the air.
#[derive(Debug)]
struct OngoingBurst {
    /// When the cluster head starts advertising `receive` tones for this
    /// burst (commit time + head detection delay).  Until then other sensors
    /// still see `idle` — the collision vulnerability window.
    advertised_from: SimTime,
    /// Transmission end.
    end: SimTime,
    /// Set when a later burst collided with this one.
    collided: bool,
    /// Packets carried by the burst.
    packets: Vec<Packet>,
    /// ABICM mode the burst uses.
    mode: TransmissionMode,
    /// The cluster head the burst is addressed to.
    head: usize,
    /// Cluster index (of the round the burst started in).
    cluster: usize,
}

/// A fully-initialised simulation ready to run.
pub struct SimulationRun {
    cfg: ScenarioConfig,
    now: SimTime,
    queue: EventQueue<NetworkEvent>,
    nodes: Vec<SensorNode>,
    election: LeachElection,
    round_clock: RoundClock,
    formation: Option<ClusterFormation>,
    /// Which node's burst currently occupies each cluster channel.
    cluster_occupancy: Vec<Option<usize>>,
    /// At most one outgoing burst per node.
    ongoing: Vec<Option<OngoingBurst>>,
    packet_ids: PacketIdAllocator,
    election_rng: StreamRng,
    error_rng: StreamRng,
    /// Jitter for tone-observation scheduling: each sensor locks onto its own
    /// pulse phase, so waiting contenders are not synchronised.
    jitter_rng: StreamRng,
    // Metrics.
    energy: EnergyTracker,
    lifetime: LifetimeTracker,
    perf: NetworkPerformance,
    fairness: QueueFairness,
    collisions: u64,
    bursts: u64,
    node_failures: u64,
    events_processed: u64,
    generated_per_node: Vec<u64>,
    delivered_per_node: Vec<u64>,
    dropped_per_node: Vec<u64>,
    // ---- hot-path hoisted constants (derived from `cfg` once) ----
    /// Energy of one tone-channel observation window.
    tone_observation_energy_j: f64,
    /// Energy of acquiring the tone channel after wake-up.
    sensing_energy_j: f64,
    // ---- reusable scratch buffers (avoid per-round/per-snapshot allocs) ----
    scratch_alive: Vec<bool>,
    scratch_positions: Vec<Position>,
    scratch_f64: Vec<f64>,
    scratch_queues: Vec<usize>,
    /// Retired burst vectors, recycled by `start_burst` so steady-state burst
    /// traffic performs no allocations.
    burst_buffer_pool: Vec<Vec<Packet>>,
}

impl SimulationRun {
    /// Deploy the network described by `cfg` and prime the event queue.
    ///
    /// Panics when `cfg` is invalid — validate first (and surface the typed
    /// [`crate::config::ConfigError`]) when the configuration comes from
    /// user input rather than code.
    pub fn new(cfg: ScenarioConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid scenario configuration: {e}");
        }
        let streams = RngStream::new(cfg.seed);
        let mut placement_rng = streams.derive(components::PLACEMENT, 0);
        let positions = cfg
            .topology
            .generate(&cfg.field, cfg.node_count, &mut placement_rng);

        let nodes: Vec<SensorNode> = (0..cfg.node_count)
            .map(|id| {
                let buffer = match cfg.buffer_capacity {
                    Some(c) => PacketBuffer::with_capacity(c),
                    None => PacketBuffer::unbounded(),
                };
                // Heterogeneous initial charge: each node draws its spread
                // factor from its own stream, so adding heterogeneity never
                // perturbs placement or any other random sequence.
                let initial_energy = if cfg.initial_energy_spread > 0.0 {
                    let spread = cfg.initial_energy_spread;
                    let mut rng = streams.derive(components::HETEROGENEITY, id as u64);
                    cfg.initial_energy_j * (1.0 + rng.uniform(-spread, spread))
                } else {
                    cfg.initial_energy_j
                };
                SensorNode {
                    id,
                    position: positions[id],
                    battery: Battery::new(initial_energy),
                    buffer,
                    mac: SensorMac::new(
                        SensorMacConfig {
                            backoff: cfg.backoff,
                            burst: cfg.burst,
                        },
                        streams.derive(components::BACKOFF, id as u64),
                    ),
                    policy: build_policy(cfg.policy, &cfg),
                    source: build_source(
                        cfg.traffic,
                        cfg.traffic_profile,
                        streams.derive(components::TRAFFIC, id as u64),
                    ),
                    link: LinkChannel::with_distance(
                        cfg.field.diagonal(),
                        cfg.link_budget,
                        cfg.path_loss,
                        cfg.shadowing,
                        streams.derive(components::SHADOWING, id as u64),
                        streams.derive(components::FADING, id as u64),
                    ),
                    selector: ModeSelector::default(),
                    alive: true,
                    is_head: false,
                    cluster: None,
                    self_delivered: 0,
                    access_generation: 0,
                }
            })
            .collect();

        let mut queue = EventQueue::with_capacity(cfg.initial_queue_capacity());
        queue.push(SimTime::ZERO, NetworkEvent::RoundStart);
        queue.push(SimTime::ZERO, NetworkEvent::EnergySnapshot);
        queue.push(SimTime::ZERO, NetworkEvent::FairnessSnapshot);

        // Constants consumed on every hot-path event, derived from the
        // scenario once instead of being recomputed per observation.
        let idle_pulse = cfg.tone.pulse_for(ChannelState::Idle).duration;
        // Wake a little early and stay a little late to be sure of catching
        // the pulse: charge one-and-a-half pulse-durations of receive power.
        let tone_observation_energy_j = cfg.power.tone_rx_w * idle_pulse.as_secs_f64() * 1.5;
        let sensing_energy_j = cfg.power.tone_rx_w * cfg.sensing_delay.as_secs_f64();

        let mut run = SimulationRun {
            election: LeachElection::new(
                cfg.node_count,
                ElectionConfig {
                    ch_probability: cfg.ch_probability,
                },
            ),
            round_clock: RoundClock::new(cfg.round),
            formation: None,
            cluster_occupancy: Vec::new(),
            ongoing: (0..cfg.node_count).map(|_| None).collect(),
            packet_ids: PacketIdAllocator::new(),
            election_rng: streams.derive(components::ELECTION, 0),
            error_rng: streams.derive(components::PACKET_ERROR, 0),
            jitter_rng: streams.derive(components::MISC, 0),
            energy: EnergyTracker::new(cfg.node_count),
            lifetime: LifetimeTracker::new(cfg.node_count),
            perf: NetworkPerformance::new(),
            fairness: QueueFairness::new(),
            collisions: 0,
            bursts: 0,
            node_failures: 0,
            events_processed: 0,
            generated_per_node: vec![0; cfg.node_count],
            delivered_per_node: vec![0; cfg.node_count],
            dropped_per_node: vec![0; cfg.node_count],
            tone_observation_energy_j,
            sensing_energy_j,
            scratch_alive: Vec::with_capacity(cfg.node_count),
            scratch_positions: Vec::with_capacity(cfg.node_count),
            scratch_f64: Vec::with_capacity(cfg.node_count),
            scratch_queues: Vec::with_capacity(cfg.node_count),
            burst_buffer_pool: Vec::new(),
            nodes,
            now: SimTime::ZERO,
            queue,
            cfg,
        };
        // Prime the traffic: one pending arrival per node.
        for id in 0..run.cfg.node_count {
            let first = run.nodes[id].source.next_arrival(SimTime::ZERO);
            run.schedule(first, NetworkEvent::PacketArrival { node: id as u32 });
        }
        // Churn injection: every node draws one exponential failure time
        // from its own stream; failures beyond the horizon are dropped by
        // `schedule`, so light churn costs nothing in the event loop.
        if let Some(churn) = run.cfg.churn {
            for id in 0..run.cfg.node_count {
                let mut rng = streams.derive(components::CHURN, id as u64);
                let at = SimTime::from_secs_f64(rng.exponential_mean(churn.mean_time_to_failure_s));
                run.schedule(at, NetworkEvent::NodeFailure { node: id as u32 });
            }
        }
        run
    }

    /// The scenario this run simulates.
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn schedule(&mut self, at: SimTime, event: NetworkEvent) {
        if at <= SimTime::ZERO + self.cfg.duration {
            self.queue.push(at.max(self.now), event);
        }
    }

    /// Draw energy from a node's battery, handling the death edge.
    fn draw_energy(&mut self, node: usize, category: EnergyCategory, joules: f64) {
        if !self.nodes[node].alive || joules <= 0.0 {
            return;
        }
        let died = self.nodes[node].battery.draw(category, joules);
        if died {
            self.nodes[node].alive = false;
            self.lifetime.record_death(node, self.now);
        }
    }

    /// The data-channel SNR the sensor infers from the tone channel right now.
    fn measure_snr(&mut self, node: usize) -> f64 {
        let now = self.now;
        self.nodes[node].link.measure(now).snr_db
    }

    /// The advertised state of a cluster's data channel.
    ///
    /// The head only advertises `receive` once it has detected the incoming
    /// burst, so a second sensor that checks the channel inside that
    /// detection window still sees `idle` — that window is exactly where
    /// collisions come from.
    fn channel_state(&self, cluster: usize) -> ChannelState {
        match self.cluster_occupancy.get(cluster).copied().flatten() {
            Some(occupant) => match &self.ongoing[occupant] {
                Some(burst) if burst.advertised_from <= self.now && burst.end > self.now => {
                    ChannelState::Receive
                }
                _ => ChannelState::Idle,
            },
            None => ChannelState::Idle,
        }
    }

    /// The live cluster head currently serving `node`, if any.
    fn head_of(&self, node: usize) -> Option<usize> {
        let formation = self.formation.as_ref()?;
        let head = formation.head_of(node)?;
        self.nodes[head].alive.then_some(head)
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn handle_round_start(&mut self) {
        // The alive map and position vector are rebuilt every round into
        // run-owned scratch buffers instead of fresh allocations.
        let mut alive = std::mem::take(&mut self.scratch_alive);
        alive.clear();
        alive.extend(self.nodes.iter().map(|n| n.alive));
        if !alive.iter().any(|&a| a) {
            self.scratch_alive = alive;
            return; // whole network dead — no further rounds
        }
        let mut positions = std::mem::take(&mut self.scratch_positions);
        positions.clear();
        positions.extend(self.nodes.iter().map(|n| n.position));
        let heads = self.election.elect_round(&alive, &mut self.election_rng);
        let formation = ClusterFormation::nearest_head(&positions, &heads, &alive);
        self.scratch_alive = alive;
        self.scratch_positions = positions;
        self.cluster_occupancy.clear();
        self.cluster_occupancy
            .resize(formation.cluster_count(), None);

        for id in 0..self.nodes.len() {
            if !self.nodes[id].alive {
                continue;
            }
            let is_head = formation.is_head(id);
            let cluster = formation.cluster_of(id);
            let distance = formation
                .head_of(id)
                .map(|h| self.nodes[id].position.distance_to(&self.nodes[h].position))
                .unwrap_or(0.0);
            let node = &mut self.nodes[id];
            node.is_head = is_head;
            node.cluster = cluster;
            node.policy.on_round_change();
            node.access_generation += 1;
            if !is_head {
                node.link.set_distance(distance.max(1.0));
            }
            // A node that just became head drains its backlog straight into
            // its own aggregation queue: those packets have reached a sink.
            if is_head {
                let backlog = node.buffer.dequeue_burst(usize::MAX >> 1);
                for p in backlog {
                    self.perf
                        .record_delivered(p.delay_at(self.now), p.size_bits);
                    self.delivered_per_node[id] += 1;
                    self.nodes[id].self_delivered += 1;
                }
            }
        }
        self.formation = Some(formation);
        let next = self.round_clock.next_round_start(self.now);
        self.schedule(next, NetworkEvent::RoundStart);
    }

    fn handle_packet_arrival(&mut self, node: usize) {
        if !self.nodes[node].alive {
            return;
        }
        // Schedule the next arrival first so the source keeps flowing.
        let next = self.nodes[node].source.next_arrival(self.now);
        self.schedule(next, NetworkEvent::PacketArrival { node: node as u32 });

        self.generated_per_node[node] += 1;
        self.perf.record_generated();

        if self.nodes[node].is_head {
            // The head is the sink of its own cluster: its data is delivered
            // without using the shared data channel.
            self.perf
                .record_delivered(Duration::ZERO, self.cfg.frame.payload_bits);
            self.delivered_per_node[node] += 1;
            self.nodes[node].self_delivered += 1;
            return;
        }

        let packet = Packet::with_size(
            self.packet_ids.allocate(),
            node,
            self.now,
            self.cfg.frame.payload_bits,
        );
        let accepted = self.nodes[node].buffer.enqueue(packet);
        if !accepted {
            self.perf.record_dropped_overflow();
            self.dropped_per_node[node] += 1;
        }
        let queue_len = self.nodes[node].buffer.len();
        self.nodes[node].policy.on_packet_arrival(queue_len);

        // Wake the MAC only when a transmission could actually be worth the
        // radio start-up (enough packets, or overflow pressure).
        let urgent = self.nodes[node].policy.is_urgent(queue_len);
        if self.nodes[node].mac.state() == SensorMacState::Sleep
            && self.cfg.burst.should_transmit(queue_len, urgent)
        {
            let action = self.nodes[node].mac.packets_pending(queue_len);
            if action == SensorAction::StartSensing {
                // Acquiring the tone channel costs the sensing delay with the
                // tone radio fully on.
                let sensing_energy = self.sensing_energy_j;
                self.draw_energy(node, EnergyCategory::ToneReceive, sensing_energy);
                self.schedule(
                    self.now + self.cfg.sensing_delay,
                    NetworkEvent::SenseChannel { node: node as u32 },
                );
            }
        }
    }

    /// The CSI-free observation context of one tone sample: advertised
    /// channel state (`None` when the node has no live cluster head) plus the
    /// policy's current inputs.  Deliberately does **not** touch the link
    /// model — the expensive CSI derivation happens lazily inside the MAC,
    /// and only on the branches whose decision depends on it.
    fn observation_context(&self, node: usize) -> (Option<ChannelState>, f64, usize, bool) {
        let state = match (self.head_of(node), self.nodes[node].cluster) {
            (Some(_), Some(cluster)) => Some(self.channel_state(cluster)),
            _ => None,
        };
        let n = &self.nodes[node];
        let queue_len = n.buffer.len();
        let threshold = n.policy.required_snr_db();
        let urgent = n.policy.is_urgent(queue_len);
        (state, threshold, queue_len, urgent)
    }

    fn handle_sense_channel(&mut self, node: usize) {
        {
            // One bounds-checked access for all three liveness gates.
            let n = &self.nodes[node];
            if !n.alive || n.is_head || n.mac.state() != SensorMacState::Sensing {
                return; // dead, promoted to head, or stale event
            }
        }
        let observation_energy = self.tone_observation_energy_j;
        self.draw_energy(node, EnergyCategory::ToneReceive, observation_energy);
        if !self.nodes[node].alive {
            return;
        }

        let (state, threshold, queue_len, urgent) = self.observation_context(node);
        let observed_state = state;
        let now = self.now;
        let SensorNode { mac, link, .. } = &mut self.nodes[node];
        let action = mac.observe_tone_lazy(
            state,
            || link.measure(now).snr_db,
            threshold,
            queue_len,
            urgent,
        );
        match action {
            SensorAction::StartBackoff(backoff) => {
                // Tone radio stays fully on through the backoff.
                let energy = self.cfg.power.tone_rx_w * backoff.as_secs_f64();
                self.draw_energy(node, EnergyCategory::ToneReceive, energy);
                self.schedule(
                    self.now + backoff,
                    NetworkEvent::BackoffExpired { node: node as u32 },
                );
            }
            SensorAction::None => {
                // Keep monitoring: the next observation follows the pulse
                // cadence of the advertised state — a busy channel announces
                // itself every 10 ms (receive pulses), an idle one every
                // 50 ms, so waiting senders re-check the channel promptly
                // after a burst ends.  A per-observation jitter models each
                // sensor locking onto its own pulse phase; without it every
                // waiting contender would probe at the same instants and
                // collide far more often than the paper's protocol does.
                let interval = self
                    .cfg
                    .tone
                    .pulse_for(observed_state.unwrap_or(ChannelState::Idle))
                    .interval;
                let jitter = interval.mul_f64(self.jitter_rng.next_f64() * 0.5);
                self.schedule(
                    self.now + interval + jitter,
                    NetworkEvent::SenseChannel { node: node as u32 },
                );
            }
            SensorAction::EnterSleep => {}
            _ => {}
        }
    }

    fn handle_backoff_expired(&mut self, node: usize) {
        {
            let n = &self.nodes[node];
            if !n.alive || n.is_head || n.mac.state() != SensorMacState::Backoff {
                return; // dead, promoted to head, or stale event
            }
        }
        let (state, threshold, queue_len, urgent) = self.observation_context(node);
        let now = self.now;
        let SensorNode { mac, link, .. } = &mut self.nodes[node];
        let action = mac.backoff_expired_lazy(
            state,
            || link.measure(now).snr_db,
            threshold,
            queue_len,
            urgent,
        );
        match action {
            SensorAction::StartTransmission { burst_size } => {
                self.start_burst(node, burst_size);
            }
            SensorAction::None => {
                let interval = self.cfg.tone.pulse_for(ChannelState::Idle).interval;
                self.schedule(
                    self.now + interval,
                    NetworkEvent::SenseChannel { node: node as u32 },
                );
            }
            SensorAction::EnterSleep => {}
            _ => {}
        }
    }

    /// Return a finished burst's packet vector to the reuse pool.
    fn recycle_burst_buffer(&mut self, mut packets: Vec<Packet>) {
        packets.clear();
        self.burst_buffer_pool.push(packets);
    }

    fn abort_after_collision(&mut self, node: usize, resume_at: SimTime) {
        let (_, may_retry) = self.nodes[node].mac.collision_detected();
        if !may_retry && self.nodes[node].buffer.dequeue().is_some() {
            self.perf.record_dropped_abandoned();
            self.dropped_per_node[node] += 1;
        }
        if self.nodes[node].alive && !self.nodes[node].buffer.is_empty() {
            self.schedule(resume_at, NetworkEvent::SenseChannel { node: node as u32 });
        }
    }

    fn start_burst(&mut self, node: usize, burst_size: usize) {
        // The data radio start-up transient is paid before any bit moves.
        let startup_energy = self.cfg.power.startup_energy();
        self.draw_energy(node, EnergyCategory::Startup, startup_energy);
        if !self.nodes[node].alive {
            return;
        }
        let begin = self.now + self.cfg.power.startup_time;

        let snr_db = self.measure_snr(node);
        let Some(mode) = self.nodes[node].selector.select(snr_db) else {
            // The channel collapsed below the lowest mode between the check
            // and the start-up: treat as a failed access attempt.
            self.abort_after_collision(node, begin + Duration::from_millis(20));
            return;
        };

        let (Some(cluster), Some(head)) = (self.nodes[node].cluster, self.head_of(node)) else {
            self.abort_after_collision(node, begin + Duration::from_millis(20));
            return;
        };

        let mut packets = self.burst_buffer_pool.pop().unwrap_or_default();
        self.nodes[node]
            .buffer
            .dequeue_burst_into(burst_size, &mut packets);
        if packets.is_empty() {
            // Nothing to send after all (racing round change drained the
            // buffer); put the MAC back to sleep via burst completion.
            self.burst_buffer_pool.push(packets);
            let _ = self.nodes[node].mac.burst_complete(0);
            return;
        }
        let airtime = self.cfg.frame.burst_airtime(mode, packets.len() as u64);
        let frame_airtime = self.cfg.frame.airtime(mode);
        let end = begin + airtime;

        // Collision detection: is another burst occupying this cluster's
        // channel during our interval?
        let occupant = self.cluster_occupancy.get(cluster).copied().flatten();
        let collides = occupant
            .and_then(|other| self.ongoing[other].as_ref())
            .map(|other| other.end > begin)
            .unwrap_or(false);
        if collides {
            self.collisions += 1;
            if let Some(other) = occupant {
                if let Some(burst) = self.ongoing[other].as_mut() {
                    burst.collided = true;
                }
            }
            // The colliding sender burns roughly one frame before the head's
            // collision tone stops it; the head wastes the same receive time.
            let tx_waste = self.cfg.power.transmit_energy(frame_airtime)
                + self.cfg.power.tone_rx_w * frame_airtime.as_secs_f64();
            self.draw_energy(node, EnergyCategory::CollisionWaste, tx_waste);
            let rx_waste = self.cfg.power.receive_energy(frame_airtime);
            self.draw_energy(head, EnergyCategory::CollisionWaste, rx_waste);
            self.nodes[node].buffer.requeue_front_drain(&mut packets);
            self.burst_buffer_pool.push(packets);
            self.abort_after_collision(node, begin + frame_airtime + Duration::from_millis(20));
            return;
        }

        // Clear channel: commit the burst.
        self.bursts += 1;
        let coded_bits_per_frame = self.cfg.frame.coded_bits(mode);
        let total_coded_bits = coded_bits_per_frame * packets.len() as u64;
        let tx_energy = self.cfg.power.transmit_energy(airtime)
            + self.cfg.power.tone_rx_w * airtime.as_secs_f64()
            + self.cfg.codec.encode_energy(total_coded_bits);
        self.draw_energy(node, EnergyCategory::DataTransmit, tx_energy);
        let codec_rx = self.cfg.codec.decode_energy(total_coded_bits);
        if codec_rx > 0.0 {
            self.draw_energy(head, EnergyCategory::Codec, codec_rx);
        }
        let rx_energy = self.cfg.power.receive_energy(airtime);
        self.draw_energy(head, EnergyCategory::DataReceive, rx_energy);

        if cluster < self.cluster_occupancy.len() {
            self.cluster_occupancy[cluster] = Some(node);
        }
        self.ongoing[node] = Some(OngoingBurst {
            advertised_from: self.now + self.cfg.ch_detection_delay,
            end,
            collided: false,
            packets,
            mode,
            head,
            cluster,
        });
        self.schedule(
            end,
            NetworkEvent::TransmissionComplete { node: node as u32 },
        );
    }

    fn handle_transmission_complete(&mut self, node: usize) {
        let Some(burst) = self.ongoing[node].take() else {
            return; // stale
        };
        if burst.cluster < self.cluster_occupancy.len()
            && self.cluster_occupancy[burst.cluster] == Some(node)
        {
            self.cluster_occupancy[burst.cluster] = None;
        }
        if !self.nodes[node].alive {
            // Died mid-burst; the energy is already spent, data lost.
            self.recycle_burst_buffer(burst.packets);
            return;
        }
        if burst.collided {
            let mut packets = burst.packets;
            self.nodes[node].buffer.requeue_front_drain(&mut packets);
            self.burst_buffer_pool.push(packets);
            self.abort_after_collision(node, self.now + Duration::from_millis(20));
            return;
        }
        // Per-packet channel-error draw at the SNR seen during the burst.
        let head_alive = self.nodes[burst.head].alive;
        let snr_db = self.measure_snr(node);
        let per = packet_error_rate(
            burst.mode.modulation(),
            burst.mode.code_rate(),
            snr_db,
            self.cfg.frame.payload_bits,
        );
        for packet in &burst.packets {
            let corrupted = self.error_rng.bernoulli(per);
            if head_alive && !corrupted {
                self.perf
                    .record_delivered(packet.delay_at(self.now), packet.size_bits);
                self.delivered_per_node[node] += 1;
            }
        }
        self.recycle_burst_buffer(burst.packets);
        let queue_len = self.nodes[node].buffer.len();
        self.nodes[node].policy.on_packets_sent(queue_len);
        let action = self.nodes[node].mac.burst_complete(queue_len);
        if action == SensorAction::StartSensing {
            self.schedule(
                self.now + self.cfg.sensing_delay,
                NetworkEvent::SenseChannel { node: node as u32 },
            );
        }
    }

    /// Churn injection: the node leaves the network for a non-energy reason.
    /// Its leftover charge stays in the battery (the hardware failed, the
    /// cell did not), it simply stops participating — any burst it had on
    /// the air is cleaned up by the usual stale-event paths.
    fn handle_node_failure(&mut self, node: usize) {
        if !self.nodes[node].alive {
            return; // already dead of battery depletion
        }
        self.nodes[node].alive = false;
        self.node_failures += 1;
        self.lifetime.record_death(node, self.now);
    }

    fn handle_energy_snapshot(&mut self) {
        let interval = self.cfg.energy_snapshot_interval;
        // Baseline costs accrued over the past interval: data-radio sleep for
        // every live node, tone broadcasts for the current cluster heads.
        let sleep_energy = self.cfg.power.data_sleep_w * interval.as_secs_f64();
        let idle_duty = self.cfg.tone.duty_cycle(ChannelState::Idle);
        let head_tone_energy = self.cfg.power.tone_tx_w * idle_duty * interval.as_secs_f64();
        let mut remaining = std::mem::take(&mut self.scratch_f64);
        remaining.clear();
        let mut any_alive = false;
        for id in 0..self.nodes.len() {
            if self.nodes[id].alive {
                self.draw_energy(id, EnergyCategory::Sleep, sleep_energy);
                if self.nodes[id].is_head {
                    self.draw_energy(id, EnergyCategory::ToneTransmit, head_tone_energy);
                }
            }
            // Remaining energy is read after the draws so a node dying of its
            // sleep cost snapshots as empty, like the original two-pass code.
            remaining.push(self.nodes[id].remaining_energy());
            any_alive |= self.nodes[id].alive;
        }
        self.energy.snapshot(self.now, &remaining);
        self.scratch_f64 = remaining;
        if any_alive {
            self.schedule(self.now + interval, NetworkEvent::EnergySnapshot);
        }
    }

    fn handle_fairness_snapshot(&mut self) {
        let mut queues = std::mem::take(&mut self.scratch_queues);
        queues.clear();
        let mut any_alive = false;
        for n in &self.nodes {
            any_alive |= n.alive;
            if n.alive && !n.is_head {
                queues.push(n.buffer.len());
            }
        }
        self.fairness.snapshot(&queues);
        self.scratch_queues = queues;
        if any_alive {
            self.schedule(
                self.now + self.cfg.fairness_snapshot_interval,
                NetworkEvent::FairnessSnapshot,
            );
        }
    }

    /// Run the simulation to the configured horizon and collect the result.
    pub fn run(mut self) -> SimulationResult {
        let horizon = SimTime::ZERO + self.cfg.duration;
        while let Some(event) = self.queue.pop_if_at_or_before(horizon) {
            debug_assert!(event.time >= self.now);
            self.now = event.time;
            self.events_processed += 1;
            match event.event {
                NetworkEvent::RoundStart => self.handle_round_start(),
                NetworkEvent::PacketArrival { node } => self.handle_packet_arrival(node as usize),
                NetworkEvent::SenseChannel { node } => self.handle_sense_channel(node as usize),
                NetworkEvent::BackoffExpired { node } => self.handle_backoff_expired(node as usize),
                NetworkEvent::TransmissionComplete { node } => {
                    self.handle_transmission_complete(node as usize)
                }
                NetworkEvent::NodeFailure { node } => self.handle_node_failure(node as usize),
                NetworkEvent::EnergySnapshot => self.handle_energy_snapshot(),
                NetworkEvent::FairnessSnapshot => self.handle_fairness_snapshot(),
            }
        }
        self.finish(horizon)
    }

    fn finish(mut self, horizon: SimTime) -> SimulationResult {
        self.now = self.now.max(horizon.min(SimTime::ZERO + self.cfg.duration));
        // Final energy snapshot so the Fig. 8 curve reaches the horizon.
        let remaining: Vec<f64> = self.nodes.iter().map(|n| n.remaining_energy()).collect();
        self.energy.snapshot(self.now, &remaining);
        self.perf.set_horizon(self.now);

        let mut ledger = EnergyLedger::new();
        for n in &self.nodes {
            ledger.merge(n.battery.ledger());
        }
        let head_counts = self.election.head_counts().to_vec();
        let nodes: Vec<NodeSummary> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(id, n)| NodeSummary {
                id,
                remaining_energy_j: n.remaining_energy(),
                death_time: self.lifetime.death_times()[id],
                generated: self.generated_per_node[id],
                delivered: self.delivered_per_node[id],
                dropped: self.dropped_per_node[id],
                head_terms: head_counts[id],
            })
            .collect();

        SimulationResult {
            policy: self.cfg.policy,
            traffic_rate_pps: self.cfg.traffic.mean_rate_pps(),
            seed: self.cfg.seed,
            end_time: self.now,
            energy: self.energy,
            lifetime: self.lifetime,
            perf: self.perf,
            fairness: self.fairness,
            ledger,
            nodes,
            collisions: self.collisions,
            bursts: self.bursts,
            node_failures: self.node_failures,
            events_processed: self.events_processed,
            queue_capacity: self.queue.capacity(),
            queue_high_watermark: self.queue.high_watermark(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caem::policy::PolicyKind;

    fn small_run(policy: PolicyKind, seed: u64) -> SimulationResult {
        SimulationRun::new(ScenarioConfig::small(policy, 5.0, seed)).run()
    }

    #[test]
    fn small_scenario_runs_to_horizon() {
        let r = small_run(PolicyKind::Scheme1Adaptive, 1);
        assert_eq!(r.end_time, SimTime::from_secs(60));
        assert!(
            r.perf.generated() > 1_000,
            "generated {}",
            r.perf.generated()
        );
        assert!(r.perf.delivered() > 0);
        assert!(r.bursts > 0);
        assert_eq!(r.nodes.len(), 20);
    }

    #[test]
    fn energy_only_decreases() {
        let r = small_run(PolicyKind::PureLeach, 2);
        let samples = r.energy.series().samples();
        assert!(samples.len() > 5);
        for w in samples.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "energy increased: {w:?}");
        }
        // Something was actually consumed.
        assert!(samples.last().unwrap().1 < samples[0].1);
    }

    #[test]
    fn delivery_is_counted_against_generation() {
        let r = small_run(PolicyKind::PureLeach, 3);
        assert!(r.perf.delivered() <= r.perf.generated());
        assert!(
            r.delivery_rate() > 0.3,
            "delivery rate {}",
            r.delivery_rate()
        );
        // Per-node accounting sums to the global counters.
        let gen_sum: u64 = r.nodes.iter().map(|n| n.generated).sum();
        assert_eq!(gen_sum, r.perf.generated());
        let del_sum: u64 = r.nodes.iter().map(|n| n.delivered).sum();
        assert_eq!(del_sum, r.perf.delivered());
    }

    #[test]
    fn event_queue_is_sized_from_the_scenario_and_never_regrows() {
        for rate in [5.0, 30.0] {
            let cfg = ScenarioConfig::small(PolicyKind::Scheme1Adaptive, rate, 5);
            let capacity = cfg.initial_queue_capacity();
            let r = SimulationRun::new(cfg).run();
            assert!(
                r.queue_high_watermark <= capacity,
                "at {rate} pkt/s the queue peaked at {} pending but was sized for {capacity}",
                r.queue_high_watermark,
            );
            assert!(r.queue_capacity >= capacity);
            // The sizing is not wildly oversized either: the peak should use
            // a meaningful fraction of the arena.
            assert!(
                r.queue_high_watermark * 8 >= capacity,
                "queue sized for {capacity} but peaked at only {}",
                r.queue_high_watermark
            );
        }
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let a = small_run(PolicyKind::Scheme1Adaptive, 7);
        let b = small_run(PolicyKind::Scheme1Adaptive, 7);
        assert_eq!(a.perf.generated(), b.perf.generated());
        assert_eq!(a.perf.delivered(), b.perf.delivered());
        assert_eq!(a.bursts, b.bursts);
        assert_eq!(a.collisions, b.collisions);
        assert!((a.ledger.total() - b.ledger.total()).abs() < 1e-9);
        let c = small_run(PolicyKind::Scheme1Adaptive, 8);
        assert_ne!(a.perf.delivered(), c.perf.delivered());
    }

    #[test]
    fn channel_adaptation_saves_energy_per_packet() {
        // The paper's central claim, on a small network: Scheme 1 spends less
        // energy per delivered packet than pure LEACH.
        let leach = small_run(PolicyKind::PureLeach, 11);
        let scheme1 = small_run(PolicyKind::Scheme1Adaptive, 11);
        let e_leach = leach.per_packet_energy().joules_per_packet().unwrap();
        let e_caem = scheme1.per_packet_energy().joules_per_packet().unwrap();
        assert!(
            e_caem < e_leach,
            "Scheme 1 ({e_caem} J/pkt) should beat pure LEACH ({e_leach} J/pkt)"
        );
    }

    #[test]
    fn scheme2_delivers_less_but_spends_less() {
        let scheme1 = small_run(PolicyKind::Scheme1Adaptive, 13);
        let scheme2 = small_run(PolicyKind::Scheme2Fixed, 13);
        // The fixed 2 Mbps threshold defers more traffic...
        assert!(scheme2.delivery_rate() <= scheme1.delivery_rate() + 0.05);
        // ...and consumes no more total energy.
        assert!(scheme2.ledger.total() <= scheme1.ledger.total() * 1.05);
    }

    #[test]
    fn ledger_total_matches_battery_drawdown() {
        let r = small_run(PolicyKind::Scheme1Adaptive, 17);
        let consumed_via_batteries: f64 = r.nodes.iter().map(|n| 10.0 - n.remaining_energy_j).sum();
        // Drawn energy can exceed initial-remaining only by the final draws
        // that crossed zero; on a 60 s run nothing should be near depletion.
        assert!((r.ledger.total() - consumed_via_batteries).abs() < 1e-6);
    }

    #[test]
    fn churn_injection_kills_nodes_without_draining_batteries() {
        let cfg = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 21)
            .with_duration(Duration::from_secs(30))
            .with_churn_mttf_s(20.0);
        let r = SimulationRun::new(cfg.clone()).run();
        assert!(
            r.node_failures > 0,
            "mttf 20s over 30s must fail some nodes"
        );
        assert!(r.lifetime.dead_count() as u64 >= r.node_failures);
        // Churned nodes leave their charge behind: some dead node still
        // holds most of its 10 J battery.
        assert!(r
            .nodes
            .iter()
            .any(|n| n.death_time.is_some() && n.remaining_energy_j > 5.0));
        // Churn draws come from their own stream: the injection is
        // reproducible bit-for-bit.
        let again = SimulationRun::new(cfg).run();
        assert_eq!(r.node_failures, again.node_failures);
        assert_eq!(r.perf.delivered(), again.perf.delivered());
    }

    #[test]
    fn energy_spread_diversifies_initial_charge_deterministically() {
        let cfg = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 22)
            .with_duration(Duration::from_secs(5))
            .with_energy_spread(0.5);
        let a = SimulationRun::new(cfg.clone()).run();
        let b = SimulationRun::new(cfg).run();
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(
                x.remaining_energy_j.to_bits(),
                y.remaining_energy_j.to_bits()
            );
        }
        let min = a
            .nodes
            .iter()
            .map(|n| n.remaining_energy_j)
            .fold(f64::INFINITY, f64::min);
        let max = a
            .nodes
            .iter()
            .map(|n| n.remaining_energy_j)
            .fold(0.0, f64::max);
        assert!(
            max - min > 2.0,
            "spread 0.5 on 10 J must diversify charge, got {min:.2}..{max:.2}"
        );
    }

    #[test]
    fn every_topology_runs_to_horizon() {
        use crate::config::Topology;
        for topology in [
            Topology::Grid { jitter_m: 2.0 },
            Topology::GaussianClusters {
                clusters: 3,
                sigma_m: 10.0,
            },
            Topology::Corridor {
                width_fraction: 0.3,
            },
        ] {
            let cfg = ScenarioConfig::small(PolicyKind::Scheme1Adaptive, 5.0, 23)
                .with_duration(Duration::from_secs(10))
                .with_topology(topology);
            let r = SimulationRun::new(cfg).run();
            assert_eq!(r.end_time, SimTime::from_secs(10), "{topology:?}");
            assert!(r.perf.generated() > 0, "{topology:?}");
            assert!(r.perf.delivered() > 0, "{topology:?}");
        }
    }

    #[test]
    fn diurnal_traffic_reshapes_arrivals_deterministically() {
        let constant = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 29)
            .with_duration(Duration::from_secs(40));
        // A period that does not divide the horizon: over whole periods the
        // warp is a bijection and counts would match exactly.
        let diurnal = constant.clone().with_diurnal_traffic(25.0, 0.9);
        let c = SimulationRun::new(constant).run();
        let d = SimulationRun::new(diurnal.clone()).run();
        // Modulation reshapes when packets arrive (so counts differ from the
        // stationary run) without moving the long-run offered load much.
        assert_ne!(c.perf.generated(), d.perf.generated());
        let (cg, dg) = (c.perf.generated() as f64, d.perf.generated() as f64);
        assert!(
            (dg - cg).abs() / cg < 0.15,
            "mean load preserved: {cg} vs {dg}"
        );
        // And the warp is bit-reproducible per seed.
        let again = SimulationRun::new(diurnal).run();
        assert_eq!(d.perf.generated(), again.perf.generated());
        assert_eq!(d.perf.delivered(), again.perf.delivered());
        assert_eq!(d.collisions, again.collisions);
    }

    #[test]
    fn heads_rotate_across_rounds() {
        let r = small_run(PolicyKind::PureLeach, 19);
        let nodes_with_head_terms = r.nodes.iter().filter(|n| n.head_terms > 0).count();
        // 60 s = 3 rounds ⇒ at least 3 distinct heads (usually more).
        assert!(nodes_with_head_terms >= 3, "{nodes_with_head_terms}");
    }
}
