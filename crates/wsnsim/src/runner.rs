//! The discrete-event network simulation loop.
//!
//! One [`SimulationRun`] owns the [`NodeTable`] (every node's state as
//! hot/cold parallel columns), the LEACH election state, the per-cluster
//! channel occupancy and the metric trackers, and processes a typed
//! [`NetworkEvent`] queue until the configured horizon.  All stochastic
//! components draw from independent streams derived from the scenario seed,
//! so a run is exactly reproducible and protocol comparisons use common
//! random numbers.
//!
//! Events are drained one *instant* at a time: every event scheduled for
//! the current timestamp is popped into a reusable batch buffer (in FIFO
//! delivery order, so the schedule is bit-identical to a one-at-a-time
//! loop) and dispatched in runs of consecutive equal [`EventKind`]s.  At
//! scale this stops the queue from round-tripping the heap per event and
//! keeps the dispatch branch predicted within a run.

use caem::policy::ThresholdPolicy;
use caem_cluster::election::{ElectionConfig, LeachElection};
use caem_cluster::formation::ClusterFormation;
use caem_cluster::rounds::RoundClock;
use caem_energy::battery::EnergyCategory;
use caem_mac::sensor::{SensorAction, SensorMacState};
use caem_mac::tone::ChannelState;
use caem_metrics::energy::EnergyTracker;
use caem_metrics::fairness::QueueFairness;
use caem_metrics::lifetime::LifetimeTracker;
use caem_metrics::perf::NetworkPerformance;
use caem_metrics::prof::{self, ProfKey, Profile, Span};
use caem_phy::ber::packet_error_rate;
use caem_phy::mode::TransmissionMode;
use caem_simcore::event::{EventQueue, ScheduledEvent};
use caem_simcore::rng::{components, RngStream, StreamRng};
use caem_simcore::time::{Duration, SimTime};
use caem_traffic::packet::{Packet, PacketIdAllocator};
use caem_traffic::source::TrafficSource;

use crate::config::{ConfigError, ScenarioConfig};
use crate::events::{EventKind, NetworkEvent};
use crate::result::{NodeSummary, SimulationResult};
use crate::table::NodeTable;

/// The profile slot each event kind's dispatch runs are attributed to.
fn event_key(kind: EventKind) -> ProfKey {
    match kind {
        EventKind::RoundStart => ProfKey::EvRoundStart,
        EventKind::PacketArrival => ProfKey::EvPacketArrival,
        EventKind::SenseChannel => ProfKey::EvSenseChannel,
        EventKind::BackoffExpired => ProfKey::EvBackoffExpired,
        EventKind::TransmissionComplete => ProfKey::EvTransmissionComplete,
        EventKind::NodeFailure => ProfKey::EvNodeFailure,
        EventKind::EnergySnapshot => ProfKey::EvEnergySnapshot,
        EventKind::FairnessSnapshot => ProfKey::EvFairnessSnapshot,
    }
}

/// A burst currently on the air.
#[derive(Debug)]
struct OngoingBurst {
    /// When the cluster head starts advertising `receive` tones for this
    /// burst (commit time + head detection delay).  Until then other sensors
    /// still see `idle` — the collision vulnerability window.
    advertised_from: SimTime,
    /// Transmission end.
    end: SimTime,
    /// Set when a later burst collided with this one.
    collided: bool,
    /// Packets carried by the burst.
    packets: Vec<Packet>,
    /// ABICM mode the burst uses.
    mode: TransmissionMode,
    /// The cluster head the burst is addressed to.
    head: usize,
    /// Cluster index (of the round the burst started in).
    cluster: usize,
}

/// A fully-initialised simulation ready to run.
pub struct SimulationRun {
    cfg: ScenarioConfig,
    now: SimTime,
    queue: EventQueue<NetworkEvent>,
    /// Every node's state, hot/cold split into parallel columns.
    table: NodeTable,
    election: LeachElection,
    round_clock: RoundClock,
    formation: Option<ClusterFormation>,
    /// Which node's burst currently occupies each cluster channel.
    cluster_occupancy: Vec<Option<usize>>,
    /// At most one outgoing burst per node.
    ongoing: Vec<Option<OngoingBurst>>,
    packet_ids: PacketIdAllocator,
    election_rng: StreamRng,
    error_rng: StreamRng,
    /// Jitter for tone-observation scheduling: each sensor locks onto its own
    /// pulse phase, so waiting contenders are not synchronised.
    jitter_rng: StreamRng,
    // Metrics.
    energy: EnergyTracker,
    lifetime: LifetimeTracker,
    perf: NetworkPerformance,
    fairness: QueueFairness,
    collisions: u64,
    bursts: u64,
    node_failures: u64,
    events_processed: u64,
    /// Per-run profiling shard: wall time + event counts per subsystem and
    /// per event kind.  Empty unless `caem_metrics::prof` is enabled; never
    /// feeds back into simulation state, so profiled runs stay bit-identical.
    prof: Profile,
    // ---- hot-path hoisted constants (derived from `cfg` once) ----
    /// Energy of one tone-channel observation window.
    tone_observation_energy_j: f64,
    /// Energy of acquiring the tone channel after wake-up.
    sensing_energy_j: f64,
    /// Reusable same-instant batch buffer for the event loop.
    batch: Vec<ScheduledEvent<NetworkEvent>>,
    /// Retired burst vectors, recycled by `start_burst` so steady-state burst
    /// traffic performs no allocations.
    burst_buffer_pool: Vec<Vec<Packet>>,
}

impl SimulationRun {
    /// Deploy the network described by `cfg` and prime the event queue.
    ///
    /// Panics when `cfg` is invalid — use [`SimulationRun::try_new`] to
    /// surface the typed [`ConfigError`] when the configuration comes from
    /// user input rather than code.
    pub fn new(cfg: ScenarioConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(run) => run,
            Err(e) => panic!("invalid scenario configuration: {e}"),
        }
    }

    /// Deploy the network described by `cfg` and prime the event queue,
    /// surfacing validation failures as a typed [`ConfigError`] instead of
    /// panicking.
    pub fn try_new(cfg: ScenarioConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let streams = RngStream::new(cfg.seed);
        let table = NodeTable::deploy(&cfg, &streams);

        let mut queue = EventQueue::with_capacity(cfg.initial_queue_capacity());
        queue.push(SimTime::ZERO, NetworkEvent::RoundStart);
        queue.push(SimTime::ZERO, NetworkEvent::EnergySnapshot);
        queue.push(SimTime::ZERO, NetworkEvent::FairnessSnapshot);

        // Constants consumed on every hot-path event, derived from the
        // scenario once instead of being recomputed per observation.
        let idle_pulse = cfg.tone.pulse_for(ChannelState::Idle).duration;
        // Wake a little early and stay a little late to be sure of catching
        // the pulse: charge one-and-a-half pulse-durations of receive power.
        let tone_observation_energy_j = cfg.power.tone_rx_w * idle_pulse.as_secs_f64() * 1.5;
        let sensing_energy_j = cfg.power.tone_rx_w * cfg.sensing_delay.as_secs_f64();

        let mut run = SimulationRun {
            election: LeachElection::new(
                cfg.node_count,
                ElectionConfig {
                    ch_probability: cfg.ch_probability,
                },
            ),
            round_clock: RoundClock::new(cfg.round),
            formation: None,
            cluster_occupancy: Vec::new(),
            ongoing: (0..cfg.node_count).map(|_| None).collect(),
            packet_ids: PacketIdAllocator::new(),
            election_rng: streams.derive(components::ELECTION, 0),
            error_rng: streams.derive(components::PACKET_ERROR, 0),
            jitter_rng: streams.derive(components::MISC, 0),
            energy: EnergyTracker::new(cfg.node_count),
            lifetime: LifetimeTracker::new(cfg.node_count),
            perf: NetworkPerformance::new(),
            fairness: QueueFairness::new(),
            collisions: 0,
            bursts: 0,
            node_failures: 0,
            events_processed: 0,
            prof: Profile::new(),
            tone_observation_energy_j,
            sensing_energy_j,
            batch: Vec::new(),
            burst_buffer_pool: Vec::new(),
            table,
            now: SimTime::ZERO,
            queue,
            cfg,
        };
        // Prime the traffic: one pending arrival per node.
        for id in 0..run.cfg.node_count {
            let first = run.table.source_mut(id).next_arrival(SimTime::ZERO);
            run.schedule(first, NetworkEvent::PacketArrival { node: id as u32 });
        }
        // Churn injection: every node draws one exponential failure time
        // from its own stream; failures beyond the horizon are dropped by
        // `schedule`, so light churn costs nothing in the event loop.
        if let Some(churn) = run.cfg.churn {
            for id in 0..run.cfg.node_count {
                let mut rng = streams.derive(components::CHURN, id as u64);
                let at = SimTime::from_secs_f64(rng.exponential_mean(churn.mean_time_to_failure_s));
                run.schedule(at, NetworkEvent::NodeFailure { node: id as u32 });
            }
        }
        Ok(run)
    }

    /// The scenario this run simulates.
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of currently live nodes.
    pub fn alive_count(&self) -> usize {
        self.table.alive_count()
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Read-only access to the per-node state columns.
    pub fn table(&self) -> &NodeTable {
        &self.table
    }

    /// The profiling shard accumulated so far (empty when the profiler is
    /// disabled).  The stress harness diffs consecutive snapshots of this
    /// to attribute each soak tick.
    pub fn profile(&self) -> &Profile {
        &self.prof
    }

    fn schedule(&mut self, at: SimTime, event: NetworkEvent) {
        if at <= SimTime::ZERO + self.cfg.duration {
            self.queue.push(at.max(self.now), event);
        }
    }

    /// Draw energy from a node's battery, handling the death edge.
    fn draw_energy(&mut self, node: usize, category: EnergyCategory, joules: f64) {
        if joules <= 0.0 {
            return;
        }
        if self.table.draw_energy(node, category, joules) {
            self.lifetime.record_death(node, self.now);
        }
    }

    /// The data-channel SNR the sensor infers from the tone channel right now.
    fn measure_snr(&mut self, node: usize) -> f64 {
        let now = self.now;
        self.table.link_mut(node).measure(now).snr_db
    }

    /// The advertised state of a cluster's data channel.
    ///
    /// The head only advertises `receive` once it has detected the incoming
    /// burst, so a second sensor that checks the channel inside that
    /// detection window still sees `idle` — that window is exactly where
    /// collisions come from.
    fn channel_state(&self, cluster: usize) -> ChannelState {
        match self.cluster_occupancy.get(cluster).copied().flatten() {
            Some(occupant) => match &self.ongoing[occupant] {
                Some(burst) if burst.advertised_from <= self.now && burst.end > self.now => {
                    ChannelState::Receive
                }
                _ => ChannelState::Idle,
            },
            None => ChannelState::Idle,
        }
    }

    /// The live cluster head currently serving `node`, if any.
    fn head_of(&self, node: usize) -> Option<usize> {
        let formation = self.formation.as_ref()?;
        let head = formation.head_of(node)?;
        self.table.is_alive(head).then_some(head)
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn handle_round_start(&mut self) {
        if self.table.alive_count() == 0 {
            return; // whole network dead — no further rounds
        }
        // The election and the formation consume the table's hot columns
        // directly: no per-round copies into scratch buffers.
        let span = Span::start();
        let heads = self
            .election
            .elect_round(self.table.alive_slice(), &mut self.election_rng);
        span.stop(&mut self.prof, ProfKey::ClusterElection, 1);
        let span = Span::start();
        let formation = ClusterFormation::nearest_head(
            self.table.positions(),
            &heads,
            self.table.alive_slice(),
        );
        self.cluster_occupancy.clear();
        self.cluster_occupancy
            .resize(formation.cluster_count(), None);

        for id in 0..self.table.len() {
            if !self.table.is_alive(id) {
                continue;
            }
            let is_head = formation.is_head(id);
            let cluster = formation.cluster_of(id);
            let distance = formation
                .head_of(id)
                .map(|h| {
                    let positions = self.table.positions();
                    positions[id].distance_to(&positions[h])
                })
                .unwrap_or(0.0);
            self.table.begin_round(id, is_head, cluster);
            if !is_head {
                self.table.link_mut(id).set_distance(distance.max(1.0));
            }
            // A node that just became head drains its backlog straight into
            // its own aggregation queue: those packets have reached a sink.
            if is_head {
                let mut backlog = self.burst_buffer_pool.pop().unwrap_or_default();
                self.table
                    .dequeue_burst_into(id, usize::MAX >> 1, &mut backlog);
                for p in &backlog {
                    self.perf
                        .record_delivered(p.delay_at(self.now), p.size_bits);
                }
                self.table.record_self_delivered(id, backlog.len() as u64);
                self.recycle_burst_buffer(backlog);
            }
        }
        self.formation = Some(formation);
        span.stop(&mut self.prof, ProfKey::ClusterFormation, 1);
        let next = self.round_clock.next_round_start(self.now);
        self.schedule(next, NetworkEvent::RoundStart);
    }

    fn handle_packet_arrival(&mut self, node: usize) {
        if !self.table.is_alive(node) {
            return;
        }
        // Schedule the next arrival first so the source keeps flowing.
        let next = self.table.source_mut(node).next_arrival(self.now);
        self.schedule(next, NetworkEvent::PacketArrival { node: node as u32 });

        self.table.record_generated(node);
        self.perf.record_generated();

        if self.table.is_head(node) {
            // The head is the sink of its own cluster: its data is delivered
            // without using the shared data channel.
            self.perf
                .record_delivered(Duration::ZERO, self.cfg.frame.payload_bits);
            self.table.record_self_delivered(node, 1);
            return;
        }

        let packet = Packet::with_size(
            self.packet_ids.allocate(),
            node,
            self.now,
            self.cfg.frame.payload_bits,
        );
        let accepted = self.table.enqueue(node, packet);
        if !accepted {
            self.perf.record_dropped_overflow();
            self.table.record_dropped(node);
        }
        let queue_len = self.table.queue_len(node);
        self.table.policy_mut(node).on_packet_arrival(queue_len);

        // Wake the MAC only when a transmission could actually be worth the
        // radio start-up (enough packets, or overflow pressure).
        let urgent = self.table.policy(node).is_urgent(queue_len);
        if self.table.mac(node).state() == SensorMacState::Sleep
            && self.cfg.burst.should_transmit(queue_len, urgent)
        {
            let action = self.table.mac_mut(node).packets_pending(queue_len);
            if action == SensorAction::StartSensing {
                // Acquiring the tone channel costs the sensing delay with the
                // tone radio fully on.
                let sensing_energy = self.sensing_energy_j;
                self.draw_energy(node, EnergyCategory::ToneReceive, sensing_energy);
                self.schedule(
                    self.now + self.cfg.sensing_delay,
                    NetworkEvent::SenseChannel { node: node as u32 },
                );
            }
        }
    }

    /// The CSI-free observation context of one tone sample: advertised
    /// channel state (`None` when the node has no live cluster head) plus the
    /// policy's current inputs.  Deliberately does **not** touch the link
    /// model — the expensive CSI derivation happens lazily inside the MAC,
    /// and only on the branches whose decision depends on it.
    fn observation_context(&self, node: usize) -> (Option<ChannelState>, f64, usize, bool) {
        let state = match (self.head_of(node), self.table.cluster(node)) {
            (Some(_), Some(cluster)) => Some(self.channel_state(cluster)),
            _ => None,
        };
        let queue_len = self.table.queue_len(node);
        let policy = self.table.policy(node);
        let threshold = policy.required_snr_db();
        let urgent = policy.is_urgent(queue_len);
        (state, threshold, queue_len, urgent)
    }

    fn handle_sense_channel(&mut self, node: usize) {
        if !self.table.is_alive(node)
            || self.table.is_head(node)
            || self.table.mac(node).state() != SensorMacState::Sensing
        {
            return; // dead, promoted to head, or stale event
        }
        let observation_energy = self.tone_observation_energy_j;
        self.draw_energy(node, EnergyCategory::ToneReceive, observation_energy);
        if !self.table.is_alive(node) {
            return;
        }

        let (state, threshold, queue_len, urgent) = self.observation_context(node);
        let observed_state = state;
        let now = self.now;
        // Per-event subsystem attribution: the MAC decision is timed as a
        // whole, the lazy CSI closure separately — channel time is carved
        // out of the MAC slice so the two shares stay disjoint.  All timers
        // only *read* clocks; the simulation state is untouched.
        let chan_nanos = std::cell::Cell::new(0u64);
        let mac_clock = prof::clock();
        let (mac, link) = self.table.mac_link_mut(node);
        let action = mac.observe_tone_lazy(
            state,
            || {
                let t0 = prof::clock();
                let snr_db = link.measure(now).snr_db;
                if let Some(t0) = t0 {
                    chan_nanos.set(t0.elapsed().as_nanos() as u64);
                }
                snr_db
            },
            threshold,
            queue_len,
            urgent,
        );
        if let Some(t0) = mac_clock {
            // Test-only hook: CI injects a synthetic MAC slowdown here to
            // prove the budget gate trips (no-op unless the env var is set,
            // and only reachable while profiling).
            prof::selftest_spin();
            let total = t0.elapsed().as_nanos() as u64;
            let chan = chan_nanos.get();
            self.prof.add(ProfKey::Mac, 1, total.saturating_sub(chan));
            if chan > 0 {
                self.prof.add(ProfKey::Channel, 1, chan);
            }
        }
        match action {
            SensorAction::StartBackoff(backoff) => {
                // Tone radio stays fully on through the backoff.
                let energy = self.cfg.power.tone_rx_w * backoff.as_secs_f64();
                self.draw_energy(node, EnergyCategory::ToneReceive, energy);
                self.schedule(
                    self.now + backoff,
                    NetworkEvent::BackoffExpired { node: node as u32 },
                );
            }
            SensorAction::None => {
                // Keep monitoring: the next observation follows the pulse
                // cadence of the advertised state — a busy channel announces
                // itself every 10 ms (receive pulses), an idle one every
                // 50 ms, so waiting senders re-check the channel promptly
                // after a burst ends.  A per-observation jitter models each
                // sensor locking onto its own pulse phase; without it every
                // waiting contender would probe at the same instants and
                // collide far more often than the paper's protocol does.
                let interval = self
                    .cfg
                    .tone
                    .pulse_for(observed_state.unwrap_or(ChannelState::Idle))
                    .interval;
                let jitter = interval.mul_f64(self.jitter_rng.next_f64() * 0.5);
                self.schedule(
                    self.now + interval + jitter,
                    NetworkEvent::SenseChannel { node: node as u32 },
                );
            }
            SensorAction::EnterSleep => {}
            _ => {}
        }
    }

    fn handle_backoff_expired(&mut self, node: usize) {
        if !self.table.is_alive(node)
            || self.table.is_head(node)
            || self.table.mac(node).state() != SensorMacState::Backoff
        {
            return; // dead, promoted to head, or stale event
        }
        let (state, threshold, queue_len, urgent) = self.observation_context(node);
        let now = self.now;
        let chan_nanos = std::cell::Cell::new(0u64);
        let mac_clock = prof::clock();
        let (mac, link) = self.table.mac_link_mut(node);
        let action = mac.backoff_expired_lazy(
            state,
            || {
                let t0 = prof::clock();
                let snr_db = link.measure(now).snr_db;
                if let Some(t0) = t0 {
                    chan_nanos.set(t0.elapsed().as_nanos() as u64);
                }
                snr_db
            },
            threshold,
            queue_len,
            urgent,
        );
        if let Some(t0) = mac_clock {
            let total = t0.elapsed().as_nanos() as u64;
            let chan = chan_nanos.get();
            self.prof.add(ProfKey::Mac, 1, total.saturating_sub(chan));
            if chan > 0 {
                self.prof.add(ProfKey::Channel, 1, chan);
            }
        }
        match action {
            SensorAction::StartTransmission { burst_size } => {
                self.start_burst(node, burst_size);
            }
            SensorAction::None => {
                let interval = self.cfg.tone.pulse_for(ChannelState::Idle).interval;
                self.schedule(
                    self.now + interval,
                    NetworkEvent::SenseChannel { node: node as u32 },
                );
            }
            SensorAction::EnterSleep => {}
            _ => {}
        }
    }

    /// Return a finished burst's packet vector to the reuse pool.
    fn recycle_burst_buffer(&mut self, mut packets: Vec<Packet>) {
        packets.clear();
        self.burst_buffer_pool.push(packets);
    }

    fn abort_after_collision(&mut self, node: usize, resume_at: SimTime) {
        let (_, may_retry) = self.table.mac_mut(node).collision_detected();
        if !may_retry && self.table.dequeue(node).is_some() {
            self.perf.record_dropped_abandoned();
            self.table.record_dropped(node);
        }
        if self.table.is_alive(node) && self.table.queue_len(node) > 0 {
            self.schedule(resume_at, NetworkEvent::SenseChannel { node: node as u32 });
        }
    }

    fn start_burst(&mut self, node: usize, burst_size: usize) {
        // The data radio start-up transient is paid before any bit moves.
        let startup_energy = self.cfg.power.startup_energy();
        self.draw_energy(node, EnergyCategory::Startup, startup_energy);
        if !self.table.is_alive(node) {
            return;
        }
        let begin = self.now + self.cfg.power.startup_time;

        let t0 = prof::clock();
        let snr_db = self.measure_snr(node);
        if let Some(t0) = t0 {
            self.prof
                .add(ProfKey::Channel, 1, t0.elapsed().as_nanos() as u64);
        }
        let t0 = prof::clock();
        let selected = self.table.selector_mut(node).select(snr_db);
        if let Some(t0) = t0 {
            self.prof
                .add(ProfKey::Phy, 1, t0.elapsed().as_nanos() as u64);
        }
        let Some(mode) = selected else {
            // The channel collapsed below the lowest mode between the check
            // and the start-up: treat as a failed access attempt.
            self.abort_after_collision(node, begin + Duration::from_millis(20));
            return;
        };

        let (Some(cluster), Some(head)) = (self.table.cluster(node), self.head_of(node)) else {
            self.abort_after_collision(node, begin + Duration::from_millis(20));
            return;
        };

        let mut packets = self.burst_buffer_pool.pop().unwrap_or_default();
        self.table
            .dequeue_burst_into(node, burst_size, &mut packets);
        if packets.is_empty() {
            // Nothing to send after all (racing round change drained the
            // buffer); put the MAC back to sleep via burst completion.
            self.burst_buffer_pool.push(packets);
            let _ = self.table.mac_mut(node).burst_complete(0);
            return;
        }
        let airtime = self.cfg.frame.burst_airtime(mode, packets.len() as u64);
        let frame_airtime = self.cfg.frame.airtime(mode);
        let end = begin + airtime;

        // Collision detection: is another burst occupying this cluster's
        // channel during our interval?
        let occupant = self.cluster_occupancy.get(cluster).copied().flatten();
        let collides = occupant
            .and_then(|other| self.ongoing[other].as_ref())
            .map(|other| other.end > begin)
            .unwrap_or(false);
        if collides {
            self.collisions += 1;
            if let Some(other) = occupant {
                if let Some(burst) = self.ongoing[other].as_mut() {
                    burst.collided = true;
                }
            }
            // The colliding sender burns roughly one frame before the head's
            // collision tone stops it; the head wastes the same receive time.
            let tx_waste = self.cfg.power.transmit_energy(frame_airtime)
                + self.cfg.power.tone_rx_w * frame_airtime.as_secs_f64();
            self.draw_energy(node, EnergyCategory::CollisionWaste, tx_waste);
            let rx_waste = self.cfg.power.receive_energy(frame_airtime);
            self.draw_energy(head, EnergyCategory::CollisionWaste, rx_waste);
            self.table.requeue_front_drain(node, &mut packets);
            self.burst_buffer_pool.push(packets);
            self.abort_after_collision(node, begin + frame_airtime + Duration::from_millis(20));
            return;
        }

        // Clear channel: commit the burst.
        self.bursts += 1;
        let coded_bits_per_frame = self.cfg.frame.coded_bits(mode);
        let total_coded_bits = coded_bits_per_frame * packets.len() as u64;
        let tx_energy = self.cfg.power.transmit_energy(airtime)
            + self.cfg.power.tone_rx_w * airtime.as_secs_f64()
            + self.cfg.codec.encode_energy(total_coded_bits);
        self.draw_energy(node, EnergyCategory::DataTransmit, tx_energy);
        let codec_rx = self.cfg.codec.decode_energy(total_coded_bits);
        if codec_rx > 0.0 {
            self.draw_energy(head, EnergyCategory::Codec, codec_rx);
        }
        let rx_energy = self.cfg.power.receive_energy(airtime);
        self.draw_energy(head, EnergyCategory::DataReceive, rx_energy);

        if cluster < self.cluster_occupancy.len() {
            self.cluster_occupancy[cluster] = Some(node);
        }
        self.ongoing[node] = Some(OngoingBurst {
            advertised_from: self.now + self.cfg.ch_detection_delay,
            end,
            collided: false,
            packets,
            mode,
            head,
            cluster,
        });
        self.schedule(
            end,
            NetworkEvent::TransmissionComplete { node: node as u32 },
        );
    }

    fn handle_transmission_complete(&mut self, node: usize) {
        let Some(burst) = self.ongoing[node].take() else {
            return; // stale
        };
        if burst.cluster < self.cluster_occupancy.len()
            && self.cluster_occupancy[burst.cluster] == Some(node)
        {
            self.cluster_occupancy[burst.cluster] = None;
        }
        if !self.table.is_alive(node) {
            // Died mid-burst; the energy is already spent, data lost.
            self.recycle_burst_buffer(burst.packets);
            return;
        }
        if burst.collided {
            let mut packets = burst.packets;
            self.table.requeue_front_drain(node, &mut packets);
            self.burst_buffer_pool.push(packets);
            self.abort_after_collision(node, self.now + Duration::from_millis(20));
            return;
        }
        // Per-packet channel-error draw at the SNR seen during the burst.
        let head_alive = self.table.is_alive(burst.head);
        let t0 = prof::clock();
        let snr_db = self.measure_snr(node);
        if let Some(t0) = t0 {
            self.prof
                .add(ProfKey::Channel, 1, t0.elapsed().as_nanos() as u64);
        }
        let t0 = prof::clock();
        let per = packet_error_rate(
            burst.mode.modulation(),
            burst.mode.code_rate(),
            snr_db,
            self.cfg.frame.payload_bits,
        );
        for packet in &burst.packets {
            let corrupted = self.error_rng.bernoulli(per);
            if head_alive && !corrupted {
                self.perf
                    .record_delivered(packet.delay_at(self.now), packet.size_bits);
                self.table.record_delivered(node);
            }
        }
        if let Some(t0) = t0 {
            self.prof.add(
                ProfKey::Phy,
                burst.packets.len() as u64,
                t0.elapsed().as_nanos() as u64,
            );
        }
        self.recycle_burst_buffer(burst.packets);
        let queue_len = self.table.queue_len(node);
        self.table.policy_mut(node).on_packets_sent(queue_len);
        let action = self.table.mac_mut(node).burst_complete(queue_len);
        if action == SensorAction::StartSensing {
            self.schedule(
                self.now + self.cfg.sensing_delay,
                NetworkEvent::SenseChannel { node: node as u32 },
            );
        }
    }

    /// Churn injection: the node leaves the network for a non-energy reason.
    /// Its leftover charge stays in the battery (the hardware failed, the
    /// cell did not), it simply stops participating — any burst it had on
    /// the air is cleaned up by the usual stale-event paths.
    fn handle_node_failure(&mut self, node: usize) {
        if self.table.fail_node(node) {
            self.node_failures += 1;
            self.lifetime.record_death(node, self.now);
        }
    }

    fn handle_energy_snapshot(&mut self) {
        let span = Span::start();
        let interval = self.cfg.energy_snapshot_interval;
        // Baseline costs accrued over the past interval: data-radio sleep for
        // every live node, tone broadcasts for the current cluster heads.
        let sleep_energy = self.cfg.power.data_sleep_w * interval.as_secs_f64();
        let idle_duty = self.cfg.tone.duty_cycle(ChannelState::Idle);
        let head_tone_energy = self.cfg.power.tone_tx_w * idle_duty * interval.as_secs_f64();
        for id in 0..self.table.len() {
            if self.table.is_alive(id) {
                self.draw_energy(id, EnergyCategory::Sleep, sleep_energy);
                if self.table.is_head(id) {
                    self.draw_energy(id, EnergyCategory::ToneTransmit, head_tone_energy);
                }
            }
        }
        // The remaining-energy column is read after the draws, so a node
        // dying of its sleep cost snapshots as empty — and the tracker takes
        // the hot column directly, with no per-snapshot copy.
        self.energy.snapshot(self.now, self.table.remaining_slice());
        if self.table.alive_count() > 0 {
            self.schedule(self.now + interval, NetworkEvent::EnergySnapshot);
        }
        span.stop(&mut self.prof, ProfKey::StatsSnapshot, 1);
    }

    fn handle_fairness_snapshot(&mut self) {
        let span = Span::start();
        // The fairness tracker reads the hot queue-length column through the
        // alive/is-head masks directly — no filtered copy.
        self.fairness.snapshot_masked(
            self.table.queue_len_slice(),
            self.table.alive_slice(),
            self.table.is_head_slice(),
        );
        if self.table.alive_count() > 0 {
            self.schedule(
                self.now + self.cfg.fairness_snapshot_interval,
                NetworkEvent::FairnessSnapshot,
            );
        }
        span.stop(&mut self.prof, ProfKey::StatsSnapshot, 1);
    }

    /// Dispatch one same-instant batch: consecutive events of equal kind are
    /// grouped into runs and dispatched together, preserving the exact FIFO
    /// delivery order within the instant.
    fn dispatch_batch(&mut self, batch: &[ScheduledEvent<NetworkEvent>]) {
        let mut i = 0;
        while i < batch.len() {
            let kind = batch[i].event.kind();
            let mut j = i + 1;
            while j < batch.len() && batch[j].event.kind() == kind {
                j += 1;
            }
            let run = &batch[i..j];
            self.events_processed += run.len() as u64;
            let span = Span::start();
            match kind {
                EventKind::PacketArrival => {
                    for e in run {
                        let NetworkEvent::PacketArrival { node } = e.event else {
                            unreachable!("kind-grouped run");
                        };
                        self.handle_packet_arrival(node as usize);
                    }
                }
                EventKind::SenseChannel => {
                    for e in run {
                        let NetworkEvent::SenseChannel { node } = e.event else {
                            unreachable!("kind-grouped run");
                        };
                        self.handle_sense_channel(node as usize);
                    }
                }
                EventKind::BackoffExpired => {
                    for e in run {
                        let NetworkEvent::BackoffExpired { node } = e.event else {
                            unreachable!("kind-grouped run");
                        };
                        self.handle_backoff_expired(node as usize);
                    }
                }
                EventKind::TransmissionComplete => {
                    for e in run {
                        let NetworkEvent::TransmissionComplete { node } = e.event else {
                            unreachable!("kind-grouped run");
                        };
                        self.handle_transmission_complete(node as usize);
                    }
                }
                EventKind::NodeFailure => {
                    for e in run {
                        let NetworkEvent::NodeFailure { node } = e.event else {
                            unreachable!("kind-grouped run");
                        };
                        self.handle_node_failure(node as usize);
                    }
                }
                EventKind::RoundStart => {
                    for _ in run {
                        self.handle_round_start();
                    }
                }
                EventKind::EnergySnapshot => {
                    for _ in run {
                        self.handle_energy_snapshot();
                    }
                }
                EventKind::FairnessSnapshot => {
                    for _ in run {
                        self.handle_fairness_snapshot();
                    }
                }
            }
            span.stop(&mut self.prof, event_key(kind), run.len() as u64);
            i = j;
        }
    }

    /// Process events up to (and including) `until`, clamped to the
    /// scenario horizon.  Returns the number of events processed by this
    /// call.  The stress harness steps a run tick by tick through this
    /// method; [`SimulationRun::run`] is one call over the whole horizon.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let deadline = until.min(SimTime::ZERO + self.cfg.duration);
        let before = self.events_processed;
        let mut batch = std::mem::take(&mut self.batch);
        while let Some(at) = self.queue.pop_batch_at_or_before(deadline, &mut batch) {
            debug_assert!(at >= self.now);
            self.now = at;
            self.dispatch_batch(&batch);
        }
        self.batch = batch;
        self.events_processed - before
    }

    /// Run the simulation to the configured horizon and collect the result.
    pub fn run(mut self) -> SimulationResult {
        self.run_until(SimTime::ZERO + self.cfg.duration);
        self.finish()
    }

    /// Collect the result of a run stepped via [`SimulationRun::run_until`].
    /// Advances the clock to the horizon (pending events past it are
    /// discarded, exactly as [`SimulationRun::run`] leaves them).
    pub fn finish(mut self) -> SimulationResult {
        let horizon = SimTime::ZERO + self.cfg.duration;
        self.now = self.now.max(horizon);
        // Final energy snapshot so the Fig. 8 curve reaches the horizon.
        self.energy.snapshot(self.now, self.table.remaining_slice());
        self.perf.set_horizon(self.now);

        // Fold this run's profiling shard into the process-wide accumulator
        // (commutative adds — safe from parallel experiment workers) and
        // hand the shard itself to the result.
        if prof::enabled() {
            prof::global().add_profile(&self.prof);
        }

        let ledger = self.table.merged_ledger();
        let head_counts = self.election.head_counts().to_vec();
        let nodes: Vec<NodeSummary> = (0..self.table.len())
            .map(|id| NodeSummary {
                id,
                remaining_energy_j: self.table.remaining(id),
                death_time: self.lifetime.death_times()[id],
                generated: self.table.generated(id),
                delivered: self.table.delivered(id),
                dropped: self.table.dropped(id),
                head_terms: head_counts[id],
            })
            .collect();

        SimulationResult {
            policy: self.cfg.policy,
            traffic_rate_pps: self.cfg.traffic.mean_rate_pps(),
            seed: self.cfg.seed,
            end_time: self.now,
            energy: self.energy,
            lifetime: self.lifetime,
            perf: self.perf,
            fairness: self.fairness,
            ledger,
            nodes,
            collisions: self.collisions,
            bursts: self.bursts,
            node_failures: self.node_failures,
            events_processed: self.events_processed,
            queue_capacity: self.queue.capacity(),
            queue_high_watermark: self.queue.high_watermark(),
            profile: std::mem::take(&mut self.prof),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caem::policy::PolicyKind;

    fn small_run(policy: PolicyKind, seed: u64) -> SimulationResult {
        SimulationRun::new(ScenarioConfig::small(policy, 5.0, seed)).run()
    }

    #[test]
    fn small_scenario_runs_to_horizon() {
        let r = small_run(PolicyKind::Scheme1Adaptive, 1);
        assert_eq!(r.end_time, SimTime::from_secs(60));
        assert!(
            r.perf.generated() > 1_000,
            "generated {}",
            r.perf.generated()
        );
        assert!(r.perf.delivered() > 0);
        assert!(r.bursts > 0);
        assert_eq!(r.nodes.len(), 20);
    }

    #[test]
    fn try_new_surfaces_typed_errors_instead_of_panicking() {
        let mut cfg = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 1);
        cfg.node_count = 0;
        let err = match SimulationRun::try_new(cfg) {
            Ok(_) => panic!("zero nodes must be rejected"),
            Err(e) => e,
        };
        let msg = err.to_string();
        assert!(msg.contains("node_count"), "unexpected error: {msg}");
    }

    #[test]
    fn stepped_run_matches_one_shot_run() {
        // run_until in arbitrary increments + finish must be bit-identical
        // to a single run() over the same scenario.
        let cfg = ScenarioConfig::small(PolicyKind::Scheme1Adaptive, 5.0, 31);
        let one_shot = SimulationRun::new(cfg.clone()).run();
        let mut stepped = SimulationRun::new(cfg);
        let mut total = 0;
        for tick in [7u64, 13, 25, 40, 59, 60, 61] {
            total += stepped.run_until(SimTime::from_secs(tick));
        }
        let r = stepped.finish();
        assert_eq!(total, r.events_processed);
        assert_eq!(r.events_processed, one_shot.events_processed);
        assert_eq!(r.perf.delivered(), one_shot.perf.delivered());
        assert_eq!(r.collisions, one_shot.collisions);
        assert_eq!(
            r.ledger.total().to_bits(),
            one_shot.ledger.total().to_bits()
        );
        for (a, b) in r.nodes.iter().zip(&one_shot.nodes) {
            assert_eq!(
                a.remaining_energy_j.to_bits(),
                b.remaining_energy_j.to_bits()
            );
            assert_eq!(a.delivered, b.delivered);
        }
    }

    #[test]
    fn energy_only_decreases() {
        let r = small_run(PolicyKind::PureLeach, 2);
        let samples = r.energy.series().samples();
        assert!(samples.len() > 5);
        for w in samples.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "energy increased: {w:?}");
        }
        // Something was actually consumed.
        assert!(samples.last().unwrap().1 < samples[0].1);
    }

    #[test]
    fn delivery_is_counted_against_generation() {
        let r = small_run(PolicyKind::PureLeach, 3);
        assert!(r.perf.delivered() <= r.perf.generated());
        assert!(
            r.delivery_rate() > 0.3,
            "delivery rate {}",
            r.delivery_rate()
        );
        // Per-node accounting sums to the global counters.
        let gen_sum: u64 = r.nodes.iter().map(|n| n.generated).sum();
        assert_eq!(gen_sum, r.perf.generated());
        let del_sum: u64 = r.nodes.iter().map(|n| n.delivered).sum();
        assert_eq!(del_sum, r.perf.delivered());
    }

    #[test]
    fn event_queue_is_sized_from_the_scenario_and_never_regrows() {
        for rate in [5.0, 30.0] {
            let cfg = ScenarioConfig::small(PolicyKind::Scheme1Adaptive, rate, 5);
            let capacity = cfg.initial_queue_capacity();
            let r = SimulationRun::new(cfg).run();
            assert!(
                r.queue_high_watermark <= capacity,
                "at {rate} pkt/s the queue peaked at {} pending but was sized for {capacity}",
                r.queue_high_watermark,
            );
            assert!(r.queue_capacity >= capacity);
            // The sizing is not wildly oversized either: the peak should use
            // a meaningful fraction of the arena.
            assert!(
                r.queue_high_watermark * 8 >= capacity,
                "queue sized for {capacity} but peaked at only {}",
                r.queue_high_watermark
            );
        }
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let a = small_run(PolicyKind::Scheme1Adaptive, 7);
        let b = small_run(PolicyKind::Scheme1Adaptive, 7);
        assert_eq!(a.perf.generated(), b.perf.generated());
        assert_eq!(a.perf.delivered(), b.perf.delivered());
        assert_eq!(a.bursts, b.bursts);
        assert_eq!(a.collisions, b.collisions);
        assert!((a.ledger.total() - b.ledger.total()).abs() < 1e-9);
        let c = small_run(PolicyKind::Scheme1Adaptive, 8);
        assert_ne!(a.perf.delivered(), c.perf.delivered());
    }

    #[test]
    fn channel_adaptation_saves_energy_per_packet() {
        // The paper's central claim, on a small network: Scheme 1 spends less
        // energy per delivered packet than pure LEACH.
        let leach = small_run(PolicyKind::PureLeach, 11);
        let scheme1 = small_run(PolicyKind::Scheme1Adaptive, 11);
        let e_leach = leach.per_packet_energy().joules_per_packet().unwrap();
        let e_caem = scheme1.per_packet_energy().joules_per_packet().unwrap();
        assert!(
            e_caem < e_leach,
            "Scheme 1 ({e_caem} J/pkt) should beat pure LEACH ({e_leach} J/pkt)"
        );
    }

    #[test]
    fn scheme2_delivers_less_but_spends_less() {
        let scheme1 = small_run(PolicyKind::Scheme1Adaptive, 13);
        let scheme2 = small_run(PolicyKind::Scheme2Fixed, 13);
        // The fixed 2 Mbps threshold defers more traffic...
        assert!(scheme2.delivery_rate() <= scheme1.delivery_rate() + 0.05);
        // ...and consumes no more total energy.
        assert!(scheme2.ledger.total() <= scheme1.ledger.total() * 1.05);
    }

    #[test]
    fn ledger_total_matches_battery_drawdown() {
        let r = small_run(PolicyKind::Scheme1Adaptive, 17);
        let consumed_via_batteries: f64 = r.nodes.iter().map(|n| 10.0 - n.remaining_energy_j).sum();
        // Drawn energy can exceed initial-remaining only by the final draws
        // that crossed zero; on a 60 s run nothing should be near depletion.
        assert!((r.ledger.total() - consumed_via_batteries).abs() < 1e-6);
    }

    #[test]
    fn churn_injection_kills_nodes_without_draining_batteries() {
        let cfg = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 21)
            .with_duration(Duration::from_secs(30))
            .with_churn_mttf_s(20.0);
        let r = SimulationRun::new(cfg.clone()).run();
        assert!(
            r.node_failures > 0,
            "mttf 20s over 30s must fail some nodes"
        );
        assert!(r.lifetime.dead_count() as u64 >= r.node_failures);
        // Churned nodes leave their charge behind: some dead node still
        // holds most of its 10 J battery.
        assert!(r
            .nodes
            .iter()
            .any(|n| n.death_time.is_some() && n.remaining_energy_j > 5.0));
        // Churn draws come from their own stream: the injection is
        // reproducible bit-for-bit.
        let again = SimulationRun::new(cfg).run();
        assert_eq!(r.node_failures, again.node_failures);
        assert_eq!(r.perf.delivered(), again.perf.delivered());
    }

    #[test]
    fn energy_spread_diversifies_initial_charge_deterministically() {
        let cfg = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 22)
            .with_duration(Duration::from_secs(5))
            .with_energy_spread(0.5);
        let a = SimulationRun::new(cfg.clone()).run();
        let b = SimulationRun::new(cfg).run();
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(
                x.remaining_energy_j.to_bits(),
                y.remaining_energy_j.to_bits()
            );
        }
        let min = a
            .nodes
            .iter()
            .map(|n| n.remaining_energy_j)
            .fold(f64::INFINITY, f64::min);
        let max = a
            .nodes
            .iter()
            .map(|n| n.remaining_energy_j)
            .fold(0.0, f64::max);
        assert!(
            max - min > 2.0,
            "spread 0.5 on 10 J must diversify charge, got {min:.2}..{max:.2}"
        );
    }

    #[test]
    fn every_topology_runs_to_horizon() {
        use crate::config::Topology;
        for topology in [
            Topology::Grid { jitter_m: 2.0 },
            Topology::GaussianClusters {
                clusters: 3,
                sigma_m: 10.0,
            },
            Topology::Corridor {
                width_fraction: 0.3,
            },
        ] {
            let cfg = ScenarioConfig::small(PolicyKind::Scheme1Adaptive, 5.0, 23)
                .with_duration(Duration::from_secs(10))
                .with_topology(topology);
            let r = SimulationRun::new(cfg).run();
            assert_eq!(r.end_time, SimTime::from_secs(10), "{topology:?}");
            assert!(r.perf.generated() > 0, "{topology:?}");
            assert!(r.perf.delivered() > 0, "{topology:?}");
        }
    }

    #[test]
    fn diurnal_traffic_reshapes_arrivals_deterministically() {
        let constant = ScenarioConfig::small(PolicyKind::PureLeach, 5.0, 29)
            .with_duration(Duration::from_secs(40));
        // A period that does not divide the horizon: over whole periods the
        // warp is a bijection and counts would match exactly.
        let diurnal = constant.clone().with_diurnal_traffic(25.0, 0.9);
        let c = SimulationRun::new(constant).run();
        let d = SimulationRun::new(diurnal.clone()).run();
        // Modulation reshapes when packets arrive (so counts differ from the
        // stationary run) without moving the long-run offered load much.
        assert_ne!(c.perf.generated(), d.perf.generated());
        let (cg, dg) = (c.perf.generated() as f64, d.perf.generated() as f64);
        assert!(
            (dg - cg).abs() / cg < 0.15,
            "mean load preserved: {cg} vs {dg}"
        );
        // And the warp is bit-reproducible per seed.
        let again = SimulationRun::new(diurnal).run();
        assert_eq!(d.perf.generated(), again.perf.generated());
        assert_eq!(d.perf.delivered(), again.perf.delivered());
        assert_eq!(d.collisions, again.collisions);
    }

    #[test]
    fn heads_rotate_across_rounds() {
        let r = small_run(PolicyKind::PureLeach, 19);
        let nodes_with_head_terms = r.nodes.iter().filter(|n| n.head_terms > 0).count();
        // 60 s = 3 rounds ⇒ at least 3 distinct heads (usually more).
        assert!(nodes_with_head_terms >= 3, "{nodes_with_head_terms}");
    }
}
