//! The discrete-event network simulation loop.
//!
//! One [`SimulationRun`] owns every node, the LEACH election state, the
//! per-cluster channel occupancy and the metric trackers, and processes a
//! typed [`NetworkEvent`] queue until the configured horizon.  All
//! stochastic components draw from independent streams derived from the
//! scenario seed, so a run is exactly reproducible and protocol comparisons
//! use common random numbers.

use caem_channel::link::LinkChannel;
use caem_cluster::election::{ElectionConfig, LeachElection};
use caem_cluster::formation::ClusterFormation;
use caem_cluster::rounds::RoundClock;
use caem_energy::battery::{Battery, EnergyCategory, EnergyLedger};
use caem_mac::sensor::{SensorAction, SensorMac, SensorMacConfig, SensorMacState};
use caem_mac::tone::{ChannelState, ToneSignal};
use caem_metrics::energy::EnergyTracker;
use caem_metrics::fairness::QueueFairness;
use caem_metrics::lifetime::LifetimeTracker;
use caem_metrics::perf::NetworkPerformance;
use caem_phy::ber::packet_error_rate;
use caem_phy::mode::TransmissionMode;
use caem_phy::ModeSelector;
use caem_simcore::event::EventQueue;
use caem_simcore::rng::{components, RngStream, StreamRng};
use caem_simcore::time::{Duration, SimTime};
use caem_traffic::buffer::PacketBuffer;
use caem_traffic::packet::{Packet, PacketIdAllocator};
use caem_traffic::source::TrafficSource;

use crate::config::ScenarioConfig;
use crate::events::NetworkEvent;
use crate::node::{build_policy, build_source, SensorNode};
use crate::result::{NodeSummary, SimulationResult};

/// A burst currently on the air.
#[derive(Debug)]
struct OngoingBurst {
    /// When the cluster head starts advertising `receive` tones for this
    /// burst (commit time + head detection delay).  Until then other sensors
    /// still see `idle` — the collision vulnerability window.
    advertised_from: SimTime,
    /// Transmission end.
    end: SimTime,
    /// Set when a later burst collided with this one.
    collided: bool,
    /// Packets carried by the burst.
    packets: Vec<Packet>,
    /// ABICM mode the burst uses.
    mode: TransmissionMode,
    /// The cluster head the burst is addressed to.
    head: usize,
    /// Cluster index (of the round the burst started in).
    cluster: usize,
}

/// A fully-initialised simulation ready to run.
pub struct SimulationRun {
    cfg: ScenarioConfig,
    now: SimTime,
    queue: EventQueue<NetworkEvent>,
    nodes: Vec<SensorNode>,
    election: LeachElection,
    round_clock: RoundClock,
    formation: Option<ClusterFormation>,
    /// Which node's burst currently occupies each cluster channel.
    cluster_occupancy: Vec<Option<usize>>,
    /// At most one outgoing burst per node.
    ongoing: Vec<Option<OngoingBurst>>,
    packet_ids: PacketIdAllocator,
    election_rng: StreamRng,
    error_rng: StreamRng,
    /// Jitter for tone-observation scheduling: each sensor locks onto its own
    /// pulse phase, so waiting contenders are not synchronised.
    jitter_rng: StreamRng,
    // Metrics.
    energy: EnergyTracker,
    lifetime: LifetimeTracker,
    perf: NetworkPerformance,
    fairness: QueueFairness,
    collisions: u64,
    bursts: u64,
    generated_per_node: Vec<u64>,
    delivered_per_node: Vec<u64>,
    dropped_per_node: Vec<u64>,
}

impl SimulationRun {
    /// Deploy the network described by `cfg` and prime the event queue.
    pub fn new(cfg: ScenarioConfig) -> Self {
        cfg.validate();
        let streams = RngStream::new(cfg.seed);
        let mut placement_rng = streams.derive(components::PLACEMENT, 0);
        let positions = cfg.field.random_deployment(cfg.node_count, &mut placement_rng);

        let nodes: Vec<SensorNode> = (0..cfg.node_count)
            .map(|id| {
                let buffer = match cfg.buffer_capacity {
                    Some(c) => PacketBuffer::with_capacity(c),
                    None => PacketBuffer::unbounded(),
                };
                SensorNode {
                    id,
                    position: positions[id],
                    battery: Battery::new(cfg.initial_energy_j),
                    buffer,
                    mac: SensorMac::new(
                        SensorMacConfig {
                            backoff: cfg.backoff,
                            burst: cfg.burst,
                        },
                        streams.derive(components::BACKOFF, id as u64),
                    ),
                    policy: build_policy(cfg.policy, &cfg),
                    source: build_source(cfg.traffic, streams.derive(components::TRAFFIC, id as u64)),
                    link: LinkChannel::with_distance(
                        cfg.field.diagonal(),
                        cfg.link_budget,
                        cfg.path_loss,
                        cfg.shadowing,
                        streams.derive(components::SHADOWING, id as u64),
                        streams.derive(components::FADING, id as u64),
                    ),
                    selector: ModeSelector::default(),
                    alive: true,
                    is_head: false,
                    cluster: None,
                    self_delivered: 0,
                    access_generation: 0,
                }
            })
            .collect();

        let mut queue = EventQueue::with_capacity(cfg.node_count * 4);
        queue.push(SimTime::ZERO, NetworkEvent::RoundStart);
        queue.push(SimTime::ZERO, NetworkEvent::EnergySnapshot);
        queue.push(SimTime::ZERO, NetworkEvent::FairnessSnapshot);

        let mut run = SimulationRun {
            election: LeachElection::new(
                cfg.node_count,
                ElectionConfig {
                    ch_probability: cfg.ch_probability,
                },
            ),
            round_clock: RoundClock::new(cfg.round),
            formation: None,
            cluster_occupancy: Vec::new(),
            ongoing: (0..cfg.node_count).map(|_| None).collect(),
            packet_ids: PacketIdAllocator::new(),
            election_rng: streams.derive(components::ELECTION, 0),
            error_rng: streams.derive(components::PACKET_ERROR, 0),
            jitter_rng: streams.derive(components::MISC, 0),
            energy: EnergyTracker::new(cfg.node_count),
            lifetime: LifetimeTracker::new(cfg.node_count),
            perf: NetworkPerformance::new(),
            fairness: QueueFairness::new(),
            collisions: 0,
            bursts: 0,
            generated_per_node: vec![0; cfg.node_count],
            delivered_per_node: vec![0; cfg.node_count],
            dropped_per_node: vec![0; cfg.node_count],
            nodes,
            now: SimTime::ZERO,
            queue,
            cfg,
        };
        // Prime the traffic: one pending arrival per node.
        for id in 0..run.cfg.node_count {
            let first = run.nodes[id].source.next_arrival(SimTime::ZERO);
            run.schedule(first, NetworkEvent::PacketArrival { node: id });
        }
        run
    }

    /// The scenario this run simulates.
    pub fn config(&self) -> &ScenarioConfig {
        &self.cfg
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn schedule(&mut self, at: SimTime, event: NetworkEvent) {
        if at <= SimTime::ZERO + self.cfg.duration {
            self.queue.push(at.max(self.now), event);
        }
    }

    /// Draw energy from a node's battery, handling the death edge.
    fn draw_energy(&mut self, node: usize, category: EnergyCategory, joules: f64) {
        if !self.nodes[node].alive || joules <= 0.0 {
            return;
        }
        let died = self.nodes[node].battery.draw(category, joules);
        if died {
            self.nodes[node].alive = false;
            self.lifetime.record_death(node, self.now);
        }
    }

    /// The data-channel SNR the sensor infers from the tone channel right now.
    fn measure_snr(&mut self, node: usize) -> f64 {
        let now = self.now;
        self.nodes[node].link.measure(now).snr_db
    }

    /// The advertised state of a cluster's data channel.
    ///
    /// The head only advertises `receive` once it has detected the incoming
    /// burst, so a second sensor that checks the channel inside that
    /// detection window still sees `idle` — that window is exactly where
    /// collisions come from.
    fn channel_state(&self, cluster: usize) -> ChannelState {
        match self.cluster_occupancy.get(cluster).copied().flatten() {
            Some(occupant) => match &self.ongoing[occupant] {
                Some(burst) if burst.advertised_from <= self.now && burst.end > self.now => {
                    ChannelState::Receive
                }
                _ => ChannelState::Idle,
            },
            None => ChannelState::Idle,
        }
    }

    /// The live cluster head currently serving `node`, if any.
    fn head_of(&self, node: usize) -> Option<usize> {
        let formation = self.formation.as_ref()?;
        let head = formation.head_of(node)?;
        self.nodes[head].alive.then_some(head)
    }

    /// Energy charged for one tone-channel observation window (the sensor
    /// wakes its tone radio just long enough to catch a pulse).
    fn tone_observation_energy(&self) -> f64 {
        let pulse = self.cfg.tone.pulse_for(ChannelState::Idle).duration;
        // Wake a little early and stay a little late to be sure of catching
        // the pulse: charge one-and-a-half pulse-durations of receive power.
        self.cfg.power.tone_rx_w * pulse.as_secs_f64() * 1.5
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn handle_round_start(&mut self) {
        let alive: Vec<bool> = self.nodes.iter().map(|n| n.alive).collect();
        if !alive.iter().any(|&a| a) {
            return; // whole network dead — no further rounds
        }
        let heads = self.election.elect_round(&alive, &mut self.election_rng);
        let positions: Vec<_> = self.nodes.iter().map(|n| n.position).collect();
        let formation = ClusterFormation::nearest_head(&positions, &heads, &alive);
        self.cluster_occupancy = vec![None; formation.cluster_count()];

        for id in 0..self.nodes.len() {
            if !self.nodes[id].alive {
                continue;
            }
            let is_head = formation.is_head(id);
            let cluster = formation.cluster_of(id);
            let distance = formation
                .head_of(id)
                .map(|h| self.nodes[id].position.distance_to(&self.nodes[h].position))
                .unwrap_or(0.0);
            let node = &mut self.nodes[id];
            node.is_head = is_head;
            node.cluster = cluster;
            node.policy.on_round_change();
            node.access_generation += 1;
            if !is_head {
                node.link.set_distance(distance.max(1.0));
            }
            // A node that just became head drains its backlog straight into
            // its own aggregation queue: those packets have reached a sink.
            if is_head {
                let backlog = node.buffer.dequeue_burst(usize::MAX >> 1);
                for p in backlog {
                    self.perf
                        .record_delivered(p.delay_at(self.now), p.size_bits);
                    self.delivered_per_node[id] += 1;
                    self.nodes[id].self_delivered += 1;
                }
            }
        }
        self.formation = Some(formation);
        let next = self.round_clock.next_round_start(self.now);
        self.schedule(next, NetworkEvent::RoundStart);
    }

    fn handle_packet_arrival(&mut self, node: usize) {
        if !self.nodes[node].alive {
            return;
        }
        // Schedule the next arrival first so the source keeps flowing.
        let next = self.nodes[node].source.next_arrival(self.now);
        self.schedule(next, NetworkEvent::PacketArrival { node });

        self.generated_per_node[node] += 1;
        self.perf.record_generated();

        if self.nodes[node].is_head {
            // The head is the sink of its own cluster: its data is delivered
            // without using the shared data channel.
            self.perf
                .record_delivered(Duration::ZERO, self.cfg.frame.payload_bits);
            self.delivered_per_node[node] += 1;
            self.nodes[node].self_delivered += 1;
            return;
        }

        let packet = Packet::with_size(
            self.packet_ids.allocate(),
            node,
            self.now,
            self.cfg.frame.payload_bits,
        );
        let accepted = self.nodes[node].buffer.enqueue(packet);
        if !accepted {
            self.perf.record_dropped_overflow();
            self.dropped_per_node[node] += 1;
        }
        let queue_len = self.nodes[node].buffer.len();
        self.nodes[node].policy.on_packet_arrival(queue_len);

        // Wake the MAC only when a transmission could actually be worth the
        // radio start-up (enough packets, or overflow pressure).
        let urgent = self.nodes[node].policy.is_urgent(queue_len);
        if self.nodes[node].mac.state() == SensorMacState::Sleep
            && self.cfg.burst.should_transmit(queue_len, urgent)
        {
            let action = self.nodes[node].mac.packets_pending(queue_len);
            if action == SensorAction::StartSensing {
                // Acquiring the tone channel costs the sensing delay with the
                // tone radio fully on.
                let sensing_energy =
                    self.cfg.power.tone_rx_w * self.cfg.sensing_delay.as_secs_f64();
                self.draw_energy(node, EnergyCategory::ToneReceive, sensing_energy);
                self.schedule(
                    self.now + self.cfg.sensing_delay,
                    NetworkEvent::SenseChannel { node },
                );
            }
        }
    }

    fn sense_inputs(&mut self, node: usize) -> Option<(ToneSignal, f64, usize, bool)> {
        let head = self.head_of(node)?;
        let cluster = self.nodes[node].cluster?;
        let _ = head;
        let snr_db = self.measure_snr(node);
        let state = self.channel_state(cluster);
        let queue_len = self.nodes[node].buffer.len();
        let threshold = self.nodes[node].policy.required_snr_db();
        let urgent = self.nodes[node].policy.is_urgent(queue_len);
        Some((
            ToneSignal {
                state,
                tone_snr_db: snr_db,
            },
            threshold,
            queue_len,
            urgent,
        ))
    }

    fn handle_sense_channel(&mut self, node: usize) {
        if !self.nodes[node].alive || self.nodes[node].is_head {
            return;
        }
        if self.nodes[node].mac.state() != SensorMacState::Sensing {
            return; // stale event
        }
        let observation_energy = self.tone_observation_energy();
        self.draw_energy(node, EnergyCategory::ToneReceive, observation_energy);
        if !self.nodes[node].alive {
            return;
        }

        let inputs = self.sense_inputs(node);
        let observed_state = inputs.as_ref().map(|(s, _, _, _)| s.state);
        let action = match inputs {
            None => {
                let n = &mut self.nodes[node];
                n.mac.observe_tone(None, 0.0, n.buffer.len(), false)
            }
            Some((signal, threshold, queue_len, urgent)) => self.nodes[node]
                .mac
                .observe_tone(Some(signal), threshold, queue_len, urgent),
        };
        match action {
            SensorAction::StartBackoff(backoff) => {
                // Tone radio stays fully on through the backoff.
                let energy = self.cfg.power.tone_rx_w * backoff.as_secs_f64();
                self.draw_energy(node, EnergyCategory::ToneReceive, energy);
                self.schedule(self.now + backoff, NetworkEvent::BackoffExpired { node });
            }
            SensorAction::None => {
                // Keep monitoring: the next observation follows the pulse
                // cadence of the advertised state — a busy channel announces
                // itself every 10 ms (receive pulses), an idle one every
                // 50 ms, so waiting senders re-check the channel promptly
                // after a burst ends.  A per-observation jitter models each
                // sensor locking onto its own pulse phase; without it every
                // waiting contender would probe at the same instants and
                // collide far more often than the paper's protocol does.
                let interval = self
                    .cfg
                    .tone
                    .pulse_for(observed_state.unwrap_or(ChannelState::Idle))
                    .interval;
                let jitter = interval.mul_f64(self.jitter_rng.next_f64() * 0.5);
                self.schedule(
                    self.now + interval + jitter,
                    NetworkEvent::SenseChannel { node },
                );
            }
            SensorAction::EnterSleep => {}
            _ => {}
        }
    }

    fn handle_backoff_expired(&mut self, node: usize) {
        if !self.nodes[node].alive || self.nodes[node].is_head {
            return;
        }
        if self.nodes[node].mac.state() != SensorMacState::Backoff {
            return; // stale event
        }
        let inputs = self.sense_inputs(node);
        let action = match inputs {
            None => {
                let n = &mut self.nodes[node];
                n.mac.backoff_expired(None, 0.0, n.buffer.len(), false)
            }
            Some((signal, threshold, queue_len, urgent)) => self.nodes[node]
                .mac
                .backoff_expired(Some(signal), threshold, queue_len, urgent),
        };
        match action {
            SensorAction::StartTransmission { burst_size } => {
                self.start_burst(node, burst_size);
            }
            SensorAction::None => {
                let interval = self.cfg.tone.pulse_for(ChannelState::Idle).interval;
                self.schedule(self.now + interval, NetworkEvent::SenseChannel { node });
            }
            SensorAction::EnterSleep => {}
            _ => {}
        }
    }

    fn abort_after_collision(&mut self, node: usize, resume_at: SimTime) {
        let (_, may_retry) = self.nodes[node].mac.collision_detected();
        if !may_retry {
            if self.nodes[node].buffer.dequeue().is_some() {
                self.perf.record_dropped_abandoned();
                self.dropped_per_node[node] += 1;
            }
        }
        if self.nodes[node].alive && !self.nodes[node].buffer.is_empty() {
            self.schedule(resume_at, NetworkEvent::SenseChannel { node });
        }
    }

    fn start_burst(&mut self, node: usize, burst_size: usize) {
        // The data radio start-up transient is paid before any bit moves.
        let startup_energy = self.cfg.power.startup_energy();
        self.draw_energy(node, EnergyCategory::Startup, startup_energy);
        if !self.nodes[node].alive {
            return;
        }
        let begin = self.now + self.cfg.power.startup_time;

        let snr_db = self.measure_snr(node);
        let Some(mode) = self.nodes[node].selector.select(snr_db) else {
            // The channel collapsed below the lowest mode between the check
            // and the start-up: treat as a failed access attempt.
            self.abort_after_collision(node, begin + Duration::from_millis(20));
            return;
        };

        let (Some(cluster), Some(head)) = (self.nodes[node].cluster, self.head_of(node)) else {
            self.abort_after_collision(node, begin + Duration::from_millis(20));
            return;
        };

        let packets = self.nodes[node].buffer.dequeue_burst(burst_size);
        if packets.is_empty() {
            // Nothing to send after all (racing round change drained the
            // buffer); put the MAC back to sleep via burst completion.
            let _ = self.nodes[node].mac.burst_complete(0);
            return;
        }
        let airtime = self.cfg.frame.burst_airtime(mode, packets.len() as u64);
        let frame_airtime = self.cfg.frame.airtime(mode);
        let end = begin + airtime;

        // Collision detection: is another burst occupying this cluster's
        // channel during our interval?
        let occupant = self.cluster_occupancy.get(cluster).copied().flatten();
        let collides = occupant
            .and_then(|other| self.ongoing[other].as_ref())
            .map(|other| other.end > begin)
            .unwrap_or(false);
        if collides {
            self.collisions += 1;
            if let Some(other) = occupant {
                if let Some(burst) = self.ongoing[other].as_mut() {
                    burst.collided = true;
                }
            }
            // The colliding sender burns roughly one frame before the head's
            // collision tone stops it; the head wastes the same receive time.
            let tx_waste = self.cfg.power.transmit_energy(frame_airtime)
                + self.cfg.power.tone_rx_w * frame_airtime.as_secs_f64();
            self.draw_energy(node, EnergyCategory::CollisionWaste, tx_waste);
            let rx_waste = self.cfg.power.receive_energy(frame_airtime);
            self.draw_energy(head, EnergyCategory::CollisionWaste, rx_waste);
            self.nodes[node].buffer.requeue_front(packets);
            self.abort_after_collision(node, begin + frame_airtime + Duration::from_millis(20));
            return;
        }

        // Clear channel: commit the burst.
        self.bursts += 1;
        let coded_bits_per_frame = self.cfg.frame.coded_bits(mode);
        let total_coded_bits = coded_bits_per_frame * packets.len() as u64;
        let tx_energy = self.cfg.power.transmit_energy(airtime)
            + self.cfg.power.tone_rx_w * airtime.as_secs_f64()
            + self.cfg.codec.encode_energy(total_coded_bits);
        self.draw_energy(node, EnergyCategory::DataTransmit, tx_energy);
        let codec_rx = self.cfg.codec.decode_energy(total_coded_bits);
        if codec_rx > 0.0 {
            self.draw_energy(head, EnergyCategory::Codec, codec_rx);
        }
        let rx_energy = self.cfg.power.receive_energy(airtime);
        self.draw_energy(head, EnergyCategory::DataReceive, rx_energy);

        if cluster < self.cluster_occupancy.len() {
            self.cluster_occupancy[cluster] = Some(node);
        }
        self.ongoing[node] = Some(OngoingBurst {
            advertised_from: self.now + self.cfg.ch_detection_delay,
            end,
            collided: false,
            packets,
            mode,
            head,
            cluster,
        });
        self.schedule(end, NetworkEvent::TransmissionComplete { node });
    }

    fn handle_transmission_complete(&mut self, node: usize) {
        let Some(burst) = self.ongoing[node].take() else {
            return; // stale
        };
        if burst.cluster < self.cluster_occupancy.len()
            && self.cluster_occupancy[burst.cluster] == Some(node)
        {
            self.cluster_occupancy[burst.cluster] = None;
        }
        if !self.nodes[node].alive {
            return; // died mid-burst; the energy is already spent, data lost
        }
        if burst.collided {
            self.nodes[node].buffer.requeue_front(burst.packets);
            self.abort_after_collision(node, self.now + Duration::from_millis(20));
            return;
        }
        // Per-packet channel-error draw at the SNR seen during the burst.
        let head_alive = self.nodes[burst.head].alive;
        let snr_db = self.measure_snr(node);
        let per = packet_error_rate(
            burst.mode.modulation(),
            burst.mode.code_rate(),
            snr_db,
            self.cfg.frame.payload_bits,
        );
        for packet in &burst.packets {
            let corrupted = self.error_rng.bernoulli(per);
            if head_alive && !corrupted {
                self.perf
                    .record_delivered(packet.delay_at(self.now), packet.size_bits);
                self.delivered_per_node[node] += 1;
            }
        }
        let queue_len = self.nodes[node].buffer.len();
        self.nodes[node].policy.on_packets_sent(queue_len);
        let action = self.nodes[node].mac.burst_complete(queue_len);
        if action == SensorAction::StartSensing {
            self.schedule(
                self.now + self.cfg.sensing_delay,
                NetworkEvent::SenseChannel { node },
            );
        }
    }

    fn handle_energy_snapshot(&mut self) {
        let interval = self.cfg.energy_snapshot_interval;
        // Baseline costs accrued over the past interval: data-radio sleep for
        // every live node, tone broadcasts for the current cluster heads.
        let sleep_energy = self.cfg.power.data_sleep_w * interval.as_secs_f64();
        let idle_duty = self.cfg.tone.duty_cycle(ChannelState::Idle);
        let head_tone_energy =
            self.cfg.power.tone_tx_w * idle_duty * interval.as_secs_f64();
        for id in 0..self.nodes.len() {
            if !self.nodes[id].alive {
                continue;
            }
            self.draw_energy(id, EnergyCategory::Sleep, sleep_energy);
            if self.nodes[id].is_head {
                self.draw_energy(id, EnergyCategory::ToneTransmit, head_tone_energy);
            }
        }
        let remaining: Vec<f64> = self.nodes.iter().map(|n| n.remaining_energy()).collect();
        self.energy.snapshot(self.now, &remaining);
        if self.nodes.iter().any(|n| n.alive) {
            self.schedule(self.now + interval, NetworkEvent::EnergySnapshot);
        }
    }

    fn handle_fairness_snapshot(&mut self) {
        let queues: Vec<usize> = self
            .nodes
            .iter()
            .filter(|n| n.alive && !n.is_head)
            .map(|n| n.buffer.len())
            .collect();
        self.fairness.snapshot(&queues);
        if self.nodes.iter().any(|n| n.alive) {
            self.schedule(
                self.now + self.cfg.fairness_snapshot_interval,
                NetworkEvent::FairnessSnapshot,
            );
        }
    }

    /// Run the simulation to the configured horizon and collect the result.
    pub fn run(mut self) -> SimulationResult {
        let horizon = SimTime::ZERO + self.cfg.duration;
        while let Some(next_time) = self.queue.peek_time() {
            if next_time > horizon {
                break;
            }
            let event = self.queue.pop().expect("peeked event exists");
            debug_assert!(event.time >= self.now);
            self.now = event.time;
            match event.event {
                NetworkEvent::RoundStart => self.handle_round_start(),
                NetworkEvent::PacketArrival { node } => self.handle_packet_arrival(node),
                NetworkEvent::SenseChannel { node } => self.handle_sense_channel(node),
                NetworkEvent::BackoffExpired { node } => self.handle_backoff_expired(node),
                NetworkEvent::TransmissionComplete { node } => {
                    self.handle_transmission_complete(node)
                }
                NetworkEvent::EnergySnapshot => self.handle_energy_snapshot(),
                NetworkEvent::FairnessSnapshot => self.handle_fairness_snapshot(),
            }
        }
        self.finish(horizon)
    }

    fn finish(mut self, horizon: SimTime) -> SimulationResult {
        self.now = self.now.max(horizon.min(SimTime::ZERO + self.cfg.duration));
        // Final energy snapshot so the Fig. 8 curve reaches the horizon.
        let remaining: Vec<f64> = self.nodes.iter().map(|n| n.remaining_energy()).collect();
        self.energy.snapshot(self.now, &remaining);
        self.perf.set_horizon(self.now);

        let mut ledger = EnergyLedger::new();
        for n in &self.nodes {
            ledger.merge(n.battery.ledger());
        }
        let head_counts = self.election.head_counts().to_vec();
        let nodes: Vec<NodeSummary> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(id, n)| NodeSummary {
                id,
                remaining_energy_j: n.remaining_energy(),
                death_time: self.lifetime.death_times()[id],
                generated: self.generated_per_node[id],
                delivered: self.delivered_per_node[id],
                dropped: self.dropped_per_node[id],
                head_terms: head_counts[id],
            })
            .collect();

        SimulationResult {
            policy: self.cfg.policy,
            traffic_rate_pps: self.cfg.traffic.mean_rate_pps(),
            seed: self.cfg.seed,
            end_time: self.now,
            energy: self.energy,
            lifetime: self.lifetime,
            perf: self.perf,
            fairness: self.fairness,
            ledger,
            nodes,
            collisions: self.collisions,
            bursts: self.bursts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caem::policy::PolicyKind;

    fn small_run(policy: PolicyKind, seed: u64) -> SimulationResult {
        SimulationRun::new(ScenarioConfig::small(policy, 5.0, seed)).run()
    }

    #[test]
    fn small_scenario_runs_to_horizon() {
        let r = small_run(PolicyKind::Scheme1Adaptive, 1);
        assert_eq!(r.end_time, SimTime::from_secs(60));
        assert!(r.perf.generated() > 1_000, "generated {}", r.perf.generated());
        assert!(r.perf.delivered() > 0);
        assert!(r.bursts > 0);
        assert_eq!(r.nodes.len(), 20);
    }

    #[test]
    fn energy_only_decreases() {
        let r = small_run(PolicyKind::PureLeach, 2);
        let samples = r.energy.series().samples();
        assert!(samples.len() > 5);
        for w in samples.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "energy increased: {w:?}");
        }
        // Something was actually consumed.
        assert!(samples.last().unwrap().1 < samples[0].1);
    }

    #[test]
    fn delivery_is_counted_against_generation() {
        let r = small_run(PolicyKind::PureLeach, 3);
        assert!(r.perf.delivered() <= r.perf.generated());
        assert!(r.delivery_rate() > 0.3, "delivery rate {}", r.delivery_rate());
        // Per-node accounting sums to the global counters.
        let gen_sum: u64 = r.nodes.iter().map(|n| n.generated).sum();
        assert_eq!(gen_sum, r.perf.generated());
        let del_sum: u64 = r.nodes.iter().map(|n| n.delivered).sum();
        assert_eq!(del_sum, r.perf.delivered());
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let a = small_run(PolicyKind::Scheme1Adaptive, 7);
        let b = small_run(PolicyKind::Scheme1Adaptive, 7);
        assert_eq!(a.perf.generated(), b.perf.generated());
        assert_eq!(a.perf.delivered(), b.perf.delivered());
        assert_eq!(a.bursts, b.bursts);
        assert_eq!(a.collisions, b.collisions);
        assert!((a.ledger.total() - b.ledger.total()).abs() < 1e-9);
        let c = small_run(PolicyKind::Scheme1Adaptive, 8);
        assert_ne!(a.perf.delivered(), c.perf.delivered());
    }

    #[test]
    fn channel_adaptation_saves_energy_per_packet() {
        // The paper's central claim, on a small network: Scheme 1 spends less
        // energy per delivered packet than pure LEACH.
        let leach = small_run(PolicyKind::PureLeach, 11);
        let scheme1 = small_run(PolicyKind::Scheme1Adaptive, 11);
        let e_leach = leach.per_packet_energy().joules_per_packet().unwrap();
        let e_caem = scheme1.per_packet_energy().joules_per_packet().unwrap();
        assert!(
            e_caem < e_leach,
            "Scheme 1 ({e_caem} J/pkt) should beat pure LEACH ({e_leach} J/pkt)"
        );
    }

    #[test]
    fn scheme2_delivers_less_but_spends_less() {
        let scheme1 = small_run(PolicyKind::Scheme1Adaptive, 13);
        let scheme2 = small_run(PolicyKind::Scheme2Fixed, 13);
        // The fixed 2 Mbps threshold defers more traffic...
        assert!(scheme2.delivery_rate() <= scheme1.delivery_rate() + 0.05);
        // ...and consumes no more total energy.
        assert!(scheme2.ledger.total() <= scheme1.ledger.total() * 1.05);
    }

    #[test]
    fn ledger_total_matches_battery_drawdown() {
        let r = small_run(PolicyKind::Scheme1Adaptive, 17);
        let consumed_via_batteries: f64 = r
            .nodes
            .iter()
            .map(|n| 10.0 - n.remaining_energy_j)
            .sum();
        // Drawn energy can exceed initial-remaining only by the final draws
        // that crossed zero; on a 60 s run nothing should be near depletion.
        assert!((r.ledger.total() - consumed_via_batteries).abs() < 1e-6);
    }

    #[test]
    fn heads_rotate_across_rounds() {
        let r = small_run(PolicyKind::PureLeach, 19);
        let nodes_with_head_terms = r.nodes.iter().filter(|n| n.head_terms > 0).count();
        // 60 s = 3 rounds ⇒ at least 3 distinct heads (usually more).
        assert!(nodes_with_head_terms >= 3, "{nodes_with_head_terms}");
    }
}
