//! The four ABICM transmission modes and their threshold-class arithmetic.
//!
//! Each mode pairs a modulation with a convolutional-code rate; the paper
//! only specifies the resulting *effective throughputs* (2 Mbps, 1 Mbps,
//! 450 kbps, 250 kbps) and that higher modes need better channels.  The SNR
//! switching thresholds below are chosen so each mode operates at a packet
//! error rate of roughly 1 % for the paper's 2-kbit packets (see `ber`),
//! which is the standard design point for adaptive-modulation mode tables.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::ber::Modulation;

/// Number of ABICM modes (the paper's "4-mode configuration").
pub const MODE_COUNT: usize = 4;

/// The four transmission modes, ordered from most to least demanding.
///
/// `Mbps2` is "class 0" (the highest threshold class); `Kbps250` is
/// "class 3" (the lowest).  The CAEM threshold-adjustment pseudo-code speaks
/// of "lowering the threshold by one class" — that maps to
/// [`TransmissionMode::one_class_lower`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TransmissionMode {
    /// 2 Mbps — 16-QAM with a high-rate code; requires the best channel.
    Mbps2,
    /// 1 Mbps — QPSK with a high-rate code.
    Mbps1,
    /// 450 kbps — QPSK with a low-rate (heavily redundant) code.
    Kbps450,
    /// 250 kbps — BPSK with a low-rate code; works on the worst usable link.
    Kbps250,
}

/// All modes ordered from the highest throughput (class 0) to the lowest.
pub const ALL_MODES: [TransmissionMode; MODE_COUNT] = [
    TransmissionMode::Mbps2,
    TransmissionMode::Mbps1,
    TransmissionMode::Kbps450,
    TransmissionMode::Kbps250,
];

impl TransmissionMode {
    /// Effective throughput in bits per second after coding and modulation.
    pub fn throughput_bps(self) -> f64 {
        match self {
            TransmissionMode::Mbps2 => 2_000_000.0,
            TransmissionMode::Mbps1 => 1_000_000.0,
            TransmissionMode::Kbps450 => 450_000.0,
            TransmissionMode::Kbps250 => 250_000.0,
        }
    }

    /// The modulation used by this mode.
    pub fn modulation(self) -> Modulation {
        match self {
            TransmissionMode::Mbps2 => Modulation::Qam16,
            TransmissionMode::Mbps1 => Modulation::Qpsk,
            TransmissionMode::Kbps450 => Modulation::Qpsk,
            TransmissionMode::Kbps250 => Modulation::Bpsk,
        }
    }

    /// Code rate (useful bits / coded bits) of the mode's FEC.
    ///
    /// The raw channel symbol rate is 500 ksym/s on a 2 MHz allocation;
    /// throughput = symbol_rate × bits-per-symbol × code_rate, so the code
    /// rates below reproduce the paper's four throughput levels exactly.
    pub fn code_rate(self) -> f64 {
        match self {
            TransmissionMode::Mbps2 => 1.0,    // 500k × 4 × 1.0   = 2 Mbps
            TransmissionMode::Mbps1 => 1.0,    // 500k × 2 × 1.0   = 1 Mbps
            TransmissionMode::Kbps450 => 0.45, // 500k × 2 × 0.45  = 450 kbps
            TransmissionMode::Kbps250 => 0.5,  // 500k × 1 × 0.5   = 250 kbps
        }
    }

    /// FEC redundancy overhead: coded bits transmitted per useful bit.
    pub fn redundancy_factor(self) -> f64 {
        1.0 / self.code_rate()
    }

    /// Minimum data-channel SNR (dB) at which this mode achieves roughly 1 %
    /// packet error rate on a 2-kbit packet.  This is the "required SNR
    /// threshold" a sensor compares its tone measurement against.
    pub fn required_snr_db(self) -> f64 {
        match self {
            TransmissionMode::Mbps2 => 22.0,
            TransmissionMode::Mbps1 => 16.0,
            TransmissionMode::Kbps450 => 10.0,
            TransmissionMode::Kbps250 => 6.0,
        }
    }

    /// Threshold class index: 0 = highest (2 Mbps) … 3 = lowest (250 kbps).
    pub fn class_index(self) -> usize {
        match self {
            TransmissionMode::Mbps2 => 0,
            TransmissionMode::Mbps1 => 1,
            TransmissionMode::Kbps450 => 2,
            TransmissionMode::Kbps250 => 3,
        }
    }

    /// Mode for a given class index (clamped to the valid range).
    pub fn from_class_index(index: usize) -> TransmissionMode {
        ALL_MODES[index.min(MODE_COUNT - 1)]
    }

    /// The next *less* demanding mode ("lower the threshold one class" in
    /// the CAEM pseudo-code).  Saturates at 250 kbps.
    pub fn one_class_lower(self) -> TransmissionMode {
        TransmissionMode::from_class_index(self.class_index() + 1)
    }

    /// The next *more* demanding mode.  Saturates at 2 Mbps.
    pub fn one_class_higher(self) -> TransmissionMode {
        TransmissionMode::from_class_index(self.class_index().saturating_sub(1))
    }

    /// The most demanding mode (2 Mbps), the energy-optimal threshold.
    pub fn highest() -> TransmissionMode {
        TransmissionMode::Mbps2
    }

    /// The least demanding mode (250 kbps).
    pub fn lowest() -> TransmissionMode {
        TransmissionMode::Kbps250
    }

    /// The best (highest-throughput) mode whose SNR requirement is satisfied
    /// by `snr_db`, or `None` when even 250 kbps cannot be sustained.
    pub fn best_for_snr(snr_db: f64) -> Option<TransmissionMode> {
        ALL_MODES
            .iter()
            .copied()
            .find(|m| snr_db >= m.required_snr_db())
    }

    /// Does `snr_db` satisfy this mode's requirement?
    pub fn supports_snr(self, snr_db: f64) -> bool {
        snr_db >= self.required_snr_db()
    }
}

impl fmt::Display for TransmissionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransmissionMode::Mbps2 => write!(f, "2 Mbps"),
            TransmissionMode::Mbps1 => write!(f, "1 Mbps"),
            TransmissionMode::Kbps450 => write!(f, "450 kbps"),
            TransmissionMode::Kbps250 => write!(f, "250 kbps"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_modes_with_paper_throughputs() {
        assert_eq!(ALL_MODES.len(), MODE_COUNT);
        let rates: Vec<f64> = ALL_MODES.iter().map(|m| m.throughput_bps()).collect();
        assert_eq!(rates, vec![2e6, 1e6, 450e3, 250e3]);
    }

    #[test]
    fn throughput_is_strictly_decreasing_by_class() {
        for w in ALL_MODES.windows(2) {
            assert!(w[0].throughput_bps() > w[1].throughput_bps());
        }
    }

    #[test]
    fn snr_requirements_are_strictly_decreasing_by_class() {
        for w in ALL_MODES.windows(2) {
            assert!(w[0].required_snr_db() > w[1].required_snr_db());
        }
    }

    #[test]
    fn class_index_round_trips() {
        for (i, &m) in ALL_MODES.iter().enumerate() {
            assert_eq!(m.class_index(), i);
            assert_eq!(TransmissionMode::from_class_index(i), m);
        }
        // Out-of-range clamps to the lowest mode.
        assert_eq!(
            TransmissionMode::from_class_index(99),
            TransmissionMode::Kbps250
        );
    }

    #[test]
    fn class_stepping_saturates() {
        assert_eq!(
            TransmissionMode::Mbps2.one_class_lower(),
            TransmissionMode::Mbps1
        );
        assert_eq!(
            TransmissionMode::Kbps250.one_class_lower(),
            TransmissionMode::Kbps250
        );
        assert_eq!(
            TransmissionMode::Kbps250.one_class_higher(),
            TransmissionMode::Kbps450
        );
        assert_eq!(
            TransmissionMode::Mbps2.one_class_higher(),
            TransmissionMode::Mbps2
        );
        assert_eq!(TransmissionMode::highest(), TransmissionMode::Mbps2);
        assert_eq!(TransmissionMode::lowest(), TransmissionMode::Kbps250);
    }

    #[test]
    fn best_for_snr_selects_highest_supported() {
        assert_eq!(
            TransmissionMode::best_for_snr(30.0),
            Some(TransmissionMode::Mbps2)
        );
        assert_eq!(
            TransmissionMode::best_for_snr(22.0),
            Some(TransmissionMode::Mbps2)
        );
        assert_eq!(
            TransmissionMode::best_for_snr(18.0),
            Some(TransmissionMode::Mbps1)
        );
        assert_eq!(
            TransmissionMode::best_for_snr(12.0),
            Some(TransmissionMode::Kbps450)
        );
        assert_eq!(
            TransmissionMode::best_for_snr(6.5),
            Some(TransmissionMode::Kbps250)
        );
        assert_eq!(TransmissionMode::best_for_snr(2.0), None);
    }

    #[test]
    fn supports_snr_is_consistent_with_best_for_snr() {
        for snr in [-5.0, 0.0, 6.0, 10.0, 16.0, 22.0, 40.0] {
            if let Some(best) = TransmissionMode::best_for_snr(snr) {
                assert!(best.supports_snr(snr));
                // Anything more demanding than `best` must not be supported.
                let mut m = best;
                while m != TransmissionMode::Mbps2 {
                    m = m.one_class_higher();
                    if m.class_index() < best.class_index() {
                        assert!(!m.supports_snr(snr));
                    }
                }
            } else {
                assert!(!TransmissionMode::Kbps250.supports_snr(snr));
            }
        }
    }

    #[test]
    fn code_rates_reproduce_throughputs() {
        const SYMBOL_RATE: f64 = 500_000.0;
        for m in ALL_MODES {
            let bits_per_symbol = m.modulation().bits_per_symbol() as f64;
            let computed = SYMBOL_RATE * bits_per_symbol * m.code_rate();
            assert!(
                (computed - m.throughput_bps()).abs() < 1.0,
                "{m}: {computed} != {}",
                m.throughput_bps()
            );
        }
    }

    #[test]
    fn redundancy_grows_for_lower_modes() {
        assert!(
            TransmissionMode::Kbps450.redundancy_factor()
                > TransmissionMode::Mbps1.redundancy_factor()
        );
        assert!(TransmissionMode::Mbps2.redundancy_factor() >= 1.0);
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(TransmissionMode::Mbps2.to_string(), "2 Mbps");
        assert_eq!(TransmissionMode::Kbps450.to_string(), "450 kbps");
    }
}
