//! Frame layout and airtime computation.
//!
//! The paper's Table II fixes the packet (payload) length at 2 kbit.  A frame
//! carries that payload plus a PHY/MAC header and the FEC redundancy the
//! current mode adds.  Two energy effects follow directly (Section I):
//!
//! 1. more redundancy ⇒ the radio is on for longer per useful bit, and
//! 2. encoding/decoding the redundancy costs computation energy at both ends
//!    (modelled in `caem-energy` as a per-coded-bit cost).
//!
//! [`FrameSpec::airtime`] is therefore the quantity the whole evaluation
//! hinges on: it is strictly smaller for higher modes.

use caem_simcore::time::Duration;
use serde::{Deserialize, Serialize};

use crate::mode::TransmissionMode;

/// Payload length used throughout the paper's evaluation (2 kbit).
pub const PAPER_PACKET_LENGTH_BITS: u64 = 2_000;

/// Static frame layout parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameSpec {
    /// Useful payload bits per packet.
    pub payload_bits: u64,
    /// PHY preamble + MAC header bits (transmitted at the mode's rate but
    /// never subject to FEC expansion in this model).
    pub header_bits: u64,
}

impl Default for FrameSpec {
    fn default() -> Self {
        FrameSpec::paper_default()
    }
}

impl FrameSpec {
    /// The paper's frame: 2 kbit payload, 64-bit header.
    pub fn paper_default() -> Self {
        FrameSpec {
            payload_bits: PAPER_PACKET_LENGTH_BITS,
            header_bits: 64,
        }
    }

    /// Create a custom frame spec.
    pub fn new(payload_bits: u64, header_bits: u64) -> Self {
        assert!(payload_bits > 0, "payload must be non-empty");
        FrameSpec {
            payload_bits,
            header_bits,
        }
    }

    /// Number of coded bits actually put on the air for one frame in `mode`.
    pub fn coded_bits(&self, mode: TransmissionMode) -> u64 {
        let coded_payload = (self.payload_bits as f64 * mode.redundancy_factor()).ceil() as u64;
        coded_payload + self.header_bits
    }

    /// Redundancy bits added on top of the payload for one frame in `mode`.
    pub fn redundancy_bits(&self, mode: TransmissionMode) -> u64 {
        self.coded_bits(mode) - self.payload_bits - self.header_bits
    }

    /// Time the radio is on the air for one frame in `mode`.
    ///
    /// The effective throughput already accounts for coding, so airtime is
    /// (payload + header/code_rate-equivalent) / throughput; we charge the
    /// header at the same effective rate which keeps the model simple and
    /// slightly conservative.
    pub fn airtime(&self, mode: TransmissionMode) -> Duration {
        let total_bits = self.payload_bits + self.header_bits;
        Duration::for_bits(total_bits, mode.throughput_bps())
    }

    /// Airtime for a burst of `count` frames sent back-to-back.
    pub fn burst_airtime(&self, mode: TransmissionMode, count: u64) -> Duration {
        self.airtime(mode) * count
    }

    /// Effective useful-bit rate of a burst (payload bits / airtime).
    pub fn goodput_bps(&self, mode: TransmissionMode) -> f64 {
        let t = self.airtime(mode).as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            self.payload_bits as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::ALL_MODES;

    #[test]
    fn paper_default_payload_is_2kbit() {
        let f = FrameSpec::paper_default();
        assert_eq!(f.payload_bits, 2_000);
        assert!(f.header_bits > 0);
    }

    #[test]
    fn airtime_ordering_matches_modes() {
        let f = FrameSpec::paper_default();
        // Higher mode ⇒ strictly shorter airtime.
        for w in ALL_MODES.windows(2) {
            assert!(f.airtime(w[0]) < f.airtime(w[1]));
        }
        // 2 Mbps: ~1.03 ms for 2064 bits; 250 kbps: ~8.26 ms.
        let fast = f.airtime(TransmissionMode::Mbps2).as_millis_f64();
        let slow = f.airtime(TransmissionMode::Kbps250).as_millis_f64();
        assert!((fast - 1.032).abs() < 0.01, "fast = {fast}");
        assert!((slow - 8.256).abs() < 0.05, "slow = {slow}");
        assert!(slow / fast > 7.5 && slow / fast < 8.5);
    }

    #[test]
    fn airtime_is_frame_duration_of_milliseconds() {
        // Section II-B: "a packet or physical frame duration in our system is
        // around several milliseconds" — check every mode lands in 0.5–10 ms.
        let f = FrameSpec::paper_default();
        for m in ALL_MODES {
            let ms = f.airtime(m).as_millis_f64();
            assert!((0.5..=10.0).contains(&ms), "{m}: {ms} ms");
        }
    }

    #[test]
    fn coded_bits_and_redundancy() {
        let f = FrameSpec::paper_default();
        // 2 Mbps uses a rate-1.0 code in our table: no payload expansion.
        assert_eq!(f.redundancy_bits(TransmissionMode::Mbps2), 0);
        // 450 kbps uses rate 0.45: ~2445 redundancy bits.
        let r = f.redundancy_bits(TransmissionMode::Kbps450);
        assert!(r > 2000 && r < 2600, "redundancy = {r}");
        // The low-rate-coded modes (450/250 kbps) carry more redundancy than
        // the high-rate-coded ones (2/1 Mbps).  (450 kbps vs 250 kbps is not
        // ordered: 250 kbps buys robustness from BPSK, not from extra FEC.)
        for low in [TransmissionMode::Kbps450, TransmissionMode::Kbps250] {
            for high in [TransmissionMode::Mbps2, TransmissionMode::Mbps1] {
                assert!(f.redundancy_bits(low) > f.redundancy_bits(high));
            }
        }
        for m in ALL_MODES {
            assert_eq!(
                f.coded_bits(m),
                f.payload_bits + f.header_bits + f.redundancy_bits(m)
            );
        }
    }

    #[test]
    fn burst_airtime_scales_linearly() {
        let f = FrameSpec::paper_default();
        let one = f.airtime(TransmissionMode::Mbps1);
        assert_eq!(f.burst_airtime(TransmissionMode::Mbps1, 8), one * 8);
        assert_eq!(f.burst_airtime(TransmissionMode::Mbps1, 0), Duration::ZERO);
    }

    #[test]
    fn goodput_below_nominal_throughput() {
        let f = FrameSpec::paper_default();
        for m in ALL_MODES {
            let g = f.goodput_bps(m);
            assert!(g > 0.0);
            assert!(g < m.throughput_bps(), "{m}: goodput {g} >= nominal");
        }
    }

    #[test]
    fn custom_frame_spec() {
        let f = FrameSpec::new(512, 32);
        assert_eq!(f.payload_bits, 512);
        let airtime = f.airtime(TransmissionMode::Mbps2).as_secs_f64();
        assert!((airtime - 544.0 / 2e6).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_payload_rejected() {
        FrameSpec::new(0, 16);
    }
}
