//! Bit- and packet-error-rate models for the ABICM modulations.
//!
//! These are the standard AWGN closed-form approximations; the coding gain of
//! each mode's convolutional code is modelled as an SNR shift.  The exact
//! curves matter much less to the CAEM evaluation than their *ordering*:
//! a mode used below its SNR threshold fails quickly, at or above it the
//! packet error rate is ~1 % or better.

use serde::{Deserialize, Serialize};

/// Modulations used by the four ABICM modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modulation {
    /// Binary phase-shift keying (1 bit/symbol).
    Bpsk,
    /// Quadrature phase-shift keying (2 bits/symbol).
    Qpsk,
    /// 16-ary quadrature amplitude modulation (4 bits/symbol).
    Qam16,
    /// 64-ary quadrature amplitude modulation (6 bits/symbol); not used by
    /// the default 4-mode table but provided for extension studies.
    Qam64,
}

impl Modulation {
    /// Bits carried per channel symbol.
    pub fn bits_per_symbol(self) -> u32 {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }
}

/// Complementary error function approximation (Abramowitz & Stegun 7.1.26
/// applied to the error function, max absolute error ≈ 1.5e-7).
fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    poly * (-x * x).exp()
}

/// Gaussian Q-function.
fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Uncoded bit error rate of `modulation` at the given *symbol* SNR in dB.
///
/// Standard AWGN approximations:
/// * BPSK: `Q(sqrt(2·γb))`
/// * QPSK (Gray): `Q(sqrt(2·γb))` per bit with `γb = γs / 2`
/// * 16/64-QAM (Gray, square): nearest-neighbour approximation.
pub fn bit_error_rate(modulation: Modulation, snr_db: f64) -> f64 {
    let snr = 10f64.powf(snr_db / 10.0);
    let ber = match modulation {
        Modulation::Bpsk => q_function((2.0 * snr).sqrt()),
        Modulation::Qpsk => {
            let gamma_b = snr / 2.0;
            q_function((2.0 * gamma_b).sqrt())
        }
        Modulation::Qam16 => {
            let m = 16.0_f64;
            let k = m.log2();
            let gamma_b = snr / k;
            (4.0 / k) * (1.0 - 1.0 / m.sqrt()) * q_function((3.0 * k * gamma_b / (m - 1.0)).sqrt())
        }
        Modulation::Qam64 => {
            let m = 64.0_f64;
            let k = m.log2();
            let gamma_b = snr / k;
            (4.0 / k) * (1.0 - 1.0 / m.sqrt()) * q_function((3.0 * k * gamma_b / (m - 1.0)).sqrt())
        }
    };
    ber.clamp(0.0, 0.5)
}

/// Effective coding gain (dB) applied by a convolutional code of the given
/// rate — a simple piecewise model: stronger (lower-rate) codes buy more gain.
pub fn coding_gain_db(code_rate: f64) -> f64 {
    if code_rate >= 0.999 {
        0.0
    } else if code_rate >= 0.75 {
        2.5
    } else if code_rate >= 0.5 {
        4.5
    } else {
        6.0
    }
}

/// Packet error rate for a packet of `packet_bits` useful bits sent with the
/// given modulation and code rate at the given SNR (dB).
///
/// The coded BER is approximated by evaluating the uncoded BER at
/// `snr + coding_gain`, and packet success assumes independent bit errors:
/// `PER = 1 − (1 − BER)^L`.
pub fn packet_error_rate(
    modulation: Modulation,
    code_rate: f64,
    snr_db: f64,
    packet_bits: u64,
) -> f64 {
    let effective_snr = snr_db + coding_gain_db(code_rate);
    let ber = bit_error_rate(modulation, effective_snr);
    if ber <= 0.0 {
        return 0.0;
    }
    let log_success = (packet_bits as f64) * (1.0 - ber).ln();
    (1.0 - log_success.exp()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::{TransmissionMode, ALL_MODES};

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157_299).abs() < 1e-4);
        assert!((erfc(2.0) - 0.004_678).abs() < 1e-4);
        assert!((erfc(-1.0) - 1.842_701).abs() < 1e-4);
    }

    #[test]
    fn bpsk_ber_reference_points() {
        // BPSK at Eb/N0 = 10 dB ⇒ BER ≈ 3.9e-6 (textbook value).
        let ber = bit_error_rate(Modulation::Bpsk, 10.0);
        assert!(ber > 1e-6 && ber < 1e-5, "ber = {ber}");
        // At 0 dB ⇒ ≈ 0.0786.
        let ber0 = bit_error_rate(Modulation::Bpsk, 0.0);
        assert!((ber0 - 0.0786).abs() < 0.005, "ber0 = {ber0}");
    }

    #[test]
    fn ber_decreases_with_snr() {
        for m in [
            Modulation::Bpsk,
            Modulation::Qpsk,
            Modulation::Qam16,
            Modulation::Qam64,
        ] {
            let mut prev = bit_error_rate(m, -10.0);
            for snr in (-8..30).step_by(2) {
                let ber = bit_error_rate(m, snr as f64);
                assert!(ber <= prev + 1e-12, "{m:?} BER not monotone at {snr} dB");
                prev = ber;
            }
        }
    }

    #[test]
    fn higher_order_modulation_needs_more_snr() {
        // At the same symbol SNR, 16-QAM has a (much) higher BER than BPSK.
        for snr in [6.0, 10.0, 14.0] {
            assert!(bit_error_rate(Modulation::Qam16, snr) > bit_error_rate(Modulation::Bpsk, snr));
            assert!(
                bit_error_rate(Modulation::Qam64, snr) > bit_error_rate(Modulation::Qam16, snr)
            );
        }
    }

    #[test]
    fn ber_is_bounded() {
        for m in [Modulation::Bpsk, Modulation::Qpsk, Modulation::Qam16] {
            for snr in [-40.0, -10.0, 0.0, 50.0] {
                let ber = bit_error_rate(m, snr);
                assert!((0.0..=0.5).contains(&ber));
            }
        }
    }

    #[test]
    fn coding_gain_monotone_in_redundancy() {
        assert_eq!(coding_gain_db(1.0), 0.0);
        assert!(coding_gain_db(0.45) > coding_gain_db(0.8));
        assert!(coding_gain_db(0.3) >= coding_gain_db(0.45));
    }

    #[test]
    fn per_at_mode_threshold_is_small() {
        // Each mode's required SNR should give a usable (≲ a few %) PER on
        // the paper's 2-kbit packets.
        for mode in ALL_MODES {
            let per = packet_error_rate(
                mode.modulation(),
                mode.code_rate(),
                mode.required_snr_db(),
                2048,
            );
            assert!(per < 0.05, "{mode}: PER {per} at threshold");
        }
    }

    #[test]
    fn per_well_below_threshold_is_large() {
        for mode in ALL_MODES {
            let per = packet_error_rate(
                mode.modulation(),
                mode.code_rate(),
                mode.required_snr_db() - 8.0,
                2048,
            );
            assert!(per > 0.3, "{mode}: PER {per} 8 dB below threshold");
        }
    }

    #[test]
    fn per_monotone_in_packet_length() {
        let mode = TransmissionMode::Mbps1;
        let snr = mode.required_snr_db() - 2.0;
        let short = packet_error_rate(mode.modulation(), mode.code_rate(), snr, 256);
        let long = packet_error_rate(mode.modulation(), mode.code_rate(), snr, 4096);
        assert!(long > short);
    }

    #[test]
    fn per_extremes() {
        assert_eq!(packet_error_rate(Modulation::Bpsk, 0.5, 60.0, 2048), 0.0);
        let terrible = packet_error_rate(Modulation::Qam16, 1.0, -20.0, 2048);
        assert!(terrible > 0.999);
    }

    #[test]
    fn bits_per_symbol_values() {
        assert_eq!(Modulation::Bpsk.bits_per_symbol(), 1);
        assert_eq!(Modulation::Qpsk.bits_per_symbol(), 2);
        assert_eq!(Modulation::Qam16.bits_per_symbol(), 4);
        assert_eq!(Modulation::Qam64.bits_per_symbol(), 6);
    }
}
