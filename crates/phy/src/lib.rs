//! # caem-phy
//!
//! Adaptive physical layer for the CAEM reproduction — a stand-in for the
//! ABICM (Adaptive Bit-Interleaved Coded Modulation) PHY the paper adopts
//! from Kwok & Lau.
//!
//! The paper uses a 4-mode configuration giving four distinct throughput
//! levels after adaptive channel coding and modulation: **2 Mbps, 1 Mbps,
//! 450 kbps and 250 kbps**.  When the CSI indicates a good channel the
//! transmitter uses a high-order modulation and a high-rate code (more
//! useful bits per unit time, less redundancy); when the channel is poor it
//! falls back to a low-order modulation and a low-rate code (longer airtime,
//! more redundancy).  That mapping — *better channel ⇒ less airtime and less
//! FEC energy* — is the physical fact CAEM exploits.
//!
//! Modules:
//!
//! * [`mode`] — the four transmission modes, their SNR switching thresholds,
//!   and the threshold-class arithmetic the CAEM policies manipulate.
//! * [`ber`] — bit-error-rate and packet-error-rate models per modulation.
//! * [`frame`] — frame layout and airtime computation (payload + FEC
//!   redundancy + header at the mode's raw symbol rate).
//! * [`adaptation`] — burst-by-burst mode selection from measured CSI, with
//!   optional hysteresis.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptation;
pub mod ber;
pub mod frame;
pub mod mode;

pub use adaptation::{AdaptationPolicy, ModeSelector};
pub use ber::{bit_error_rate, packet_error_rate, Modulation};
pub use frame::{FrameSpec, PAPER_PACKET_LENGTH_BITS};
pub use mode::{TransmissionMode, ALL_MODES, MODE_COUNT};
