//! Burst-by-burst mode selection from measured CSI.
//!
//! Section II-B: "when CSI is available at the transmitter, the transmitter
//! performs burst-by-burst throughput adaptation with respect to the CSI".
//! [`ModeSelector`] implements that adaptation, optionally with hysteresis so
//! a link sitting exactly on a switching threshold does not flap between
//! modes on every burst (an extension knob exercised by the ablation bench).

use serde::{Deserialize, Serialize};

use crate::mode::TransmissionMode;

/// How the transmitter picks a mode from the measured SNR.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum AdaptationPolicy {
    /// Pick the highest mode the instantaneous SNR supports (the paper).
    #[default]
    Instantaneous,
    /// Same, but require `margin_db` extra SNR before stepping *up* a class;
    /// stepping down happens immediately.  Reduces mode flapping.
    Hysteresis {
        /// Extra SNR (dB) demanded before upgrading to a faster mode.
        margin_db: f64,
    },
}

/// Stateful per-link mode selector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModeSelector {
    policy: AdaptationPolicy,
    last_mode: Option<TransmissionMode>,
    selections: u64,
    upgrades: u64,
    downgrades: u64,
}

impl ModeSelector {
    /// Create a selector with the given policy.
    pub fn new(policy: AdaptationPolicy) -> Self {
        ModeSelector {
            policy,
            last_mode: None,
            selections: 0,
            upgrades: 0,
            downgrades: 0,
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> AdaptationPolicy {
        self.policy
    }

    /// The mode chosen by the previous call, if any.
    pub fn last_mode(&self) -> Option<TransmissionMode> {
        self.last_mode
    }

    /// Number of selections / upgrades / downgrades performed so far.
    pub fn transition_counts(&self) -> (u64, u64, u64) {
        (self.selections, self.upgrades, self.downgrades)
    }

    /// Select a mode for the next burst given the measured data-channel SNR.
    ///
    /// Returns `None` when the link cannot sustain even the lowest mode; the
    /// MAC then defers the transmission (that is exactly the situation CAEM's
    /// buffering exploits).
    pub fn select(&mut self, snr_db: f64) -> Option<TransmissionMode> {
        let raw = TransmissionMode::best_for_snr(snr_db);
        let chosen = match (self.policy, raw, self.last_mode) {
            (AdaptationPolicy::Instantaneous, raw, _) => raw,
            (AdaptationPolicy::Hysteresis { .. }, None, _) => None,
            (AdaptationPolicy::Hysteresis { margin_db }, Some(raw_mode), Some(prev)) => {
                if raw_mode.class_index() < prev.class_index() {
                    // Candidate upgrade: demand the margin on top of the
                    // candidate's own requirement.
                    if snr_db >= raw_mode.required_snr_db() + margin_db {
                        Some(raw_mode)
                    } else {
                        // Stay at the previous mode if it is still supported,
                        // otherwise fall to whatever is.
                        if prev.supports_snr(snr_db) {
                            Some(prev)
                        } else {
                            Some(raw_mode)
                        }
                    }
                } else {
                    Some(raw_mode)
                }
            }
            (AdaptationPolicy::Hysteresis { .. }, Some(raw_mode), None) => Some(raw_mode),
        };
        self.selections += 1;
        if let (Some(prev), Some(new)) = (self.last_mode, chosen) {
            if new.class_index() < prev.class_index() {
                self.upgrades += 1;
            } else if new.class_index() > prev.class_index() {
                self.downgrades += 1;
            }
        }
        if chosen.is_some() {
            self.last_mode = chosen;
        }
        chosen
    }
}

impl Default for ModeSelector {
    fn default() -> Self {
        ModeSelector::new(AdaptationPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantaneous_tracks_best_mode() {
        let mut s = ModeSelector::default();
        assert_eq!(s.select(30.0), Some(TransmissionMode::Mbps2));
        assert_eq!(s.select(17.0), Some(TransmissionMode::Mbps1));
        assert_eq!(s.select(11.0), Some(TransmissionMode::Kbps450));
        assert_eq!(s.select(7.0), Some(TransmissionMode::Kbps250));
        assert_eq!(s.select(1.0), None);
        assert_eq!(s.last_mode(), Some(TransmissionMode::Kbps250));
        let (sel, up, down) = s.transition_counts();
        assert_eq!(sel, 5);
        assert_eq!(up, 0);
        assert_eq!(down, 3);
    }

    #[test]
    fn hysteresis_delays_upgrades() {
        let mut s = ModeSelector::new(AdaptationPolicy::Hysteresis { margin_db: 3.0 });
        // Start at 1 Mbps.
        assert_eq!(s.select(17.0), Some(TransmissionMode::Mbps1));
        // SNR creeps just over the 2 Mbps threshold (22 dB) but not by the
        // 3 dB margin: stay at 1 Mbps.
        assert_eq!(s.select(23.0), Some(TransmissionMode::Mbps1));
        // Clears the margin: upgrade.
        assert_eq!(s.select(25.5), Some(TransmissionMode::Mbps2));
        let (_, up, _) = s.transition_counts();
        assert_eq!(up, 1);
    }

    #[test]
    fn hysteresis_downgrades_immediately() {
        let mut s = ModeSelector::new(AdaptationPolicy::Hysteresis { margin_db: 3.0 });
        assert_eq!(s.select(30.0), Some(TransmissionMode::Mbps2));
        assert_eq!(s.select(12.0), Some(TransmissionMode::Kbps450));
        let (_, _, down) = s.transition_counts();
        assert_eq!(down, 1);
    }

    #[test]
    fn hysteresis_first_selection_has_no_margin() {
        let mut s = ModeSelector::new(AdaptationPolicy::Hysteresis { margin_db: 5.0 });
        assert_eq!(s.select(22.5), Some(TransmissionMode::Mbps2));
    }

    #[test]
    fn hysteresis_falls_back_when_previous_unsupported() {
        let mut s = ModeSelector::new(AdaptationPolicy::Hysteresis { margin_db: 10.0 });
        assert_eq!(s.select(10.5), Some(TransmissionMode::Kbps450));
        // SNR rises but the previous mode is *also* no longer the limiter;
        // the raw candidate (1 Mbps at 16.5) doesn't clear the 10 dB margin,
        // previous (450 kbps) still supported → stay.
        assert_eq!(s.select(16.5), Some(TransmissionMode::Kbps450));
    }

    #[test]
    fn unusable_channel_keeps_last_mode_memory() {
        let mut s = ModeSelector::default();
        s.select(25.0);
        assert_eq!(s.select(0.0), None);
        // Memory of the last *usable* mode survives an outage.
        assert_eq!(s.last_mode(), Some(TransmissionMode::Mbps2));
    }

    #[test]
    fn default_policy_is_instantaneous() {
        assert_eq!(AdaptationPolicy::default(), AdaptationPolicy::Instantaneous);
        assert_eq!(
            ModeSelector::default().policy(),
            AdaptationPolicy::Instantaneous
        );
    }
}
