//! Table / CSV / markdown emission for the figure binaries.
//!
//! Every `figN` binary prints the same rows/series the paper plots; this
//! module holds the small table formatter they share so the output is
//! consistent and machine-readable (CSV) as well as human-readable.

use serde::{Deserialize, Serialize};

/// A named column of floating-point values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Column header.
    pub name: String,
    /// Values, one per row.
    pub values: Vec<f64>,
}

impl Column {
    /// Create a column.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Column {
            name: name.into(),
            values,
        }
    }
}

/// A simple rectangular table: one x-axis column plus one column per series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (figure name).
    pub title: String,
    /// Columns, first column is the x axis.
    pub columns: Vec<Column>,
}

impl Table {
    /// Create a table from columns.  All columns must have equal length.
    pub fn new(title: impl Into<String>, columns: Vec<Column>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        let rows = columns[0].values.len();
        assert!(
            columns.iter().all(|c| c.values.len() == rows),
            "all columns must have the same number of rows"
        );
        Table {
            title: title.into(),
            columns,
        }
    }

    /// Number of data rows.
    pub fn rows(&self) -> usize {
        self.columns[0].values.len()
    }

    /// Render as CSV (header row + data rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let headers: Vec<&str> = self.columns.iter().map(|c| c.name.as_str()).collect();
        out.push_str(&headers.join(","));
        out.push('\n');
        for row in 0..self.rows() {
            let cells: Vec<String> = self
                .columns
                .iter()
                .map(|c| format!("{:.6}", c.values[row]))
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        let headers: Vec<&str> = self.columns.iter().map(|c| c.name.as_str()).collect();
        out.push_str(&format!("| {} |\n", headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.columns.len())));
        for row in 0..self.rows() {
            let cells: Vec<String> = self
                .columns
                .iter()
                .map(|c| format!("{:.3}", c.values[row]))
                .collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out
    }

    /// Render as an aligned plain-text table for terminal output.
    pub fn to_text(&self) -> String {
        let mut out = format!("== {} ==\n", self.title);
        let widths: Vec<usize> = self.columns.iter().map(|c| c.name.len().max(12)).collect();
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!("{:>width$}  ", c.name, width = w));
        }
        out.push('\n');
        for row in 0..self.rows() {
            for (c, w) in self.columns.iter().zip(&widths) {
                out.push_str(&format!("{:>width$.3}  ", c.values[row], width = w));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(
            "Fig. X",
            vec![
                Column::new("load_pps", vec![5.0, 10.0, 15.0]),
                Column::new("lifetime_s", vec![900.0, 600.0, 420.0]),
            ],
        )
    }

    #[test]
    fn dimensions() {
        let t = sample();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.columns.len(), 2);
    }

    #[test]
    fn csv_output_has_header_and_rows() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "load_pps,lifetime_s");
        assert!(lines[1].starts_with("5.000000,900.000000"));
    }

    #[test]
    fn markdown_output_is_a_table() {
        let md = sample().to_markdown();
        assert!(md.contains("### Fig. X"));
        assert!(md.contains("| load_pps | lifetime_s |"));
        assert!(md.contains("| 5.000 | 900.000 |"));
    }

    #[test]
    fn text_output_contains_all_values() {
        let txt = sample().to_text();
        assert!(txt.contains("Fig. X"));
        assert!(txt.contains("900.000"));
        assert!(txt.contains("lifetime_s"));
    }

    #[test]
    #[should_panic]
    fn mismatched_column_lengths_rejected() {
        Table::new(
            "bad",
            vec![
                Column::new("a", vec![1.0]),
                Column::new("b", vec![1.0, 2.0]),
            ],
        );
    }

    #[test]
    #[should_panic]
    fn empty_table_rejected() {
        Table::new("bad", vec![]);
    }
}
