//! Node-death tracking: the Fig. 9 nodes-alive curve and the Fig. 10 network
//! lifetime definition.
//!
//! The paper calls the network "dead" once the fraction of exhausted nodes
//! exceeds a cut-off (the printed value is garbled in the scanned text; 80 %
//! is the conventional LEACH-literature choice and is what we default to,
//! with the fraction exposed for sensitivity checks).

use caem_simcore::stats::TimeSeries;
use caem_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// Default fraction of dead nodes at which the network counts as dead.
pub const DEFAULT_DEATH_FRACTION: f64 = 0.8;

/// Tracks node deaths over time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LifetimeTracker {
    node_count: usize,
    death_times: Vec<Option<SimTime>>,
    alive_series: TimeSeries,
    /// Running count of still-alive nodes, kept so `record_death` is O(1).
    /// Deaths arrive in event-time order from the simulation loop, so the
    /// counter always matches what an `alive_at(time)` scan would report —
    /// without the O(n) scan per death that made a full network die-off
    /// O(n²).
    alive_now: usize,
}

impl LifetimeTracker {
    /// Create a tracker for `node_count` initially alive nodes.
    pub fn new(node_count: usize) -> Self {
        assert!(node_count > 0, "need at least one node");
        let mut alive_series = TimeSeries::new("nodes_alive");
        alive_series.push(0.0, node_count as f64);
        LifetimeTracker {
            node_count,
            death_times: vec![None; node_count],
            alive_series,
            alive_now: node_count,
        }
    }

    /// Record that `node` depleted its battery at `time`.  Repeated reports
    /// for the same node are ignored (the first death stands).  Deaths must
    /// be reported in non-decreasing time order (as the event loop does).
    pub fn record_death(&mut self, node: usize, time: SimTime) {
        assert!(node < self.node_count, "node index out of range");
        if self.death_times[node].is_none() {
            self.death_times[node] = Some(time);
            self.alive_now -= 1;
            self.alive_series.push_at(time, self.alive_now as f64);
        }
    }

    /// Number of nodes alive at `time`.
    pub fn alive_at(&self, time: SimTime) -> usize {
        self.death_times
            .iter()
            .filter(|d| match d {
                Some(t) => *t > time,
                None => true,
            })
            .count()
    }

    /// Number of nodes that have died so far.
    pub fn dead_count(&self) -> usize {
        self.death_times.iter().filter(|d| d.is_some()).count()
    }

    /// The time of the first node death, if any (the "first node dies"
    /// lifetime definition used by some of the cited work).
    pub fn first_death(&self) -> Option<SimTime> {
        self.death_times.iter().flatten().min().copied()
    }

    /// The time of the last node death, if all nodes are dead.
    pub fn last_death(&self) -> Option<SimTime> {
        if self.dead_count() == self.node_count {
            self.death_times.iter().flatten().max().copied()
        } else {
            None
        }
    }

    /// Network lifetime under the paper's rule: the instant at which the
    /// fraction of dead nodes first exceeds `death_fraction`.  `None` when
    /// the network never died during the run.
    pub fn network_lifetime(&self, death_fraction: f64) -> Option<SimTime> {
        assert!(
            (0.0..=1.0).contains(&death_fraction),
            "death fraction must be in [0, 1]"
        );
        let needed = ((self.node_count as f64) * death_fraction).floor() as usize + 1;
        let needed = needed.min(self.node_count);
        let mut times: Vec<SimTime> = self.death_times.iter().flatten().copied().collect();
        if times.len() < needed {
            return None;
        }
        times.sort_unstable();
        Some(times[needed - 1])
    }

    /// The nodes-alive time series (Fig. 9).
    pub fn alive_series(&self) -> &TimeSeries {
        &self.alive_series
    }

    /// Per-node death times (None = still alive).
    pub fn death_times(&self) -> &[Option<SimTime>] {
        &self.death_times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alive_count_follows_deaths() {
        let mut t = LifetimeTracker::new(5);
        assert_eq!(t.alive_at(SimTime::from_secs(100)), 5);
        t.record_death(2, SimTime::from_secs(50));
        t.record_death(4, SimTime::from_secs(150));
        assert_eq!(t.alive_at(SimTime::from_secs(10)), 5);
        assert_eq!(t.alive_at(SimTime::from_secs(60)), 4);
        assert_eq!(t.alive_at(SimTime::from_secs(200)), 3);
        assert_eq!(t.dead_count(), 2);
        assert_eq!(t.first_death(), Some(SimTime::from_secs(50)));
        assert_eq!(t.last_death(), None, "not all nodes are dead yet");
    }

    #[test]
    fn duplicate_death_reports_are_ignored() {
        let mut t = LifetimeTracker::new(3);
        t.record_death(0, SimTime::from_secs(10));
        t.record_death(0, SimTime::from_secs(99));
        assert_eq!(t.first_death(), Some(SimTime::from_secs(10)));
        assert_eq!(t.dead_count(), 1);
    }

    #[test]
    fn network_lifetime_with_80_percent_rule() {
        let mut t = LifetimeTracker::new(10);
        // Kill 9 of 10 nodes at known times.
        for (i, secs) in (0..9).zip([100u64, 110, 120, 130, 140, 150, 160, 170, 180]) {
            t.record_death(i, SimTime::from_secs(secs));
        }
        // 80 % of 10 = 8 dead needed to *exceed*: the 9th death crosses it.
        assert_eq!(
            t.network_lifetime(DEFAULT_DEATH_FRACTION),
            Some(SimTime::from_secs(180))
        );
        // With a 50 % rule the 6th death is the lifetime.
        assert_eq!(t.network_lifetime(0.5), Some(SimTime::from_secs(150)));
        // A 100 % rule needs every node dead.
        assert_eq!(t.network_lifetime(1.0), None);
        t.record_death(9, SimTime::from_secs(300));
        assert_eq!(t.network_lifetime(1.0), Some(SimTime::from_secs(300)));
        assert_eq!(t.last_death(), Some(SimTime::from_secs(300)));
    }

    #[test]
    fn lifetime_none_when_not_enough_deaths() {
        let mut t = LifetimeTracker::new(100);
        for i in 0..50 {
            t.record_death(i, SimTime::from_secs(i as u64));
        }
        assert_eq!(t.network_lifetime(0.8), None);
    }

    #[test]
    fn alive_series_is_recorded() {
        let mut t = LifetimeTracker::new(4);
        t.record_death(0, SimTime::from_secs(10));
        t.record_death(1, SimTime::from_secs(20));
        let s = t.alive_series();
        assert_eq!(s.samples()[0], (0.0, 4.0));
        assert_eq!(s.len(), 3);
        assert_eq!(s.last(), Some((20.0, 2.0)));
    }

    #[test]
    fn running_alive_counter_matches_scan() {
        // The O(1) counter in record_death must agree with an explicit
        // alive_at scan at every recorded death instant, including ties.
        let mut t = LifetimeTracker::new(50);
        let deaths: Vec<(usize, u64)> = (0..40).map(|i| (i, 10 + (i as u64 / 3) * 5)).collect();
        for &(node, secs) in &deaths {
            t.record_death(node, SimTime::from_secs(secs));
        }
        for &(t_secs, alive) in t.alive_series().samples().iter().skip(1) {
            let scan = t.alive_at(SimTime::from_secs_f64(t_secs));
            // At a tie instant the series records the running count after
            // each individual death, so the final sample at that time must
            // match the scan; intermediate tie samples are upper bounds.
            assert!(alive as usize >= scan);
        }
        let last = t.alive_series().last().unwrap();
        assert_eq!(last.1 as usize, t.alive_at(SimTime::from_secs(10_000)));
        assert_eq!(t.dead_count(), 40);
    }

    #[test]
    #[should_panic]
    fn out_of_range_node_rejected() {
        let mut t = LifetimeTracker::new(2);
        t.record_death(5, SimTime::ZERO);
    }

    #[test]
    #[should_panic]
    fn invalid_fraction_rejected() {
        let t = LifetimeTracker::new(2);
        t.network_lifetime(1.5);
    }
}
