//! Energy metrics: the Fig. 8 remaining-energy curve and the Fig. 11
//! per-packet energy efficiency measure.

use caem_simcore::stats::TimeSeries;
use caem_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// Tracks the network-wide average remaining energy over time (Fig. 8).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyTracker {
    series: TimeSeries,
    node_count: usize,
}

impl EnergyTracker {
    /// Create a tracker for `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        assert!(node_count > 0, "need at least one node");
        EnergyTracker {
            series: TimeSeries::new("avg_remaining_energy_j"),
            node_count,
        }
    }

    /// Record a snapshot: `remaining` holds each node's remaining energy (J).
    pub fn snapshot(&mut self, now: SimTime, remaining: &[f64]) {
        debug_assert_eq!(remaining.len(), self.node_count);
        let avg = remaining.iter().sum::<f64>() / self.node_count as f64;
        self.series.push_at(now, avg);
    }

    /// The recorded time series (seconds, joules).
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Average remaining energy at an arbitrary time (interpolated).
    pub fn average_at(&self, time_secs: f64) -> Option<f64> {
        self.series.value_at(time_secs)
    }

    /// Total energy consumed by the whole network at the last snapshot,
    /// given the per-node initial energy.
    pub fn total_consumed(&self, initial_per_node_j: f64) -> f64 {
        match self.series.last() {
            Some((_, avg_remaining)) => {
                (initial_per_node_j - avg_remaining) * self.node_count as f64
            }
            None => 0.0,
        }
    }
}

/// Average energy consumed per successfully delivered packet (Fig. 11).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PerPacketEnergy {
    /// Total network energy consumed (J).
    pub total_energy_j: f64,
    /// Packets successfully delivered to a sink.
    pub delivered_packets: u64,
}

impl PerPacketEnergy {
    /// Create from totals.
    pub fn new(total_energy_j: f64, delivered_packets: u64) -> Self {
        PerPacketEnergy {
            total_energy_j,
            delivered_packets,
        }
    }

    /// Average energy per delivered packet in joules (`None` if nothing was
    /// delivered).
    pub fn joules_per_packet(&self) -> Option<f64> {
        (self.delivered_packets > 0).then(|| self.total_energy_j / self.delivered_packets as f64)
    }

    /// Same, in millijoules.
    pub fn millijoules_per_packet(&self) -> Option<f64> {
        self.joules_per_packet().map(|j| j * 1e3)
    }

    /// Relative saving of `self` versus a `baseline` (e.g. Scheme 1 vs pure
    /// LEACH): positive means `self` is cheaper per packet.
    pub fn saving_vs(&self, baseline: &PerPacketEnergy) -> Option<f64> {
        match (self.joules_per_packet(), baseline.joules_per_packet()) {
            (Some(a), Some(b)) if b > 0.0 => Some(1.0 - a / b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_averages_across_nodes() {
        let mut t = EnergyTracker::new(4);
        t.snapshot(SimTime::ZERO, &[10.0, 10.0, 10.0, 10.0]);
        t.snapshot(SimTime::from_secs(100), &[8.0, 6.0, 9.0, 5.0]);
        assert_eq!(t.average_at(0.0), Some(10.0));
        assert_eq!(t.average_at(100.0), Some(7.0));
        // Interpolation halfway.
        assert_eq!(t.average_at(50.0), Some(8.5));
        assert_eq!(t.series().len(), 2);
    }

    #[test]
    fn total_consumed_from_last_snapshot() {
        let mut t = EnergyTracker::new(10);
        t.snapshot(SimTime::ZERO, &[10.0; 10]);
        t.snapshot(SimTime::from_secs(60), &[4.0; 10]);
        assert!((t.total_consumed(10.0) - 60.0).abs() < 1e-9);
        let empty = EnergyTracker::new(3);
        assert_eq!(empty.total_consumed(10.0), 0.0);
    }

    #[test]
    fn per_packet_energy_division() {
        let p = PerPacketEnergy::new(2.0, 400);
        assert_eq!(p.joules_per_packet(), Some(0.005));
        assert_eq!(p.millijoules_per_packet(), Some(5.0));
        let none = PerPacketEnergy::new(2.0, 0);
        assert_eq!(none.joules_per_packet(), None);
    }

    #[test]
    fn saving_vs_baseline() {
        // The paper's headline: CAEM saves 30–40 % per packet over pure LEACH.
        let caem = PerPacketEnergy::new(6.0, 1000);
        let leach = PerPacketEnergy::new(10.0, 1000);
        let saving = caem.saving_vs(&leach).unwrap();
        assert!((saving - 0.4).abs() < 1e-9);
        // Saving against an empty baseline is undefined.
        assert_eq!(caem.saving_vs(&PerPacketEnergy::new(1.0, 0)), None);
    }

    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        EnergyTracker::new(0);
    }
}
