//! # caem-metrics
//!
//! The evaluation metrics of Section IV, computed from simulator output:
//!
//! * [`energy`] — average remaining energy over time (Fig. 8) and average
//!   energy per successfully delivered packet (Fig. 11);
//! * [`lifetime`] — nodes-alive curve (Fig. 9) and network lifetime under the
//!   "dead once X % of nodes are exhausted" rule (Fig. 10);
//! * [`perf`] — average packet delay, aggregate throughput and successful
//!   delivery rate (the network-performance metrics deferred to the paper's
//!   long version, reproduced here as extension results);
//! * [`fairness`] — standard deviation of per-node queue lengths, the paper's
//!   short-term fairness measure (Fig. 12);
//! * [`report`] — plain-text / CSV / markdown table emission used by the
//!   figure binaries;
//! * [`merge`] — the [`merge::Commute`] merge law that per-worker summary
//!   statistics obey, so any merge tree over any partition of the
//!   observations yields the same aggregate;
//! * [`prof`] — the always-compiled, runtime-gated time-breakdown profiler:
//!   wall time and event counts per subsystem and per event kind, folded
//!   with the same [`merge::Commute`] law and rendered as carcara-style
//!   breakdown tables or Chrome trace-event JSON.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod energy;
pub mod fairness;
pub mod lifetime;
pub mod merge;
pub mod perf;
pub mod prof;
pub mod report;

pub use energy::{EnergyTracker, PerPacketEnergy};
pub use fairness::QueueFairness;
pub use lifetime::{LifetimeTracker, DEFAULT_DEATH_FRACTION};
pub use merge::Commute;
pub use perf::NetworkPerformance;
pub use prof::{Breakdown, ProfKey, Profile, Span};
pub use report::{Column, Table};
