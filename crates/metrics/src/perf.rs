//! Network-performance metrics: average packet delay, aggregate throughput
//! and successful packet delivery rate.
//!
//! The paper defines these three metrics in Section IV-A but defers the plots
//! to its long version; we reproduce them as extension results (experiment E7
//! in DESIGN.md).

use caem_simcore::stats::{Histogram, RunningStats};
use caem_simcore::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Accumulates delay / throughput / delivery statistics for one protocol run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkPerformance {
    delay_stats: RunningStats,
    delay_histogram: Histogram,
    generated: u64,
    delivered: u64,
    dropped_overflow: u64,
    dropped_abandoned: u64,
    delivered_bits: u64,
    horizon: SimTime,
}

/// The delay histogram's initial range: 0–10 s in milliseconds.
const DELAY_HISTOGRAM_HI_MS: f64 = 10_000.0;

/// How far the delay histogram may grow by doubling under saturation loads
/// (to ~21 min of queueing delay).  Delays beyond this are treated as
/// unbounded: they land in the overflow bin and quantiles there stay `None`.
const DELAY_HISTOGRAM_MAX_HI_MS: f64 = DELAY_HISTOGRAM_HI_MS * 128.0;

impl NetworkPerformance {
    /// Create an empty accumulator.  The delay histogram starts at 0–10 s
    /// and auto-resizes (halving resolution per doubling) up to
    /// [`DELAY_HISTOGRAM_MAX_HI_MS`], so p95/p99 stay reportable under
    /// saturation instead of collapsing to `None` the moment the tail
    /// crosses 10 s.
    pub fn new() -> Self {
        NetworkPerformance {
            delay_stats: RunningStats::new(),
            delay_histogram: Histogram::with_auto_resize(
                0.0,
                DELAY_HISTOGRAM_HI_MS,
                200,
                DELAY_HISTOGRAM_MAX_HI_MS,
            ),
            generated: 0,
            delivered: 0,
            dropped_overflow: 0,
            dropped_abandoned: 0,
            delivered_bits: 0,
            horizon: SimTime::ZERO,
        }
    }

    /// Record that a packet was generated.
    pub fn record_generated(&mut self) {
        self.generated += 1;
    }

    /// Record that `count` packets were generated.
    pub fn record_generated_n(&mut self, count: u64) {
        self.generated += count;
    }

    /// Record a successful delivery with the packet's end-to-end delay and
    /// size in bits.
    pub fn record_delivered(&mut self, delay: Duration, size_bits: u64) {
        self.delivered += 1;
        self.delivered_bits += size_bits;
        self.delay_stats.push(delay.as_millis_f64());
        self.delay_histogram.record(delay.as_millis_f64());
    }

    /// Record a packet dropped due to buffer overflow.
    pub fn record_dropped_overflow(&mut self) {
        self.dropped_overflow += 1;
    }

    /// Record a packet abandoned after exhausting its retransmissions.
    pub fn record_dropped_abandoned(&mut self) {
        self.dropped_abandoned += 1;
    }

    /// Note the final simulation time (needed for throughput).
    pub fn set_horizon(&mut self, end: SimTime) {
        self.horizon = end;
    }

    /// Number of packets generated.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Number of packets delivered to a sink.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Packets dropped at the source buffers.
    pub fn dropped_overflow(&self) -> u64 {
        self.dropped_overflow
    }

    /// Packets abandoned after too many collisions.
    pub fn dropped_abandoned(&self) -> u64 {
        self.dropped_abandoned
    }

    /// Average end-to-end packet delay in milliseconds.
    pub fn average_delay_ms(&self) -> f64 {
        self.delay_stats.mean()
    }

    /// The `q`-quantile of the delay distribution in milliseconds.
    pub fn delay_quantile_ms(&self, q: f64) -> Option<f64> {
        self.delay_histogram.quantile(q)
    }

    /// Aggregate network throughput in kbit/s (delivered payload bits over
    /// the simulated horizon).
    pub fn throughput_kbps(&self) -> f64 {
        let secs = self.horizon.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.delivered_bits as f64 / secs / 1_000.0
        }
    }

    /// Successful packet delivery rate (delivered / generated).
    pub fn delivery_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.delivered as f64 / self.generated as f64
        }
    }
}

impl Default for NetworkPerformance {
    fn default() -> Self {
        NetworkPerformance::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_and_delivery_accounting() {
        let mut p = NetworkPerformance::new();
        p.record_generated_n(10);
        for ms in [10u64, 20, 30, 40] {
            p.record_delivered(Duration::from_millis(ms), 2_000);
        }
        p.record_dropped_overflow();
        p.record_dropped_abandoned();
        p.set_horizon(SimTime::from_secs(2));
        assert_eq!(p.generated(), 10);
        assert_eq!(p.delivered(), 4);
        assert_eq!(p.dropped_overflow(), 1);
        assert_eq!(p.dropped_abandoned(), 1);
        assert!((p.average_delay_ms() - 25.0).abs() < 1e-9);
        assert!((p.delivery_rate() - 0.4).abs() < 1e-12);
        // 4 × 2000 bits over 2 s = 4 kbit/s.
        assert!((p.throughput_kbps() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_yields_zeroes() {
        let p = NetworkPerformance::new();
        assert_eq!(p.average_delay_ms(), 0.0);
        assert_eq!(p.delivery_rate(), 0.0);
        assert_eq!(p.throughput_kbps(), 0.0);
        assert_eq!(p.delay_quantile_ms(0.5), None);
    }

    #[test]
    fn delay_quantiles_track_distribution() {
        let mut p = NetworkPerformance::new();
        for ms in 1..=100u64 {
            p.record_delivered(Duration::from_millis(ms), 2_000);
        }
        let median = p.delay_quantile_ms(0.5).unwrap();
        assert!((median - 50.0).abs() < 51.0 * 0.1, "median {median}");
        let p95 = p.delay_quantile_ms(0.95).unwrap();
        assert!(p95 > 85.0);
    }

    #[test]
    fn saturation_delays_beyond_ten_seconds_keep_quantiles_reportable() {
        let mut p = NetworkPerformance::new();
        // A saturated queue: every delivery took 30-90 s, far past the
        // initial 10 s histogram range.
        for s in 0..600u64 {
            p.record_delivered(Duration::from_secs(30 + s / 10), 2_000);
        }
        let p99 = p
            .delay_quantile_ms(0.99)
            .expect("saturation p99 reportable");
        assert!((88_000.0..92_000.0).contains(&p99), "p99 {p99}");
        // Truly unbounded delays (beyond the growth cap) still answer None.
        p.record_delivered(Duration::from_secs(100_000), 2_000);
        assert_eq!(p.delay_quantile_ms(1.0), None);
        assert!(p.delay_quantile_ms(0.5).is_some(), "the bulk stays known");
    }

    #[test]
    fn zero_horizon_throughput_is_zero() {
        let mut p = NetworkPerformance::new();
        p.record_delivered(Duration::from_millis(5), 2_000);
        assert_eq!(p.throughput_kbps(), 0.0);
    }
}
