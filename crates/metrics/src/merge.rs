//! Commutative merge laws for summary statistics.
//!
//! The lock-free result plumbing (per-worker accumulators, sharded
//! [`ConcurrentStats`], per-shard stores merged by the distributed runner)
//! only produces order-independent reports because the underlying merges
//! are **commutative and associative**: any merge tree over any partition
//! of the same observation multiset must summarize to the same statistics.
//! This module names that law as a trait — the `Commute` idiom — so the
//! property-based tests can state it once and every mergeable summary type
//! can declare itself subject to it.
//!
//! Two grades of the law apply:
//!
//! * **Exact** — counts, min/max and histogram bins are integer or lattice
//!   operations, commutative and associative bit-for-bit.  [`Histogram`]'s
//!   merge is in this grade.
//! * **Analytic** — floating-point sums commute bit-for-bit (IEEE-754
//!   `a + b == b + a`) but only associate up to rounding, so
//!   [`RunningStats`] merge trees agree to within accumulated ulps, not
//!   bits.  Bit-identical *reports* are still guaranteed at the layer
//!   above: `ExperimentReport::from_records` sorts records into canonical
//!   (scenario, policy, seed) order and folds in one fixed sequence, so
//!   every partition of the record set reaches that fold identically.

use caem_simcore::stats::{ConcurrentStats, Histogram, RunningStats};

/// A summary that can absorb another summary of the same shape such that
/// the result depends only on the union of the underlying observations —
/// not on which side they arrived from (commutativity) or how intermediate
/// merges were grouped (associativity, exactly or up to float rounding; see
/// the module docs).
pub trait Commute: Sized {
    /// Absorb `other` into `self`.
    fn commute(&mut self, other: Self);

    /// Merge every summary of an iterator into one (`None` when empty) —
    /// the canonical reduction for per-worker partial summaries.
    fn merge_all<I: IntoIterator<Item = Self>>(iter: I) -> Option<Self> {
        let mut iter = iter.into_iter();
        let mut acc = iter.next()?;
        for item in iter {
            acc.commute(item);
        }
        Some(acc)
    }
}

impl Commute for RunningStats {
    fn commute(&mut self, other: Self) {
        self.merge(&other);
    }
}

impl Commute for Histogram {
    fn commute(&mut self, other: Self) {
        self.merge(&other);
    }
}

impl Commute for ConcurrentStats {
    fn commute(&mut self, other: Self) {
        // `other` is owned (and therefore quiescent); `self` may still be
        // receiving records — ConcurrentStats::merge is lock-free.
        self.merge(&other);
    }
}

/// Element-wise merge of parallel summary columns (e.g. one accumulator per
/// metric).  Both sides must have the same length — mismatched columns mean
/// the partitions disagree about the schema, which is a bug, not data.
impl<T: Commute> Commute for Vec<T> {
    fn commute(&mut self, other: Self) {
        assert_eq!(
            self.len(),
            other.len(),
            "cannot commute summary vectors of different lengths"
        );
        for (slot, item) in self.iter_mut().zip(other) {
            slot.commute(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_all_folds_partitions_like_one_accumulator() {
        let data: Vec<f64> = (0..120).map(|i| (i as f64 * 0.7).sin() * 4.0).collect();
        let mut whole = RunningStats::new();
        whole.extend(data.iter().copied());
        let parts: Vec<RunningStats> = data
            .chunks(7)
            .map(|chunk| {
                let mut s = RunningStats::new();
                s.extend(chunk.iter().copied());
                s
            })
            .collect();
        let merged = Commute::merge_all(parts).expect("non-empty");
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert!((merged.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
    }

    #[test]
    fn merge_all_of_empty_iterator_is_none() {
        assert!(Commute::merge_all(Vec::<RunningStats>::new()).is_none());
    }

    #[test]
    fn vec_commute_is_element_wise() {
        let column = |values: &[f64]| {
            values
                .iter()
                .map(|&v| {
                    let mut s = RunningStats::new();
                    s.push(v);
                    s
                })
                .collect::<Vec<_>>()
        };
        let mut a = column(&[1.0, 10.0]);
        a.commute(column(&[3.0, 30.0]));
        assert_eq!(a[0].count(), 2);
        assert!((a[0].mean() - 2.0).abs() < 1e-12);
        assert!((a[1].mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different lengths")]
    fn vec_commute_rejects_schema_mismatch() {
        let mut a = vec![RunningStats::new()];
        a.commute(vec![RunningStats::new(), RunningStats::new()]);
    }
}
