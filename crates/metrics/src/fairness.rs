//! Short-term fairness: the standard deviation of per-node queue lengths
//! (Fig. 12).
//!
//! "As all sensors are homogeneous Poisson sources bearing the same packet
//! arrival rate, we can define fairness here as the standard deviation of
//! queue length … we have taken several snapshots of the value during the
//! observed time [and] average them."  A smaller value means bandwidth is
//! being shared more evenly (nobody's queue is ballooning while others drain).

use caem_simcore::stats::RunningStats;
use serde::{Deserialize, Serialize};

/// Accumulates queue-length snapshots and reports the averaged standard
/// deviation (the Fig. 12 metric).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueueFairness {
    /// Running statistics over the per-snapshot standard deviations.
    snapshot_stddevs: RunningStats,
    /// Running statistics over the per-snapshot mean queue lengths (context
    /// for interpreting the deviation).
    snapshot_means: RunningStats,
}

impl QueueFairness {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one snapshot of every live node's queue length.
    ///
    /// Snapshots of an empty slice (no live nodes) are ignored.
    pub fn snapshot(&mut self, queue_lengths: &[usize]) {
        if queue_lengths.is_empty() {
            return;
        }
        let mut stats = RunningStats::new();
        stats.extend(queue_lengths.iter().map(|&q| q as f64));
        self.snapshot_stddevs.push(stats.std_dev());
        self.snapshot_means.push(stats.mean());
    }

    /// Record one snapshot straight from structure-of-arrays hot columns:
    /// `queue_lengths[i]` counts only when `alive[i] && !is_head[i]` (heads
    /// are sinks — their aggregation queue is not contended bandwidth).
    ///
    /// Numerically identical to filtering the columns into a slice and
    /// calling [`QueueFairness::snapshot`]: the same values are pushed into
    /// the same running accumulators in the same (node) order, without the
    /// intermediate copy.  A snapshot with no eligible node is ignored.
    pub fn snapshot_masked(&mut self, queue_lengths: &[u32], alive: &[bool], is_head: &[bool]) {
        assert_eq!(queue_lengths.len(), alive.len());
        assert_eq!(queue_lengths.len(), is_head.len());
        let mut stats = RunningStats::new();
        for i in 0..queue_lengths.len() {
            if alive[i] && !is_head[i] {
                stats.push(queue_lengths[i] as f64);
            }
        }
        if stats.count() == 0 {
            return;
        }
        self.snapshot_stddevs.push(stats.std_dev());
        self.snapshot_means.push(stats.mean());
    }

    /// Number of snapshots recorded.
    pub fn snapshots(&self) -> u64 {
        self.snapshot_stddevs.count()
    }

    /// The Fig. 12 metric: snapshot standard deviations averaged over the run.
    pub fn mean_std_dev(&self) -> f64 {
        self.snapshot_stddevs.mean()
    }

    /// Average queue length across snapshots (context metric).
    pub fn mean_queue_length(&self) -> f64 {
        self.snapshot_means.mean()
    }

    /// Largest single-snapshot standard deviation observed.
    pub fn worst_std_dev(&self) -> Option<f64> {
        self.snapshot_stddevs.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_fair_network_has_zero_deviation() {
        let mut f = QueueFairness::new();
        f.snapshot(&[3, 3, 3, 3]);
        f.snapshot(&[7, 7, 7, 7]);
        assert_eq!(f.snapshots(), 2);
        assert_eq!(f.mean_std_dev(), 0.0);
        assert_eq!(f.mean_queue_length(), 5.0);
    }

    #[test]
    fn unfair_network_has_positive_deviation() {
        let mut fair = QueueFairness::new();
        let mut unfair = QueueFairness::new();
        // Same total backlog, different spread.
        fair.snapshot(&[5, 5, 5, 5]);
        unfair.snapshot(&[0, 0, 0, 20]);
        assert!(unfair.mean_std_dev() > fair.mean_std_dev());
        assert!((unfair.mean_std_dev() - 8.66).abs() < 0.01);
        assert_eq!(unfair.worst_std_dev().unwrap(), unfair.mean_std_dev());
    }

    #[test]
    fn snapshots_are_averaged() {
        let mut f = QueueFairness::new();
        f.snapshot(&[0, 10]); // std dev = 5
        f.snapshot(&[5, 5]); // std dev = 0
        assert_eq!(f.snapshots(), 2);
        assert!((f.mean_std_dev() - 2.5).abs() < 1e-12);
        assert_eq!(f.worst_std_dev(), Some(5.0));
    }

    #[test]
    fn masked_snapshot_matches_filtered_copy() {
        let queues: [u32; 6] = [4, 9, 0, 7, 2, 30];
        let alive = [true, true, false, true, true, true];
        let is_head = [false, true, false, false, false, false];
        // Reference: filter into a slice, snapshot that.
        let filtered: Vec<usize> = (0..6)
            .filter(|&i| alive[i] && !is_head[i])
            .map(|i| queues[i] as usize)
            .collect();
        let mut reference = QueueFairness::new();
        reference.snapshot(&filtered);
        let mut masked = QueueFairness::new();
        masked.snapshot_masked(&queues, &alive, &is_head);
        assert_eq!(masked.snapshots(), 1);
        assert_eq!(
            masked.mean_std_dev().to_bits(),
            reference.mean_std_dev().to_bits()
        );
        assert_eq!(
            masked.mean_queue_length().to_bits(),
            reference.mean_queue_length().to_bits()
        );
        // All nodes masked out ⇒ ignored, like an empty slice.
        let mut empty = QueueFairness::new();
        empty.snapshot_masked(&queues, &[false; 6], &is_head);
        assert_eq!(empty.snapshots(), 0);
    }

    #[test]
    fn empty_snapshot_is_ignored() {
        let mut f = QueueFairness::new();
        f.snapshot(&[]);
        assert_eq!(f.snapshots(), 0);
        assert_eq!(f.mean_std_dev(), 0.0);
        assert_eq!(f.worst_std_dev(), None);
    }
}
